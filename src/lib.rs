//! ReactDB-rs facade crate.
//!
//! Re-exports the public API of the workspace crates so that applications
//! can depend on a single crate. See the README for a quickstart and
//! `DESIGN.md` for the system inventory.
//!
//! The primary client surface is the session layer: boot a
//! [`ReactDB`](engine::ReactDB), open a [`Client`] with
//! `db.client()`, and submit root transactions — pipelined via
//! [`Client::submit`]/[`Client::submit_batch`] (each returning a
//! [`TxnHandle`]), or synchronously via [`Client::invoke`]. Handles resolve
//! at validation time (`wait`) or at group-commit time (`wait_durable`,
//! the Silo-faithful durable acknowledgement); [`RetryPolicy`] handles
//! transient OCC aborts.

pub use reactdb_common as common;
pub use reactdb_core as core;
pub use reactdb_engine as engine;
pub use reactdb_obs as obs;
pub use reactdb_sim as sim;
pub use reactdb_storage as storage;
pub use reactdb_txn as txn;
pub use reactdb_wal as wal;
pub use reactdb_workloads as workloads;

pub use reactdb_engine::{Call, Client, ReactDB, RetryPolicy, SessionStats, TxnHandle};
pub use reactdb_obs::{AbortReason, MetricsSnapshot, Phase, TraceEvent, TraceKind};
