//! ReactDB-rs facade crate.
//!
//! Re-exports the public API of the workspace crates so that applications
//! can depend on a single crate. See the README for a quickstart and
//! `DESIGN.md` for the system inventory.

pub use reactdb_common as common;
pub use reactdb_core as core;
pub use reactdb_engine as engine;
pub use reactdb_sim as sim;
pub use reactdb_storage as storage;
pub use reactdb_txn as txn;
pub use reactdb_wal as wal;
pub use reactdb_workloads as workloads;
