//! Durability walkthrough: epoch-based group commit and crash recovery.
//!
//! Boots a SmallBank reactor database with `EpochSync` durability, commits
//! a prefix, group-commits it, commits more work that is deliberately lost
//! in a simulated crash, then recovers and shows exactly what survived.
//!
//! ```sh
//! cargo run --release --example durability
//! ```

use reactdb::common::{DeploymentConfig, DurabilityConfig, Value};
use reactdb::engine::ReactDB;
use reactdb::workloads::smallbank::{self, customer_name, INITIAL_BALANCE};

const CUSTOMERS: usize = 8;

fn balance(db: &ReactDB, customer: usize) -> f64 {
    db.invoke(&customer_name(customer), "balance", vec![])
        .expect("balance query")
        .as_float()
}

fn main() {
    let dir = std::env::temp_dir().join("reactdb-durability-example");
    let _ = std::fs::remove_dir_all(&dir);
    let config = DeploymentConfig::shared_nothing(4).with_durability(
        DurabilityConfig::epoch_sync(dir.to_string_lossy().into_owned()).with_interval_ms(0),
    );
    println!("deployment config (as JSON):\n{}\n", config.to_json());

    // ---- First life: load, commit, group-commit, then crash mid-epoch.
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).expect("bulk load");

    db.invoke(
        &customer_name(0),
        "deposit_checking",
        vec![Value::Float(500.0)],
    )
    .expect("deposit");
    db.invoke(
        &customer_name(0),
        "multi_transfer_opt",
        smallbank::multi_transfer_invocation(0, &[1, 2, 3], 100.0),
    )
    .expect("multi-transfer");
    let durable = db.wal_sync().expect("durability is on");
    println!(
        "group commit: durable epoch {durable}, {} syncs, {} redo records, {} log bytes",
        db.stats().log_syncs(),
        db.stats().log_records(),
        db.stats().log_bytes(),
    );

    db.invoke(
        &customer_name(7),
        "deposit_checking",
        vec![Value::Float(9_999_999.0)],
    )
    .expect("acknowledged, but never synced");
    println!(
        "before crash: cust-0 = {:.1}, cust-7 = {:.1}",
        balance(&db, 0),
        balance(&db, 7)
    );
    db.simulate_crash();
    println!("-- simulated crash (buffered redo records dropped) --\n");

    // ---- Second life: recover and inspect what survived.
    let db = ReactDB::recover(smallbank::spec(CUSTOMERS), config).expect("recovery");
    println!(
        "recovered {} transactions from the log (durable epoch {})",
        db.stats().recovered_txns(),
        db.durable_epoch().unwrap_or(0),
    );
    println!(
        "after recovery: cust-0 = {:.1} (expected {:.1})",
        balance(&db, 0),
        2.0 * INITIAL_BALANCE + 500.0 - 300.0,
    );
    println!(
        "after recovery: cust-7 = {:.1} (unsynced deposit lost, expected {:.1})",
        balance(&db, 7),
        2.0 * INITIAL_BALANCE,
    );
    for dst in 1..=3 {
        println!(
            "after recovery: cust-{dst} = {:.1} (transfer credit survived)",
            balance(&db, dst)
        );
    }

    // The recovered database keeps serving transactions.
    db.invoke(
        &customer_name(7),
        "deposit_checking",
        vec![Value::Float(1.0)],
    )
    .expect("post-recovery commit");
    println!("post-recovery deposit: cust-7 = {:.1}", balance(&db, 7));
    let _ = std::fs::remove_dir_all(&dir);
}
