//! Durability walkthrough: epoch-based group commit, durability-aware
//! acknowledgement, and crash recovery.
//!
//! Boots a SmallBank reactor database with `EpochSync` durability and shows
//! the two acknowledgement modes of the client API side by side:
//!
//! * `wait_durable()` returns only once the transaction's commit epoch is
//!   covered by a completed group commit — that transaction survives the
//!   simulated crash;
//! * `wait()` returns at validation time, before the epoch synced — a
//!   transaction acknowledged this way past the last group commit is
//!   deliberately lost in the crash.
//!
//! ```sh
//! cargo run --release --example durability
//! ```

use reactdb::common::{DeploymentConfig, DurabilityConfig, Value};
use reactdb::engine::ReactDB;
use reactdb::workloads::smallbank::{self, customer_name, INITIAL_BALANCE};

const CUSTOMERS: usize = 8;

fn balance(db: &ReactDB, customer: usize) -> f64 {
    db.invoke(&customer_name(customer), "balance", vec![])
        .expect("balance query")
        .as_float()
}

fn main() {
    let dir = std::env::temp_dir().join("reactdb-durability-example");
    let _ = std::fs::remove_dir_all(&dir);
    // Interval 0: no group-commit daemon, so durability is paid exactly
    // where `wait_durable()` demands it — the walkthrough stays
    // deterministic.
    let config = DeploymentConfig::shared_nothing(4).with_durability(
        DurabilityConfig::epoch_sync(dir.to_string_lossy().into_owned()).with_interval_ms(0),
    );
    println!("deployment config (as JSON):\n{}\n", config.to_json());

    // ---- First life: load, commit with a durable ack, then crash with an
    // acknowledged-but-unsynced suffix.
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).expect("bulk load");
    let client = db.client();

    let deposit = client
        .submit(
            &customer_name(0),
            "deposit_checking",
            vec![Value::Float(500.0)],
        )
        .expect("submit");
    let multi = client
        .submit(
            &customer_name(0),
            "multi_transfer_opt",
            smallbank::multi_transfer_invocation(0, &[1, 2, 3], 100.0),
        )
        .expect("submit");
    // Durable acknowledgement: blocks until both commit epochs
    // group-committed (fsync + durable-epoch marker advance).
    deposit.wait_durable().expect("durable deposit");
    multi.wait_durable().expect("durable multi-transfer");
    println!(
        "durable ack: commit epoch {:?} <= durable epoch {}, {} group commits, {} redo records, {} log bytes",
        multi.commit_epoch().expect("committed"),
        db.durable_epoch().expect("durability on"),
        db.stats().log_syncs(),
        db.stats().log_records(),
        db.stats().log_bytes(),
    );

    // Validation-time acknowledgement only: committed and visible, but its
    // epoch never syncs before the crash.
    client
        .submit(
            &customer_name(7),
            "deposit_checking",
            vec![Value::Float(9_999_999.0)],
        )
        .expect("submit")
        .wait()
        .expect("acknowledged at validation, never synced");
    println!(
        "before crash: cust-0 = {:.1}, cust-7 = {:.1}",
        balance(&db, 0),
        balance(&db, 7)
    );
    drop(client);
    db.simulate_crash();
    println!("-- simulated crash (buffered redo records dropped) --\n");

    // ---- Second life: recover and inspect what survived.
    let db = ReactDB::recover(smallbank::spec(CUSTOMERS), config).expect("recovery");
    println!(
        "recovered {} transactions from the log (durable epoch {})",
        db.stats().recovered_txns(),
        db.durable_epoch().unwrap_or(0),
    );
    println!(
        "after recovery: cust-0 = {:.1} (durably acked work survived, expected {:.1})",
        balance(&db, 0),
        2.0 * INITIAL_BALANCE + 500.0 - 300.0,
    );
    println!(
        "after recovery: cust-7 = {:.1} (wait()-only deposit lost, expected {:.1})",
        balance(&db, 7),
        2.0 * INITIAL_BALANCE,
    );
    for dst in 1..=3 {
        println!(
            "after recovery: cust-{dst} = {:.1} (transfer credit survived)",
            balance(&db, dst)
        );
    }

    // The recovered database keeps serving transactions — durably.
    let client = db.client();
    client
        .invoke_durable(
            &customer_name(7),
            "deposit_checking",
            vec![Value::Float(1.0)],
        )
        .expect("post-recovery durable commit");
    println!(
        "post-recovery durable deposit: cust-7 = {:.1}",
        balance(&db, 7)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
