//! Virtualization of database architecture: the same TPC-C reactor database
//! (warehouse = reactor) deployed as shared-everything-without-affinity,
//! shared-everything-with-affinity, and shared-nothing — with zero changes
//! to the transaction code, only to the deployment configuration (§3.3).
//!
//! Run with `cargo run --release --example tpcc_deployments`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use reactdb::common::DeploymentConfig;
use reactdb::engine::ReactDB;
use reactdb::workloads::tpcc::{self, TpccGenerator, TpccScale};

fn run(label: &str, config: DeploymentConfig) {
    let warehouses = 2;
    let scale = TpccScale {
        warehouses,
        districts: 4,
        customers_per_district: 20,
        items: 200,
    };
    let db = ReactDB::boot(tpcc::spec(warehouses), config);
    tpcc::load(&db, scale).unwrap();

    let generator = TpccGenerator::standard(scale);
    let client = db.client();
    let mut rng = StdRng::seed_from_u64(7);
    let txns = 400;
    let start = Instant::now();
    let mut committed = 0;
    for i in 0..txns {
        let inv = generator.next(i % warehouses, &mut rng);
        match client.invoke(&tpcc::warehouse_name(inv.warehouse), inv.proc, inv.args) {
            Ok(_) => committed += 1,
            Err(e) if e.is_cc_abort() => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let elapsed = start.elapsed();
    println!(
        "{label:<40} committed {committed}/{txns} in {elapsed:>8.2?}  ({:.0} txn/s, abort rate {:.2}%)",
        committed as f64 / elapsed.as_secs_f64(),
        db.stats().abort_rate() * 100.0
    );
}

fn main() {
    println!("TPC-C standard mix, 2 warehouse reactors, identical application code:\n");
    run(
        "shared-everything-without-affinity",
        DeploymentConfig::shared_everything_without_affinity(2),
    );
    run(
        "shared-everything-with-affinity",
        DeploymentConfig::shared_everything_with_affinity(2),
    );
    run("shared-nothing", DeploymentConfig::shared_nothing(2));
}
