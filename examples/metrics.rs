//! The metrics export surface, end to end: a mixed workload (deposits,
//! cross-reactor transfers, range scans, user aborts, durable
//! acknowledgements, a checkpoint) under `EpochSync` durability, followed
//! by the full `MetricsSnapshot` dumped as JSON.
//!
//! Everything except the JSON goes to stderr, so the output can be piped
//! straight into `jq` — CI's metrics-smoke step does exactly that. The
//! example also asserts the observability acceptance surface: the seven
//! commit-path phase histograms are non-zero, and the JSON and Prometheus
//! renderers agree on every value. Any violation panics (non-zero exit).
//!
//! Run with `cargo run --release --example metrics | jq .`.

use reactdb::common::{DeploymentConfig, DurabilityConfig, Key, Value};
use reactdb::core::{ReactorDatabaseSpec, ReactorType};
use reactdb::storage::{ColumnType, RelationDef, Schema, Tuple};
use reactdb::{MetricsSnapshot, Phase, ReactDB, TraceKind};

fn spec() -> ReactorDatabaseSpec {
    let account = ReactorType::new("Account")
        .with_relation(RelationDef::new(
            "balance",
            Schema::of(
                &[("id", ColumnType::Int), ("amount", ColumnType::Float)],
                &["id"],
            ),
        ))
        .with_relation(RelationDef::new(
            "history",
            Schema::of(
                &[("seq", ColumnType::Int), ("amount", ColumnType::Float)],
                &["seq"],
            ),
        ))
        .with_procedure("open", |ctx, _args| {
            ctx.insert("balance", Tuple::of([Value::Int(0), Value::Float(0.0)]))?;
            Ok(Value::Null)
        })
        .with_procedure("deposit", |ctx, args| {
            let amount = args[0].as_float();
            let seq = args[1].as_int();
            let row = ctx.update_with("balance", &Key::Int(0), |t| {
                t.values_mut()[1] = Value::Float(t.at(1).as_float() + amount);
            })?;
            ctx.insert(
                "history",
                Tuple::of([Value::Int(seq), Value::Float(amount)]),
            )?;
            Ok(Value::Float(row.at(1).as_float()))
        })
        .with_procedure("transfer", |ctx, args| {
            let destination = args[0].as_str().to_owned();
            let amount = args[1].as_float();
            let seq = args[2].as_int();
            ctx.update_with("balance", &Key::Int(0), |t| {
                t.values_mut()[1] = Value::Float(t.at(1).as_float() - amount);
            })?;
            ctx.call(
                &destination,
                "deposit",
                vec![Value::Float(amount), Value::Int(seq)],
            )?;
            Ok(Value::Null)
        })
        .with_procedure("recent_activity", |ctx, args| {
            let low = args[0].as_int();
            let high = args[1].as_int();
            let rows = ctx.scan_bounded("history", Key::Int(low)..Key::Int(high))?;
            Ok(Value::Int(rows.len() as i64))
        })
        .with_procedure("audit_reject", |ctx, _args| ctx.abort("audit rejected"));

    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(account);
    for i in 0..4 {
        spec.add_reactor(format!("acct-{i}"), "Account");
    }
    spec
}

fn main() {
    let dir = std::env::temp_dir().join(format!("reactdb-metrics-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DeploymentConfig::shared_nothing(2).with_durability(
        DurabilityConfig::epoch_sync(dir.to_string_lossy().as_ref()).with_interval_ms(0),
    );
    let db = ReactDB::boot(spec(), config);
    let client = db.client();

    // Mixed workload. Durable acknowledgement on every fourth deposit
    // exercises the full group-commit path (sync wait + fsync + ack).
    for i in 0..4 {
        client.invoke(&format!("acct-{i}"), "open", vec![]).unwrap();
    }
    for seq in 0..40i64 {
        let who = format!("acct-{}", seq % 4);
        let handle = client
            .submit(&who, "deposit", vec![Value::Float(10.0), Value::Int(seq)])
            .unwrap();
        if seq % 4 == 0 {
            handle.wait_durable().unwrap();
        } else {
            handle.wait().unwrap();
        }
    }
    for seq in 40..48i64 {
        let src = format!("acct-{}", seq % 4);
        let dst = format!("acct-{}", (seq + 1) % 4);
        client
            .invoke(
                &src,
                "transfer",
                vec![Value::Str(dst), Value::Float(1.0), Value::Int(seq)],
            )
            .unwrap();
    }
    for i in 0..4 {
        client
            .invoke(
                &format!("acct-{i}"),
                "recent_activity",
                vec![Value::Int(0), Value::Int(100)],
            )
            .unwrap();
    }
    for i in 0..2 {
        let err = client
            .invoke(&format!("acct-{i}"), "audit_reject", vec![])
            .unwrap_err();
        assert!(err.is_user_abort());
    }
    db.checkpoint_now().unwrap();

    // ---- Acceptance surface. The seven commit-path phases must have
    // recorded real samples after a mixed workload with durable
    // acknowledgements.
    let snapshot = db.metrics();
    for phase in [
        Phase::Execute,
        Phase::Lock,
        Phase::Fence,
        Phase::Validate,
        Phase::Write,
        Phase::Log,
        Phase::DurableAck,
    ] {
        let name = format!("phase_{}_ns", phase.name());
        let h = snapshot
            .histogram(&name)
            .unwrap_or_else(|| panic!("{name} missing from the snapshot"));
        assert!(h.count > 0, "{name} recorded no samples");
        assert!(h.sum_ns > 0, "{name} recorded only zero spans");
        eprintln!(
            "{name}: n={} p50={}ns p90={}ns p99={}ns max={}ns",
            h.count, h.p50_ns, h.p90_ns, h.p99_ns, h.max_ns
        );
    }

    // JSON round-trip: parse(to_json) is the identity.
    let json = snapshot.to_json();
    let reparsed = MetricsSnapshot::from_json(&json).expect("snapshot JSON parses");
    assert_eq!(reparsed, snapshot, "JSON round-trip changed the snapshot");

    // Prometheus consistency: every counter appears with the same value.
    let prometheus = snapshot.to_prometheus_text();
    assert!(prometheus.contains(&format!(
        "reactdb_txn_committed {}",
        snapshot.counter("txn_committed").unwrap()
    )));
    assert!(prometheus.contains(&format!(
        "reactdb_txn_aborts{{reason=\"user_abort\"}} {}",
        snapshot
            .counter("txn_aborts{reason=\"user_abort\"}")
            .unwrap()
    )));
    assert!(prometheus.contains("reactdb_phase_durable_ack_ns{quantile=\"0.99\"}"));

    // The trace rings saw the workload too.
    let events = db.trace_events();
    let commits = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Commit))
        .count();
    let group_commits = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::GroupCommitFsync))
        .count();
    assert!(commits > 0, "no commit trace events");
    assert!(group_commits > 0, "no group-commit trace events");
    eprintln!(
        "trace: {} events ({} commits, {} group-commit fsyncs)",
        events.len(),
        commits,
        group_commits
    );

    // The JSON document is the only thing on stdout.
    println!("{json}");

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
