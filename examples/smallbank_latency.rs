//! Latency control with program formulations (§4.2): runs the four
//! multi-transfer formulations of the extended Smallbank benchmark on the
//! live engine, and prints the measured latency next to the cost-model
//! prediction and the virtual-time simulation for the same shape.
//!
//! Run with `cargo run --release --example smallbank_latency`.

use std::time::Instant;

use rand::rngs::StdRng;
use reactdb::common::DeploymentConfig;
use reactdb::core::costmodel::CostParams;
use reactdb::engine::ReactDB;
use reactdb::sim::{SimCosts, SimDeployment, SimStrategy, Simulator};
use reactdb::workloads::smallbank::{self, Formulation};

fn main() {
    let containers = 4;
    let customers = 64;
    let db = ReactDB::boot(
        smallbank::spec(customers),
        DeploymentConfig::shared_nothing(containers),
    );
    smallbank::load(&db, customers).unwrap();

    let txn_size = 3;
    // Destinations on distinct remote containers (the source is customer 0
    // on container 0; customer i lives on container i % containers).
    let dests: Vec<usize> = (1..=txn_size).collect();
    let deployment = SimDeployment::striped(SimStrategy::SharedNothing, containers, customers);
    let sim_costs = SimCosts::default();
    let params = CostParams {
        cs_remote_us: sim_costs.cs_us,
        cr_remote_us: sim_costs.cr_us,
        cs_local_us: 0.0,
        cr_local_us: 0.0,
        commit_us: sim_costs.commit_us + sim_costs.dispatch_us,
        input_gen_us: sim_costs.input_gen_us,
    };

    println!("multi-transfer, size {txn_size}, shared-nothing over {containers} executors\n");
    println!(
        "{:<18} {:>14} {:>14} {:>14}",
        "formulation", "engine [µs]", "sim [µs]", "model [µs]"
    );
    let client = db.client();
    for formulation in Formulation::all() {
        // Live engine measurement through a client session.
        let iterations = 300;
        let start = Instant::now();
        for _ in 0..iterations {
            client
                .invoke(
                    &smallbank::customer_name(0),
                    formulation.procedure(),
                    smallbank::multi_transfer_invocation(0, &dests, 0.01),
                )
                .unwrap();
        }
        let engine_us = start.elapsed().as_micros() as f64 / iterations as f64;

        // Virtual-time simulation of the same program shape.
        let sim = Simulator::new(deployment.clone(), sim_costs);
        let d = dests.clone();
        let mut wl = move |_: usize, _: &mut StdRng| smallbank::sim_profile(formulation, 0, &d);
        let sim_us = sim.run(&mut wl, 1, 200, 1).avg_latency_us();

        // Cost-model prediction (Figure 3).
        let model_us =
            smallbank::forkjoin_shape(formulation, 0, &dests, &deployment).root_latency_us(&params);

        println!(
            "{:<18} {:>14.1} {:>14.1} {:>14.1}",
            formulation.label(),
            engine_us,
            sim_us,
            model_us
        );
    }
    println!(
        "\nNote: engine numbers include real thread-switch costs on this host and depend on its \
         core count; the simulator and the cost model reproduce the relative ordering the paper \
         reports (fully-sync slowest, opt fastest)."
    );
}
