//! Checkpointing walkthrough and recovery-bound gate.
//!
//! Builds a multi-segment, multi-epoch SmallBank history, takes background
//! checkpoints concurrently with live commits, crashes, and then *asserts*
//! (exit code != 0 on violation — CI runs this as the `recovery-bound`
//! step) that recovery is bounded by the last checkpoint:
//!
//! * the replayed log tail covers only the post-checkpoint commits, not the
//!   N ≫ k pre-checkpoint history;
//! * the bytes recovery read (checkpoint + surviving segments) stay far
//!   below the bytes the full history logged, because truncation reclaimed
//!   the covered segments;
//! * the recovered balances equal the durable pre-crash state exactly.
//!
//! ```sh
//! cargo run --release --example checkpoint
//! ```

use reactdb::common::{DeploymentConfig, DurabilityConfig, Value};
use reactdb::engine::ReactDB;
use reactdb::workloads::smallbank::{self, customer_name, INITIAL_BALANCE};

const CUSTOMERS: usize = 8;
/// Pre-checkpoint history: the "N" of the bound.
const HISTORY_TXNS: usize = 600;
/// Post-checkpoint tail: the recovery cost that should remain.
const TAIL_TXNS: usize = 5;

fn balance(db: &ReactDB, customer: usize) -> f64 {
    db.invoke(&customer_name(customer), "balance", vec![])
        .expect("balance query")
        .as_float()
}

fn main() {
    let dir = std::env::temp_dir().join("reactdb-checkpoint-example");
    let _ = std::fs::remove_dir_all(&dir);
    // Manual group commits and manual checkpoints keep the durable/lost and
    // covered/tail boundaries deterministic for the assertions below.
    let config = DeploymentConfig::shared_nothing(4).with_durability(
        DurabilityConfig::epoch_sync(dir.to_string_lossy().into_owned()).with_interval_ms(0),
    );

    // ---- First life: a long history, checkpointed twice.
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).expect("bulk load");
    for i in 0..HISTORY_TXNS {
        db.invoke(
            &customer_name(i % CUSTOMERS),
            "deposit_checking",
            vec![Value::Float(1.0)],
        )
        .expect("history deposit");
        if i % 50 == 49 {
            db.wal_sync().expect("group commit"); // many durable epochs
        }
    }
    let logged_history = db.stats().log_bytes();
    let first = db.checkpoint_now().expect("first checkpoint");
    println!(
        "checkpoint #1: E_ckpt {} (cover {}), {} rows, {} bytes, truncated {} segments / {} bytes",
        first.epoch,
        first.cover_epoch,
        first.rows,
        first.bytes,
        first.truncated_segments,
        first.truncated_bytes
    );
    // A little more history, then a second checkpoint: this one reclaims
    // the segments the first checkpoint's rotation retired.
    for i in 0..50 {
        db.invoke(
            &customer_name(i % CUSTOMERS),
            "deposit_checking",
            vec![Value::Float(1.0)],
        )
        .expect("history deposit");
    }
    db.wal_sync().expect("group commit");
    let second = db.checkpoint_now().expect("second checkpoint");
    println!(
        "checkpoint #2: E_ckpt {} (cover {}), {} rows, {} bytes, truncated {} segments / {} bytes",
        second.epoch,
        second.cover_epoch,
        second.rows,
        second.bytes,
        second.truncated_segments,
        second.truncated_bytes
    );
    assert!(
        db.stats().log_truncated_bytes() > 0,
        "truncation reclaimed covered segments"
    );
    let per_table = db.stats().log_bytes_per_table();
    println!("per-table log accounting (top 3):");
    for usage in per_table.iter().take(3) {
        println!(
            "  reactor {} / {:<10} {:>8} bytes in {:>5} records",
            usage.reactor.raw(),
            usage.relation,
            usage.bytes,
            usage.records
        );
    }

    // ---- Durable tail beyond the last checkpoint, plus one lost commit.
    for _ in 0..TAIL_TXNS {
        db.invoke(
            &customer_name(0),
            "deposit_checking",
            vec![Value::Float(10.0)],
        )
        .expect("tail deposit");
    }
    db.wal_sync().expect("group commit");
    let expected0 = balance(&db, 0);
    let expected1 = balance(&db, 1);
    db.invoke(
        &customer_name(0),
        "deposit_checking",
        vec![Value::Float(1_000_000.0)],
    )
    .expect("acknowledged at validation, never synced");
    db.simulate_crash();
    println!(
        "-- simulated crash after {HISTORY_TXNS}+50 history and {TAIL_TXNS} tail commits --\n"
    );

    // ---- Second life: recovery must be bounded by the last checkpoint.
    let db = ReactDB::recover(smallbank::spec(CUSTOMERS), config).expect("recovery");
    let replayed = db.stats().recovered_txns();
    let ckpt_rows = db.stats().recovered_checkpoint_rows();
    println!(
        "recovery: {} checkpoint rows + {} replayed tail transactions",
        ckpt_rows, replayed
    );

    // The recovery-bound gate. The tail may legitimately include a few
    // fuzzy-overlap commits from the checkpoint's own epochs; 4x the tail
    // leaves room for that while still catching any regression back to
    // full-history replay (which would be in the hundreds).
    assert_eq!(ckpt_rows, (CUSTOMERS * 3) as u64, "3 rows per customer");
    assert!(
        replayed <= (4 * TAIL_TXNS + 50) as u64 && replayed >= TAIL_TXNS as u64,
        "recovery replayed {replayed} transactions; the post-checkpoint tail is ~{TAIL_TXNS} \
         — the bound is violated"
    );
    assert!(
        replayed < (HISTORY_TXNS / 2) as u64,
        "recovery replayed {replayed} transactions — that is history-scale, not tail-scale"
    );
    assert!(
        logged_history > 0,
        "sanity: the history actually produced log traffic"
    );

    // Correctness of the recovered state: durable tail present (including
    // the full pre-checkpoint history), lost commit absent.
    assert_eq!(balance(&db, 0), expected0, "customer 0 durable state");
    assert_eq!(balance(&db, 1), expected1, "customer 1 durable state");
    assert!(
        balance(&db, 0) > 2.0 * INITIAL_BALANCE,
        "the checkpointed deposit history survived"
    );
    println!(
        "recovered balances: cust-0 = {:.1}, cust-1 = {:.1} (lost commit absent)",
        balance(&db, 0),
        balance(&db, 1)
    );
    println!("\nrecovery-bound gate passed");
    let _ = std::fs::remove_dir_all(&dir);
}
