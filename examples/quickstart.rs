//! Quickstart: define a reactor database, deploy it, and run transactions
//! through a client session.
//!
//! A two-reactor-type banking application: `Account` reactors encapsulate a
//! single `balance` relation and expose `open`, `deposit`, `balance` and
//! `transfer` procedures; `transfer` moves money to another account reactor
//! through an asynchronous sub-transaction while the runtime guarantees
//! serializability of the whole root transaction.
//!
//! Clients interact through the session API: `db.client()` opens a
//! [`reactdb::Client`], `submit` pipelines root transactions (each returns
//! a [`reactdb::TxnHandle`]), `wait()` acknowledges at validation time and
//! `wait_durable()` only once the transaction's epoch group-committed.
//!
//! Run with `cargo run --example quickstart`.

use reactdb::common::{DeploymentConfig, Key, Value};
use reactdb::core::{ReactorDatabaseSpec, ReactorType};
use reactdb::engine::ReactDB;
use reactdb::storage::{ColumnType, RelationDef, Schema, Tuple};
use reactdb::{Call, RetryPolicy};

fn account_type() -> ReactorType {
    ReactorType::new("Account")
        .with_relation(RelationDef::new(
            "balance",
            Schema::of(
                &[("id", ColumnType::Int), ("amount", ColumnType::Float)],
                &["id"],
            ),
        ))
        .with_procedure("open", |ctx, args| {
            ctx.insert("balance", Tuple::of([Value::Int(0), args[0].clone()]))?;
            Ok(Value::Null)
        })
        .with_procedure("deposit", |ctx, args| {
            let amount = args[0].as_float();
            let row = ctx.update_with("balance", &Key::Int(0), |t| {
                t.values_mut()[1] = Value::Float(t.at(1).as_float() + amount);
            })?;
            Ok(Value::Float(row.at(1).as_float()))
        })
        .with_procedure("balance", |ctx, _args| {
            Ok(Value::Float(
                ctx.get_expected("balance", &Key::Int(0))?.at(1).as_float(),
            ))
        })
        .with_procedure("transfer", |ctx, args| {
            let destination = args[0].as_str().to_owned();
            let amount = args[1].as_float();
            let current = ctx.get_expected("balance", &Key::Int(0))?.at(1).as_float();
            if current < amount {
                return ctx.abort("insufficient funds");
            }
            ctx.update_with("balance", &Key::Int(0), |t| {
                t.values_mut()[1] = Value::Float(t.at(1).as_float() - amount);
            })?;
            // Asynchronous cross-reactor call; the root transaction only
            // commits once the deposit sub-transaction completed.
            ctx.call(&destination, "deposit", vec![Value::Float(amount)])?;
            Ok(Value::Null)
        })
}

fn main() {
    // 1. Declare the reactor database: types + named reactors.
    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(account_type());
    for name in ["alice", "bob", "carol"] {
        spec.add_reactor(name, "Account");
    }

    // 2. Pick a deployment. Changing the architecture (shared-everything vs
    //    shared-nothing) requires no change to the procedures above.
    let deployment = DeploymentConfig::shared_nothing(3);
    let db = ReactDB::boot(spec, deployment);

    // 3. Open a client session. Clients are cheap to clone; clones share
    //    the session and its statistics.
    let client = db.client();

    // 4. Pipelined submission: a batch of root transactions is in flight at
    //    once, each represented by a TxnHandle promise.
    let opens = client
        .submit_batch(
            ["alice", "bob", "carol"]
                .map(|name| Call::new(name, "open", vec![Value::Float(100.0)])),
        )
        .unwrap();
    for handle in &opens {
        handle.wait().unwrap();
    }

    // 5. Synchronous convenience (`invoke` == submit + wait): resolves at
    //    validation time. With a durable deployment, `wait_durable()` /
    //    `invoke_durable` would additionally block until the transaction's
    //    epoch group-committed — the acknowledgement that survives crashes.
    client
        .invoke(
            "alice",
            "transfer",
            vec![Value::Str("bob".into()), Value::Float(30.0)],
        )
        .unwrap();

    // 6. OCC validation aborts are transient; a RetryPolicy re-submits them
    //    with bounded backoff while user aborts propagate immediately.
    client
        .invoke_with_retry(
            "bob",
            "transfer",
            vec![Value::Str("carol".into()), Value::Float(55.0)],
            &RetryPolicy::occ(),
        )
        .unwrap();

    // An over-draft is rejected by application logic and rolls back cleanly.
    let rejected = client.invoke(
        "carol",
        "transfer",
        vec![Value::Str("alice".into()), Value::Float(1e6)],
    );
    println!("overdraft rejected: {}", rejected.is_err());

    for name in ["alice", "bob", "carol"] {
        let balance = client.invoke(name, "balance", vec![]).unwrap();
        println!("{name}: {balance}");
    }
    let session = client.stats();
    println!(
        "session: submitted={} committed={} aborted={} pipelined-depth={}",
        session.submitted, session.committed, session.aborted, session.in_flight_hwm
    );

    // 7. Database-wide observability goes through the metrics snapshot: the
    //    same counters the Prometheus/JSON export surfaces render, plus the
    //    per-phase latency histograms the tracing layer recorded.
    let metrics = db.metrics();
    println!(
        "database: committed={} cc_aborts={} user_aborts={}",
        metrics.counter("txn_committed").unwrap_or(0),
        metrics.counter("txn_cc_aborts").unwrap_or(0),
        metrics
            .counter("txn_aborts{reason=\"user_abort\"}")
            .unwrap_or(0),
    );
    if let Some(h) = metrics.histogram("phase_execute_ns") {
        println!(
            "execute phase: n={} p50={}ns p99={}ns max={}ns",
            h.count, h.p50_ns, h.p99_ns, h.max_ns
        );
    }
}
