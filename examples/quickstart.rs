//! Quickstart: define a reactor database, deploy it, and run transactions.
//!
//! A two-reactor-type banking application: `Account` reactors encapsulate a
//! single `balance` relation and expose `open`, `deposit`, `balance` and
//! `transfer` procedures; `transfer` moves money to another account reactor
//! through an asynchronous sub-transaction while the runtime guarantees
//! serializability of the whole root transaction.
//!
//! Run with `cargo run --example quickstart`.

use reactdb::common::{DeploymentConfig, Key, Value};
use reactdb::core::{ReactorDatabaseSpec, ReactorType};
use reactdb::engine::ReactDB;
use reactdb::storage::{ColumnType, RelationDef, Schema, Tuple};

fn account_type() -> ReactorType {
    ReactorType::new("Account")
        .with_relation(RelationDef::new(
            "balance",
            Schema::of(
                &[("id", ColumnType::Int), ("amount", ColumnType::Float)],
                &["id"],
            ),
        ))
        .with_procedure("open", |ctx, args| {
            ctx.insert("balance", Tuple::of([Value::Int(0), args[0].clone()]))?;
            Ok(Value::Null)
        })
        .with_procedure("deposit", |ctx, args| {
            let amount = args[0].as_float();
            let row = ctx.update_with("balance", &Key::Int(0), |t| {
                t.values_mut()[1] = Value::Float(t.at(1).as_float() + amount);
            })?;
            Ok(Value::Float(row.at(1).as_float()))
        })
        .with_procedure("balance", |ctx, _args| {
            Ok(Value::Float(
                ctx.get_expected("balance", &Key::Int(0))?.at(1).as_float(),
            ))
        })
        .with_procedure("transfer", |ctx, args| {
            let destination = args[0].as_str().to_owned();
            let amount = args[1].as_float();
            let current = ctx.get_expected("balance", &Key::Int(0))?.at(1).as_float();
            if current < amount {
                return ctx.abort("insufficient funds");
            }
            ctx.update_with("balance", &Key::Int(0), |t| {
                t.values_mut()[1] = Value::Float(t.at(1).as_float() - amount);
            })?;
            // Asynchronous cross-reactor call; the root transaction only
            // commits once the deposit sub-transaction completed.
            ctx.call(&destination, "deposit", vec![Value::Float(amount)])?;
            Ok(Value::Null)
        })
}

fn main() {
    // 1. Declare the reactor database: types + named reactors.
    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(account_type());
    for name in ["alice", "bob", "carol"] {
        spec.add_reactor(name, "Account");
    }

    // 2. Pick a deployment. Changing the architecture (shared-everything vs
    //    shared-nothing) requires no change to the procedures above.
    let deployment = DeploymentConfig::shared_nothing(3);
    let db = ReactDB::boot(spec, deployment);

    // 3. Run transactions.
    for name in ["alice", "bob", "carol"] {
        db.invoke(name, "open", vec![Value::Float(100.0)]).unwrap();
    }
    db.invoke(
        "alice",
        "transfer",
        vec![Value::Str("bob".into()), Value::Float(30.0)],
    )
    .unwrap();
    db.invoke(
        "bob",
        "transfer",
        vec![Value::Str("carol".into()), Value::Float(55.0)],
    )
    .unwrap();

    // An over-draft is rejected by application logic and rolls back cleanly.
    let rejected = db.invoke(
        "carol",
        "transfer",
        vec![Value::Str("alice".into()), Value::Float(1e6)],
    );
    println!("overdraft rejected: {}", rejected.is_err());

    for name in ["alice", "bob", "carol"] {
        let balance = db.invoke(name, "balance", vec![]).unwrap();
        println!("{name}: {balance}");
    }
    println!(
        "committed={} cc_aborts={} user_aborts={}",
        db.stats().committed(),
        db.stats().cc_aborts(),
        db.stats().user_aborts()
    );
}
