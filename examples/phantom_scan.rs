//! Phantom-safe range scans, end to end: a scan-then-commit transaction
//! racing a committed insert into its scanned range aborts with a
//! phantom-classified error, a `RetryPolicy`-driven retry succeeds, and the
//! statistics separate phantom aborts from ordinary OCC conflicts.
//!
//! Run with `cargo run --release --example phantom_scan`.

use std::time::Duration;

use reactdb::common::{DeploymentConfig, Key, TxnError, Value};
use reactdb::core::{ReactorDatabaseSpec, ReactorType};
use reactdb::storage::{ColumnType, RelationDef, Schema, Tuple};
use reactdb::{ReactDB, RetryPolicy};

fn spec() -> ReactorDatabaseSpec {
    let ledger = ReactorType::new("Ledger")
        .with_relation(RelationDef::new(
            "entries",
            Schema::of(
                &[("id", ColumnType::Int), ("val", ColumnType::Int)],
                &["id"],
            ),
        ))
        .with_procedure("scan_window", |ctx, args| {
            // A bounded scan over [low, high), then a slow post-processing
            // step — the window a racing insert can slip into.
            let low = args[0].as_int();
            let high = args[1].as_int();
            let rows = ctx.scan_bounded("entries", Key::Int(low)..Key::Int(high))?;
            ctx.busy_work(args[2].as_int() as u64);
            Ok(Value::Int(rows.len() as i64))
        })
        .with_procedure("insert_entry", |ctx, args| {
            ctx.insert(
                "entries",
                Tuple::of([Value::Int(args[0].as_int()), Value::Int(0)]),
            )?;
            Ok(Value::Null)
        });
    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(ledger);
    spec.add_reactor("ledger", "Ledger");
    spec
}

fn main() {
    // Round-robin routing so the scanner and the inserter run on different
    // executors of the shared container.
    let db = ReactDB::boot(
        spec(),
        DeploymentConfig::shared_everything_without_affinity(2),
    );
    for i in 0..100i64 {
        db.load_row(
            "ledger",
            "entries",
            Tuple::of([Value::Int(i), Value::Int(0)]),
        )
        .unwrap();
    }
    let client = db.client();

    // 1. Race a slow scanner of [0, 1000) against a committed insert into
    //    the scanned range: the scanner must abort with a phantom.
    let mut phantom_seen = false;
    for attempt in 0..10 {
        let scanner = client
            .submit(
                "ledger",
                "scan_window",
                vec![Value::Int(0), Value::Int(1000), Value::Int(40_000_000)],
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        client
            .invoke("ledger", "insert_entry", vec![Value::Int(500 + attempt)])
            .unwrap();
        match scanner.wait() {
            Err(TxnError::Phantom) => {
                println!("scan racing an in-range insert aborted: phantom detected");
                phantom_seen = true;
                break;
            }
            Ok(n) => println!("attempt {attempt}: insert lost the race (scan saw {n:?})"),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(phantom_seen, "expected at least one phantom abort");

    // 2. The same scan under a retry policy converges to a clean commit.
    let count = client
        .invoke_with_retry(
            "ledger",
            "scan_window",
            vec![Value::Int(0), Value::Int(1000), Value::Int(0)],
            &RetryPolicy::occ(),
        )
        .unwrap();
    println!("retried scan committed: {count:?} rows in [0, 1000)");

    // 3. Phantom aborts are distinguishable from ordinary OCC conflicts —
    //    the metrics snapshot carries the full abort-cause breakdown.
    let metrics = db.metrics();
    let phantom = metrics
        .counter("txn_aborts{reason=\"phantom\"}")
        .unwrap_or(0);
    println!(
        "metrics: committed={} cc_aborts={} phantom_aborts={} scan_ops={}",
        metrics.counter("txn_committed").unwrap_or(0),
        metrics.counter("txn_cc_aborts").unwrap_or(0),
        phantom,
        metrics.counter("scan_ops").unwrap_or(0),
    );
    assert!(phantom >= 1);
    assert!(metrics.counter("txn_cc_aborts").unwrap_or(0) >= phantom);
    assert_eq!(
        db.stats().phantom_aborts(),
        phantom,
        "snapshot matches stats"
    );
    println!("session phantom aborts: {}", client.stats().phantom_aborts);
}
