//! The network server end to end, in one process: boot a SmallBank
//! engine, start `reactdb-server` on an ephemeral port, drive it over TCP
//! with pipelined `reactdb-client` connections (validation-time and
//! durable acks, a metrics fetch, a ping), then dump the metrics snapshot
//! — which now includes the three `net_*` phase histograms and the
//! connection counters/gauges the server contributes.
//!
//! Everything except the final JSON goes to stderr, so the output pipes
//! straight into `jq`. The example asserts the network acceptance
//! surface: `net_decode`/`net_dispatch`/`net_reply` recorded real samples,
//! the connection counters add up, and the in-flight gauge is back to
//! zero after the drain. Any violation panics (non-zero exit).
//!
//! Run with `cargo run --release --example server | jq .`.

use std::sync::Arc;
use std::time::Duration;

use reactdb::common::{DeploymentConfig, DurabilityConfig, Value};
use reactdb::workloads::smallbank;
use reactdb::{MetricsSnapshot, ReactDB};
use reactdb_client::WireClient;
use reactdb_server::{Server, ServerConfig};

const CUSTOMERS: usize = 64;
const CONNECTIONS: usize = 8;
const TXNS_PER_CONNECTION: usize = 50;

fn main() {
    let dir = std::env::temp_dir().join(format!("reactdb-server-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DeploymentConfig::shared_nothing(2).with_durability(
        DurabilityConfig::epoch_sync(dir.to_string_lossy().as_ref()).with_interval_ms(1),
    );
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();
    let db = Arc::new(db);

    let server = Server::start(
        Arc::clone(&db),
        ServerConfig::default()
            .with_workers(2)
            .with_max_in_flight(32),
    )
    .expect("start server");
    let addr = server.local_addr();
    eprintln!("server listening on {addr}");

    // Pipelined wire workload: each connection keeps a window of four
    // requests open; every fourth is acknowledged at durable time.
    std::thread::scope(|scope| {
        for c in 0..CONNECTIONS {
            scope.spawn(move || {
                let client = WireClient::connect(addr).expect("connect");
                let mut window = Vec::new();
                for i in 0..TXNS_PER_CONNECTION {
                    let who = smallbank::customer_name((c * 7 + i * 3) % CUSTOMERS);
                    let handle = if i % 4 == 0 {
                        client.submit_durable(&who, "deposit_checking", vec![Value::Float(5.0)])
                    } else {
                        client.submit(&who, "balance", vec![])
                    }
                    .expect("submit");
                    window.push(handle);
                    if window.len() >= 4 {
                        let _ = window.remove(0).wait();
                    }
                }
                for handle in window {
                    let _ = handle.wait();
                }
                client.ping().expect("ping");
            });
        }
    });

    // One more connection fetches the metrics over the wire, like a
    // scraper would, and sanity-checks the Prometheus rendering.
    let scraper = WireClient::connect(addr).expect("connect scraper");
    let prometheus = scraper.metrics_prometheus().expect("metrics over the wire");
    for needle in [
        "reactdb_net_connections_accepted",
        "reactdb_net_connections_active",
        "reactdb_net_requests_in_flight",
        "reactdb_phase_net_decode_ns",
        "reactdb_phase_net_dispatch_ns",
        "reactdb_phase_net_reply_ns",
    ] {
        assert!(
            prometheus.contains(needle),
            "{needle} missing from the wire-scraped Prometheus text"
        );
    }
    drop(scraper);

    // Let the server notice the closed connections, then assert the
    // network acceptance surface on a fresh snapshot.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.net_stats().active() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let snapshot = server.metrics_snapshot();
    for name in ["net_decode", "net_dispatch", "net_reply"] {
        let h = snapshot
            .histogram(&format!("phase_{name}_ns"))
            .unwrap_or_else(|| panic!("phase_{name}_ns missing from the snapshot"));
        assert!(h.count > 0, "phase_{name}_ns recorded no samples");
        eprintln!(
            "phase_{name}_ns: n={} p50={}ns p90={}ns p99={}ns max={}ns",
            h.count, h.p50_ns, h.p90_ns, h.p99_ns, h.max_ns
        );
    }
    let accepted = snapshot.counter("net_connections_accepted").unwrap();
    assert_eq!(
        accepted,
        (CONNECTIONS + 1) as u64,
        "every connection accounted for"
    );
    let requests = snapshot.counter("net_requests").unwrap();
    assert!(
        requests >= (CONNECTIONS * TXNS_PER_CONNECTION) as u64,
        "every request accounted for"
    );
    let in_flight = snapshot.gauge("net_requests_in_flight").unwrap();
    assert_eq!(in_flight, 0.0, "nothing in flight after the drain");
    eprintln!(
        "connections: accepted={accepted} active={} | requests={requests} in_flight={in_flight}",
        snapshot.gauge("net_connections_active").unwrap(),
    );

    // JSON round-trip holds with the network series included.
    let json = snapshot.to_json();
    let reparsed = MetricsSnapshot::from_json(&json).expect("snapshot JSON parses");
    assert_eq!(reparsed, snapshot, "JSON round-trip changed the snapshot");

    // The JSON document is the only thing on stdout.
    println!("{json}");

    server.shutdown();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
