//! The digital currency exchange of Figure 1: an `Exchange` reactor
//! authorises payments by fanning `calc_risk` out to `Provider` reactors
//! asynchronously, then records the order on the chosen provider — all
//! within one serializable root transaction.
//!
//! Run with `cargo run --example currency_exchange`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use reactdb::common::DeploymentConfig;
use reactdb::engine::ReactDB;
use reactdb::workloads::exchange;
use reactdb::RetryPolicy;

fn main() {
    let providers = 4;
    // One executor for the exchange plus one per provider: the
    // procedure-parallelism deployment of Appendix G.
    let db = ReactDB::boot(
        exchange::spec(providers),
        DeploymentConfig::shared_nothing(providers + 1),
    );
    exchange::load(&db, providers, 1_000, 5_000.0, 10_000.0).unwrap();

    // Client session: OCC validation aborts are transient under the
    // fan-out/fan-in contention of auth_pay, so the front end retries them.
    let client = db.client();
    let retry = RetryPolicy::occ();
    let mut rng = StdRng::seed_from_u64(42);
    let mut accepted = 0;
    let mut rejected = 0;
    let start = Instant::now();
    let payments = 200;
    for _ in 0..payments {
        let args = exchange::auth_pay_invocation(providers, 20_000, &mut rng);
        match client.invoke_with_retry(exchange::EXCHANGE, "auth_pay", args, &retry) {
            Ok(_) => accepted += 1,
            Err(e) if e.is_user_abort() => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let elapsed = start.elapsed();
    println!("processed {payments} auth_pay transactions in {elapsed:.2?}");
    println!("accepted={accepted} rejected={rejected}");
    println!(
        "avg latency: {:.1} µs/txn, sub-transactions dispatched: {}",
        elapsed.as_micros() as f64 / payments as f64,
        db.stats().sub_txns_dispatched()
    );
}
