//! Black-box serializability checking of concurrent executions through the
//! **in-process** session API. The register workload, observation format
//! and dependency-graph checker live in `tests/support/history.rs`, shared
//! with `tests/wire_history_check.rs`, which replays the same check over
//! the TCP wire protocol.
//!
//! The workload runs under every commit path: durability off, epoch-sync
//! group commit, and epoch-sync with delta redo logging + record
//! compression — the log format must never leak into the concurrency
//! semantics.

mod support;

use std::sync::Arc;

use reactdb::common::{DeploymentConfig, DurabilityConfig, Key};
use reactdb::engine::ReactDB;
use support::history::{
    check_history, load, run_and_check, run_workload, shard_name, spec, ReadObs, TxnRecord,
    KEYS_PER_SHARD, SHARDS,
};

fn wal_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!(
        "reactdb-history-check-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

#[test]
fn concurrent_histories_are_serializable_with_durability_off() {
    run_and_check(DeploymentConfig::shared_nothing(SHARDS), "durability off");
}

#[test]
fn concurrent_histories_are_serializable_under_epoch_sync() {
    let dir = wal_dir("epoch-sync");
    run_and_check(
        DeploymentConfig::shared_nothing(SHARDS)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(1)),
        "epoch sync",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_histories_are_serializable_under_delta_logging() {
    let dir = wal_dir("delta");
    let config = DeploymentConfig::shared_nothing(SHARDS).with_durability(
        DurabilityConfig::epoch_sync(&dir)
            .with_interval_ms(1)
            .with_delta_logging(true)
            .with_compression(true),
    );
    let db = Arc::new(ReactDB::boot(spec(), config.clone()));
    load(&db);
    let records = run_workload(&db);
    check_history(&records, "epoch sync + delta");
    assert!(
        db.stats().log_delta_records() > 0,
        "the delta commit path was actually exercised"
    );
    // The log format must not change what recovery computes either: crash,
    // recover, and compare every register against the checker's ledger.
    db.wal_sync().unwrap();
    let expected: Vec<(String, i64, i64)> = (0..SHARDS)
        .flat_map(|s| {
            let db = &db;
            (0..KEYS_PER_SHARD).map(move |k| {
                let row = db
                    .table(&shard_name(s), "regs")
                    .unwrap()
                    .get(&Key::Int(k))
                    .unwrap()
                    .read_unguarded();
                (shard_name(s), k, row.at(1).as_int())
            })
        })
        .collect();
    match Arc::try_unwrap(db) {
        Ok(db) => db.simulate_crash(),
        Err(_) => panic!("a client handle still shares the database Arc after the workload joined"),
    }
    let recovered = ReactDB::recover(spec(), config).unwrap();
    for (shard, key, ver) in expected {
        let row = recovered
            .table(&shard, "regs")
            .unwrap()
            .get(&Key::Int(key))
            .unwrap()
            .read_unguarded();
        assert_eq!(
            row.at(1).as_int(),
            ver,
            "{shard}:{key} recovered through the delta log"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_checker_itself_rejects_a_fabricated_cycle() {
    // Confidence in the checker: hand it a classic write-skew history and
    // make sure it would have caught it. T1 reads x@0,y@0 writes y@1;
    // T2 reads x@0,y@0 writes x@1 — RW edges both ways: a cycle.
    let obs = |key: i64, ver: i64| ReadObs {
        shard: "s".into(),
        key,
        ver,
    };
    let records = vec![
        TxnRecord {
            label: 1,
            reads: vec![obs(0, 0), obs(1, 0)],
            writes: vec![obs(1, 1)],
        },
        TxnRecord {
            label: 2,
            reads: vec![obs(0, 0), obs(1, 0)],
            writes: vec![obs(0, 1)],
        },
    ];
    let caught = std::panic::catch_unwind(|| check_history(&records, "fabricated"));
    assert!(caught.is_err(), "write skew must be rejected");
}
