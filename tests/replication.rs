//! End-to-end replication: a follower tailing a live primary over the
//! wire protocol, snapshot-isolation checking of follower reads, and
//! primary-kill failover with promotion.
//!
//! Two properties anchor the suite:
//!
//! * **Follower reads are one consistent snapshot.** The register
//!   workload runs against the primary with `AckLevel::Replicated` (so
//!   every commit is gated on the follower durably applying it), then the
//!   follower's wire server answers snapshot reads. The combined history
//!   must pass the SI variant of the black-box checker — staleness is
//!   allowed, torn snapshots are not.
//! * **Promotion loses nothing replicated-acked.** Every write is
//!   replicated-acked, the primary dies, the follower promotes itself,
//!   and every register must sit at exactly the version the acked writes
//!   left it at — then accept new writes as a primary.

mod support;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use reactdb::common::{AckLevel, DeploymentConfig, DurabilityConfig, ReplicationConfig, Value};
use reactdb::engine::ReactDB;
use reactdb_client::WireClient;
use reactdb_server::{run_follower, FollowerOpts, Server, ServerConfig};
use support::history::{
    check_history_si, load, parse_observations, run_workload_with, shard_name, spec, TxnRecord,
    KEYS_PER_SHARD, SHARDS,
};

fn temp_path(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("reactdb-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

struct Cluster {
    primary_db: Arc<ReactDB>,
    primary: Server,
    follower_db: Arc<ReactDB>,
    follower: Server,
    follower_thread: std::thread::JoinHandle<std::io::Result<reactdb_server::FollowerReport>>,
    stop: Arc<AtomicBool>,
}

/// Boots a primary (registers loaded) and a follower tailing it, and
/// waits until the subscription is live.
fn boot_cluster(tag: &str, promote_on_disconnect: bool) -> Cluster {
    let primary_wal = temp_path(&format!("{tag}-primary-wal"));
    let follower_wal = temp_path(&format!("{tag}-follower-wal"));
    let staging = temp_path(&format!("{tag}-staging"));

    let primary_db = Arc::new(ReactDB::boot(
        spec(),
        DeploymentConfig::shared_nothing(SHARDS)
            .with_durability(DurabilityConfig::epoch_sync(&primary_wal).with_interval_ms(1)),
    ));
    load(&primary_db);
    let primary = Server::start(Arc::clone(&primary_db), ServerConfig::default()).unwrap();

    let follower_db = Arc::new(ReactDB::boot(
        spec(),
        DeploymentConfig::shared_nothing(SHARDS)
            .with_durability(DurabilityConfig::epoch_sync(&follower_wal).with_interval_ms(1)),
    ));
    let follower = Server::start(Arc::clone(&follower_db), ServerConfig::default()).unwrap();

    let opts = FollowerOpts::new(primary.local_addr().to_string(), staging)
        .with_reconnects(1, Duration::from_millis(50))
        .with_promote_on_disconnect(promote_on_disconnect);
    let stop = Arc::new(AtomicBool::new(false));
    let follower_thread = {
        let db = Arc::clone(&follower_db);
        let repl = follower.repl_state();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || run_follower(&db, &repl, &opts, &stop))
    };

    // The replicated-ack gate needs the subscription live before any
    // replicated invoke, or the first ack would wait forever.
    let deadline = Instant::now() + Duration::from_secs(10);
    while primary.repl_state().followers() == 0 {
        assert!(Instant::now() < deadline, "follower never subscribed");
        std::thread::sleep(Duration::from_millis(5));
    }

    Cluster {
        primary_db,
        primary,
        follower_db,
        follower,
        follower_thread,
        stop,
    }
}

#[test]
fn follower_serves_snapshot_consistent_reads_while_tailing() {
    let cluster = boot_cluster("si-reads", false);
    let primary_addr = cluster.primary.local_addr();
    let follower_addr = cluster.follower.local_addr();

    // The full register workload, every commit gated on the follower.
    let mut records = run_workload_with(|_| {
        let client = WireClient::connect(primary_addr).expect("connect primary");
        move |reactor: &str, procedure: &str, args: Vec<Value>| {
            client.invoke_with(reactor, procedure, args, AckLevel::Replicated)
        }
    });
    assert!(!records.is_empty(), "workload committed");

    // Replicated acks mean the follower has durably applied everything
    // the workload observed; its wire server now answers reads at its
    // applied stable epoch. Those reads join the history as read-only
    // transactions and the combined history must be SI.
    let reader = WireClient::connect(follower_addr).expect("connect follower");
    for i in 0..SHARDS * 4 {
        let shard = shard_name(i % SHARDS);
        let keys: Vec<Value> = (0..KEYS_PER_SHARD).map(Value::Int).collect();
        let obs = reader
            .invoke(&shard, "snapshot", keys)
            .expect("follower read");
        records.push(TxnRecord {
            label: 100_000 + i as i64,
            reads: parse_observations(obs.as_str()),
            writes: Vec::new(),
        });
    }
    check_history_si(&records, "follower reads");

    // The follower is read-only until promoted: writes bounce.
    let write = reader.invoke(&shard_name(0), "rmw", vec![Value::Int(1), Value::Int(0)]);
    assert!(
        matches!(write, Err(reactdb::common::TxnError::Runtime(ref m)) if m.contains("read-only")),
        "follower rejected the write: {write:?}"
    );

    // Replication progress is visible on both sides' metrics.
    let primary_repl = cluster.primary.repl_state();
    assert_eq!(primary_repl.followers(), 1);
    assert!(primary_repl.acked_epoch() > 0, "follower acked progress");
    let follower_repl = cluster.follower.repl_state();
    assert!(follower_repl.is_follower());
    assert!(follower_repl.applied_epoch() > 0);
    let snap = cluster.follower.metrics_snapshot();
    assert!(
        snap.gauges
            .iter()
            .any(|g| g.name == "repl_follower_lag_epochs"),
        "follower lag gauge exported"
    );

    cluster.stop.store(true, Ordering::SeqCst);
    let report = cluster.follower_thread.join().unwrap().expect("clean stop");
    assert!(!report.promoted);
    cluster.follower.shutdown();
    cluster.primary.shutdown();
    drop(cluster.primary_db);
    drop(cluster.follower_db);
}

#[test]
fn promotion_after_primary_kill_keeps_every_replicated_acked_txn() {
    let cluster = boot_cluster("failover", true);
    let primary_addr = cluster.primary.local_addr();

    // A deterministic batch of replicated-acked writes; remember exactly
    // which version each register must end up at.
    let client = WireClient::connect(primary_addr).expect("connect primary");
    let mut expected: std::collections::HashMap<(String, i64), i64> =
        std::collections::HashMap::new();
    for i in 0..30i64 {
        let shard = shard_name((i as usize) % SHARDS);
        let key = i % KEYS_PER_SHARD;
        let obs = client
            .invoke_with(
                &shard,
                "rmw",
                vec![Value::Int(1000 + i), Value::Int(key)],
                AckLevel::Replicated,
            )
            .expect("replicated write");
        for read in parse_observations(obs.as_str()) {
            expected.insert((read.shard, read.key), read.ver + 1);
        }
    }

    // Kill the primary. The follower loses the stream, fails its
    // reconnect budget, and must promote itself.
    drop(client);
    cluster.primary.shutdown();
    drop(cluster.primary_db);

    let report = cluster
        .follower_thread
        .join()
        .unwrap()
        .expect("follower promoted");
    assert!(
        report.promoted,
        "follower promoted after losing its primary"
    );
    assert!(report.failover.is_some(), "failover time measured");

    // Zero loss: every replicated-acked write is present at exactly the
    // version it committed at — and nothing else wrote these registers,
    // so a higher version would mean resurrected or invented work.
    for ((shard, key), version) in &expected {
        let obs = cluster
            .follower_db
            .invoke(shard, "snapshot", vec![Value::Int(*key)])
            .expect("read after promotion");
        let seen = parse_observations(obs.as_str());
        assert_eq!(
            seen[0].ver, *version,
            "{shard}:{key} must sit at its last replicated-acked version"
        );
    }

    // The promoted node is a serving primary: writes commit now.
    let shard = shard_name(0);
    let before = expected[&(shard.clone(), 0)];
    let obs = cluster
        .follower_db
        .invoke(&shard, "rmw", vec![Value::Int(9999), Value::Int(0)])
        .expect("write after promotion");
    assert_eq!(parse_observations(obs.as_str())[0].ver, before);

    cluster.follower.shutdown();
    drop(cluster.follower_db);
}

/// A checkpoint on the primary truncates log segments the live shipping
/// cursor is tracking; the stream dies and the follower must resubscribe
/// — bootstrapping from the *new* checkpoint chain into a fresh staging
/// generation — and re-converge on the primary's exact register state
/// without restarting empty or double-applying.
#[test]
fn follower_reconverges_after_checkpoint_truncation_kills_the_stream() {
    let primary_wal = temp_path("reconverge-primary-wal");
    let follower_wal = temp_path("reconverge-follower-wal");
    let staging = temp_path("reconverge-staging");

    let primary_db = Arc::new(ReactDB::boot(
        spec(),
        DeploymentConfig::shared_nothing(SHARDS)
            .with_durability(DurabilityConfig::epoch_sync(&primary_wal).with_interval_ms(1)),
    ));
    load(&primary_db);
    let primary = Server::start(Arc::clone(&primary_db), ServerConfig::default()).unwrap();

    let follower_db = Arc::new(ReactDB::boot(
        spec(),
        DeploymentConfig::shared_nothing(SHARDS)
            .with_durability(DurabilityConfig::epoch_sync(&follower_wal).with_interval_ms(1)),
    ));
    let follower = Server::start(Arc::clone(&follower_db), ServerConfig::default()).unwrap();
    let opts = FollowerOpts::new(primary.local_addr().to_string(), &staging)
        .with_reconnects(5, Duration::from_millis(25))
        .with_promote_on_disconnect(false);
    let stop = Arc::new(AtomicBool::new(false));
    let follower_thread = {
        let db = Arc::clone(&follower_db);
        let repl = follower.repl_state();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || run_follower(&db, &repl, &opts, &stop))
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while primary.repl_state().followers() == 0 {
        assert!(Instant::now() < deadline, "follower never subscribed");
        std::thread::sleep(Duration::from_millis(5));
    }

    let client = WireClient::connect(primary.local_addr()).expect("connect primary");
    let mut expected: std::collections::HashMap<(String, i64), i64> =
        std::collections::HashMap::new();
    let mut write = |label: i64| {
        let shard = shard_name((label as usize) % SHARDS);
        let key = label % KEYS_PER_SHARD;
        let obs = client
            .invoke_with(
                &shard,
                "rmw",
                vec![Value::Int(label), Value::Int(key)],
                AckLevel::Replicated,
            )
            .expect("replicated write");
        for read in parse_observations(obs.as_str()) {
            expected.insert((read.shard, read.key), read.ver + 1);
        }
    };
    for i in 0..20 {
        write(1000 + i);
    }

    // Truncate the shipped segments out from under the live cursor, then
    // arm the scoped failpoint so the cursor faults at least once even if
    // the real truncation missed its polling window. The scope is the
    // primary's log-dir name, so concurrently running tests never see it.
    primary_db.checkpoint_now().expect("checkpoint");
    let scope = std::path::Path::new(&primary_wal)
        .file_name()
        .unwrap()
        .to_string_lossy()
        .into_owned();
    let fp = format!("truncate-under-cursor@{scope}");
    reactdb::wal::failpoint::arm(&format!("{fp}=err:1")).unwrap();

    // Every one of these must commit through the resubscribed stream.
    for i in 0..20 {
        write(2000 + i);
    }
    assert_eq!(
        reactdb::wal::failpoint::hits(&fp),
        1,
        "the cursor fault was actually injected"
    );

    // Quorum-1 replicated acks mean the single follower durably applied
    // every write before its invoke returned; its registers must now match
    // the primary's exactly.
    for ((shard, key), version) in &expected {
        let obs = follower_db
            .invoke(shard, "snapshot", vec![Value::Int(*key)])
            .expect("follower read");
        assert_eq!(
            parse_observations(obs.as_str())[0].ver,
            *version,
            "{shard}:{key} must re-converge to the primary's version"
        );
    }

    stop.store(true, Ordering::SeqCst);
    let report = follower_thread.join().unwrap().expect("clean stop");
    assert!(!report.promoted, "no spurious promotion");
    assert!(
        report.resubscribes >= 1,
        "the follower resubscribed rather than surviving untouched: {report:?}"
    );
    follower.shutdown();
    primary.shutdown();
    drop(primary_db);
    drop(follower_db);
}

/// With `--repl-quorum 2` a `Replicated` ack must mean "durable on at
/// least three nodes": while only one follower is subscribed the reply
/// stalls, and it releases only once a second follower has durably
/// applied the commit epoch.
#[test]
fn quorum_two_stalls_replicated_acks_until_a_second_follower_acks() {
    let primary_wal = temp_path("quorum-primary-wal");

    let primary_db = Arc::new(ReactDB::boot(
        spec(),
        DeploymentConfig::shared_nothing(SHARDS)
            .with_durability(DurabilityConfig::epoch_sync(&primary_wal).with_interval_ms(1)),
    ));
    load(&primary_db);
    let primary = Server::start(
        Arc::clone(&primary_db),
        ServerConfig::default().with_replication(ReplicationConfig::default().with_quorum(2)),
    )
    .unwrap();

    let boot_follower = |tag: &str| {
        let wal = temp_path(&format!("quorum-{tag}-wal"));
        let staging = temp_path(&format!("quorum-{tag}-staging"));
        let db = Arc::new(ReactDB::boot(
            spec(),
            DeploymentConfig::shared_nothing(SHARDS)
                .with_durability(DurabilityConfig::epoch_sync(&wal).with_interval_ms(1)),
        ));
        let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
        let opts = FollowerOpts::new(primary.local_addr().to_string(), staging)
            .with_reconnects(5, Duration::from_millis(25))
            .with_promote_on_disconnect(false);
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let db = Arc::clone(&db);
            let repl = server.repl_state();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_follower(&db, &repl, &opts, &stop))
        };
        (db, server, thread, stop)
    };

    let (db_a, server_a, thread_a, stop_a) = boot_follower("a");
    let deadline = Instant::now() + Duration::from_secs(10);
    while primary.repl_state().followers() < 1 {
        assert!(Instant::now() < deadline, "first follower never subscribed");
        std::thread::sleep(Duration::from_millis(5));
    }

    // One live follower cannot satisfy a quorum of two: the replicated
    // reply must stall (while the same write at Durable sails through on
    // a second connection — replies are ordered per connection).
    let client = WireClient::connect(primary.local_addr()).expect("connect");
    let stalled = client
        .submit_with_ack(
            &shard_name(0),
            "rmw",
            vec![Value::Int(7001), Value::Int(0)],
            AckLevel::Replicated,
        )
        .expect("submit replicated");
    let side = WireClient::connect(primary.local_addr()).expect("connect");
    side.invoke_with(
        &shard_name(1),
        "rmw",
        vec![Value::Int(7002), Value::Int(0)],
        AckLevel::Durable,
    )
    .expect("durable write proceeds while replicated stalls");
    assert!(
        stalled.wait_timeout(Duration::from_millis(400)).is_none(),
        "replicated ack released with only one of two quorum followers"
    );
    assert_eq!(
        primary.repl_state().quorum_epoch(),
        0,
        "one follower of a two-quorum contributes no quorum epoch"
    );

    // The second follower subscribing, catching up and acking releases it.
    let (db_b, server_b, thread_b, stop_b) = boot_follower("b");
    let value = stalled
        .wait_timeout(Duration::from_secs(20))
        .expect("replicated ack released once the quorum filled")
        .expect("write committed");
    assert!(matches!(value, Value::Str(_)));
    let commit_epoch = stalled.commit_epoch().expect("commit epoch reported");

    // Quorum honesty: at release time both followers had durably applied
    // the commit epoch (applied_epoch only moves before the ack is sent).
    for (name, repl) in [("a", server_a.repl_state()), ("b", server_b.repl_state())] {
        assert!(
            repl.applied_epoch() >= commit_epoch,
            "follower {name} applied {} but the quorum released epoch {commit_epoch}",
            repl.applied_epoch(),
        );
    }
    assert!(primary.repl_state().quorum_epoch() >= commit_epoch);
    assert_eq!(primary.repl_state().follower_acks().len(), 2);

    for (stop, thread) in [(stop_a, thread_a), (stop_b, thread_b)] {
        stop.store(true, Ordering::SeqCst);
        let report = thread.join().unwrap().expect("clean stop");
        assert!(!report.promoted);
    }
    server_a.shutdown();
    server_b.shutdown();
    primary.shutdown();
    drop(primary_db);
    drop(db_a);
    drop(db_b);
}
