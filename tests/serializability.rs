//! Cross-crate integration tests: serializability and atomicity guarantees
//! of the reactor model under concurrent load, across all three deployment
//! strategies.

use std::sync::Arc;

use reactdb_common::{DeploymentConfig, Value};
use reactdb_engine::ReactDB;
use reactdb_workloads::smallbank::{self, Formulation, INITIAL_BALANCE};

fn boot(customers: usize, config: DeploymentConfig) -> ReactDB {
    let db = ReactDB::boot(smallbank::spec(customers), config);
    smallbank::load(&db, customers).unwrap();
    db
}

fn total_money(db: &ReactDB, customers: usize) -> f64 {
    (0..customers)
        .map(|i| {
            db.invoke(&smallbank::customer_name(i), "balance", vec![])
                .unwrap()
                .as_float()
        })
        .sum()
}

/// Concurrent multi-transfers from several client threads never violate the
/// conservation-of-money invariant, whatever the deployment: aborted
/// transactions leave no partial effects and committed ones are atomic
/// across reactors (and therefore across containers under shared-nothing).
#[test]
fn concurrent_multi_transfers_conserve_money_across_deployments() {
    let customers = 8;
    for config in [
        DeploymentConfig::shared_everything_without_affinity(2),
        DeploymentConfig::shared_everything_with_affinity(2),
        DeploymentConfig::shared_nothing(4),
    ] {
        let db = Arc::new(boot(customers, config.clone()));
        let threads: Vec<_> = (0..3)
            .map(|worker| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let mut committed = 0;
                    let mut attempts = 0;
                    while committed < 20 && attempts < 2000 {
                        attempts += 1;
                        let src = worker * 2;
                        let dsts = [(src + 1) % 8, (src + 3) % 8];
                        let result = db.invoke(
                            &smallbank::customer_name(src),
                            Formulation::FullyAsync.procedure(),
                            smallbank::multi_transfer_invocation(src, &dsts, 1.0),
                        );
                        match result {
                            Ok(_) => committed += 1,
                            Err(e) if e.is_cc_abort() || e.is_dangerous_structure() => {}
                            Err(e) => panic!("unexpected error {e:?}"),
                        }
                    }
                    committed
                })
            })
            .collect();
        let total_commits: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(total_commits > 0, "no progress under {config:?}");
        let total = total_money(&db, customers);
        assert!(
            (total - customers as f64 * 2.0 * INITIAL_BALANCE).abs() < 1e-6,
            "money not conserved under {config:?}: {total}"
        );
        assert_eq!(
            db.stats().committed() as usize,
            total_commits + customers,
            "commit accounting"
        );
    }
}

/// A user abort raised by a remote sub-transaction rolls back every write of
/// the root transaction, including writes already buffered on other
/// reactors.
#[test]
fn failed_multi_transfer_leaves_no_partial_effects() {
    let customers = 4;
    let db = boot(customers, DeploymentConfig::shared_nothing(4));
    // Withdraw more than the source holds: the final debit sub-transaction
    // aborts after all credits were issued.
    let err = db
        .invoke(
            &smallbank::customer_name(0),
            Formulation::Opt.procedure(),
            smallbank::multi_transfer_invocation(0, &[1, 2, 3], INITIAL_BALANCE),
        )
        .unwrap_err();
    assert!(err.is_user_abort());
    for i in 0..customers {
        let balance = db
            .invoke(&smallbank::customer_name(i), "balance", vec![])
            .unwrap()
            .as_float();
        assert_eq!(
            balance,
            2.0 * INITIAL_BALANCE,
            "customer {i} must be untouched"
        );
    }
}

/// The same workload executed under the three deployment strategies produces
/// exactly the same database state: architecture virtualization does not
/// change application semantics (§3.3).
#[test]
fn deployments_are_semantically_equivalent() {
    let customers = 6;
    let script: Vec<(usize, Vec<usize>, f64)> = vec![
        (0, vec![1, 2], 10.0),
        (3, vec![4], 25.0),
        (5, vec![0, 1, 2, 3], 5.0),
        (2, vec![5], 7.5),
    ];

    let mut final_states: Vec<Vec<f64>> = Vec::new();
    for config in [
        DeploymentConfig::shared_everything_without_affinity(3),
        DeploymentConfig::shared_everything_with_affinity(2),
        DeploymentConfig::shared_nothing(3),
    ] {
        let db = boot(customers, config);
        for (src, dsts, amount) in &script {
            db.invoke(
                &smallbank::customer_name(*src),
                Formulation::PartiallyAsync.procedure(),
                smallbank::multi_transfer_invocation(*src, dsts, *amount),
            )
            .unwrap();
        }
        final_states.push(
            (0..customers)
                .map(|i| {
                    db.invoke(&smallbank::customer_name(i), "balance", vec![])
                        .unwrap()
                        .as_float()
                })
                .collect(),
        );
    }
    assert_eq!(final_states[0], final_states[1]);
    assert_eq!(final_states[1], final_states[2]);
}

/// Observed engine histories project to serializable classic histories
/// (an end-to-end check of Theorem 2.7 on real executions): we record the
/// reads/writes performed by a set of sequentially issued transfers and
/// verify the serializability checker accepts them.
#[test]
fn recorded_histories_are_serializable() {
    use reactdb_core::history::{History, Op};
    // Build the history that the engine's OCC guarantees for committed
    // transfers: each committed transfer i reads and writes the savings of
    // its source (reactor src) and destination (reactor dst) atomically at
    // commit order i.
    let mut history = History::new();
    let transfers = [(0u64, 1u64), (1, 2), (2, 0), (0, 2)];
    for (i, (src, dst)) in transfers.iter().enumerate() {
        let txn = i as u64;
        history.push(Op::read(txn, 0, *src, 0));
        history.push(Op::write(txn, 0, *src, 0));
        history.push(Op::read(txn, 1, *dst, 0));
        history.push(Op::write(txn, 1, *dst, 0));
    }
    assert!(history.is_serializable());
    assert!(history.project().is_serializable());
    assert_eq!(
        Value::Bool(history.is_serializable()),
        Value::Bool(history.project().is_serializable())
    );
}
