//! TPC-C consistency conditions on the live engine after running the
//! standard mix, plus an end-to-end check that the simulator and the real
//! engine agree on the qualitative behaviour they are both meant to exhibit.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reactdb_common::{DeploymentConfig, Key, Value};
use reactdb_engine::ReactDB;
use reactdb_workloads::tpcc::{self, TpccGenerator, TpccScale};

fn run_mix(config: DeploymentConfig, txns: usize, seed: u64) -> (ReactDB, TpccScale) {
    let warehouses = 2;
    let scale = TpccScale {
        warehouses,
        districts: 3,
        customers_per_district: 10,
        items: 100,
    };
    let db = ReactDB::boot(tpcc::spec(warehouses), config);
    tpcc::load(&db, scale).unwrap();
    let generator = TpccGenerator::standard(scale);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..txns {
        let inv = generator.next(i % warehouses, &mut rng);
        match db.invoke(&tpcc::warehouse_name(inv.warehouse), inv.proc, inv.args) {
            Ok(_) | Err(_) => {}
        }
    }
    (db, scale)
}

/// TPC-C consistency condition 1 & 3 analogue: for every warehouse and
/// district, `d_next_o_id - 1` equals the maximum order id present in both
/// the `orders` and (if not yet delivered) `new_order` tables, and every
/// order has exactly `o_ol_cnt` order lines.
#[test]
fn order_id_allocation_is_consistent() {
    let (db, scale) = run_mix(DeploymentConfig::shared_nothing(2), 250, 11);
    for w in 0..scale.warehouses {
        let name = tpcc::warehouse_name(w);
        let districts = db.table(&name, "district").unwrap();
        let orders = db.table(&name, "orders").unwrap();
        let order_lines = db.table(&name, "order_line").unwrap();
        for d in 0..scale.districts as i64 {
            let next_o_id = districts
                .get(&Key::Int(d))
                .unwrap()
                .read_unguarded()
                .at(3)
                .as_int();
            // Max order id for this district.
            let max_o_id = orders
                .scan()
                .iter()
                .filter(|(_, r)| r.is_visible())
                .map(|(_, r)| r.read_unguarded())
                .filter(|t| t.at(0).as_int() == d)
                .map(|t| t.at(1).as_int())
                .max()
                .unwrap_or(0);
            assert_eq!(next_o_id - 1, max_o_id, "warehouse {w} district {d}");

            // Every order has exactly o_ol_cnt order lines.
            for (_, record) in orders.scan() {
                if !record.is_visible() {
                    continue;
                }
                let order = record.read_unguarded();
                if order.at(0).as_int() != d {
                    continue;
                }
                let o_id = order.at(1).as_int();
                let ol_cnt = order.at(4).as_int();
                let lines = order_lines
                    .scan()
                    .iter()
                    .filter(|(_, r)| r.is_visible())
                    .map(|(_, r)| r.read_unguarded())
                    .filter(|t| t.at(0).as_int() == d && t.at(1).as_int() == o_id)
                    .count();
                assert_eq!(lines as i64, ol_cnt, "order ({d},{o_id}) line count");
            }
        }
    }
}

/// Warehouse YTD equals the sum of its districts' YTD (TPC-C consistency
/// condition 2 analogue), since every payment updates both.
#[test]
fn payment_ytd_sums_are_consistent() {
    let (db, scale) = run_mix(
        DeploymentConfig::shared_everything_with_affinity(2),
        250,
        13,
    );
    for w in 0..scale.warehouses {
        let name = tpcc::warehouse_name(w);
        let w_ytd = db
            .table(&name, "warehouse")
            .unwrap()
            .get(&Key::Int(0))
            .unwrap()
            .read_unguarded()
            .at(2)
            .as_float();
        let d_ytd_sum: f64 = db
            .table(&name, "district")
            .unwrap()
            .scan()
            .iter()
            .map(|(_, r)| r.read_unguarded().at(2).as_float())
            .sum();
        assert!(
            (w_ytd - d_ytd_sum).abs() < 1e-6,
            "warehouse {w}: {w_ytd} vs {d_ytd_sum}"
        );
    }
}

/// The history table records one row per committed payment and stock remote
/// counters only grow when items were drawn from remote warehouses.
#[test]
fn remote_counters_reflect_cross_reactor_work() {
    let warehouses = 2;
    let scale = TpccScale {
        warehouses,
        districts: 2,
        customers_per_district: 5,
        items: 50,
    };
    let db = ReactDB::boot(tpcc::spec(warehouses), DeploymentConfig::shared_nothing(2));
    tpcc::load(&db, scale).unwrap();
    let mut generator = TpccGenerator::standard(scale);
    generator.new_order_only = true;
    generator.remote_item_prob = 1.0;
    let mut rng = StdRng::seed_from_u64(3);
    let mut committed = 0;
    for i in 0..60 {
        let inv = generator.next(i % warehouses, &mut rng);
        if db
            .invoke(&tpcc::warehouse_name(inv.warehouse), inv.proc, inv.args)
            .is_ok()
        {
            committed += 1;
        }
    }
    assert!(committed > 40);
    let remote_updates: i64 = (0..warehouses)
        .map(|w| {
            db.table(&tpcc::warehouse_name(w), "stock")
                .unwrap()
                .scan()
                .iter()
                .map(|(_, r)| r.read_unguarded().at(4).as_int())
                .sum::<i64>()
        })
        .sum();
    assert!(
        remote_updates > 0,
        "100% remote items must bump remote counters"
    );
    assert!(
        db.stats().sub_txns_dispatched() > 0,
        "cross-container sub-transactions were dispatched"
    );
}

/// The abort rate of the engine under the standard mix at low contention is
/// negligible, matching §4.3.1's observation for 1–4 workers.
#[test]
fn low_contention_mix_has_negligible_abort_rate() {
    let (db, _) = run_mix(DeploymentConfig::shared_nothing(2), 200, 17);
    assert!(
        db.stats().abort_rate() < 0.05,
        "abort rate {}",
        db.stats().abort_rate()
    );
    assert_eq!(db.stats().dangerous_aborts(), 0);
    let _ = Value::Null;
}
