//! Integration tests across the simulator, the cost model and the workload
//! generators: the virtual-time substrate must agree with the analytical
//! cost model where the model applies (single worker, fork-join programs),
//! and must reproduce the qualitative findings of the paper's evaluation
//! that the figure harness relies on.

use rand::rngs::StdRng;
use reactdb_core::costmodel::CostParams;
use reactdb_sim::{SimCosts, SimDeployment, SimStrategy, SimWorkload, Simulator};
use reactdb_workloads::smallbank::{self, Formulation};
use reactdb_workloads::tpcc::TpccSimWorkload;
use reactdb_workloads::ycsb::YcsbSimWorkload;

fn params(costs: &SimCosts, containers: usize) -> CostParams {
    CostParams {
        cs_remote_us: costs.cs_us,
        cr_remote_us: costs.cr_us,
        cs_local_us: 0.0,
        cr_local_us: 0.0,
        commit_us: costs.commit_us
            + costs.dispatch_us
            + costs.commit_remote_us * containers.saturating_sub(1) as f64,
        input_gen_us: costs.input_gen_us,
    }
}

/// H2 (§4.2.2): with a single worker, the simulator's latency matches the
/// cost-model prediction closely for every multi-transfer formulation and
/// size.
#[test]
fn simulator_matches_cost_model_for_single_worker_fork_join() {
    let deployment = SimDeployment::striped(SimStrategy::SharedNothing, 8, 8);
    let costs = SimCosts::default();
    for size in [1usize, 3, 5, 7] {
        let dests: Vec<usize> = (1..=size).collect();
        for f in Formulation::all() {
            let predicted = smallbank::forkjoin_shape(f, 0, &dests, &deployment)
                .root_latency_us(&params(&costs, size + 1));
            let sim = Simulator::new(deployment.clone(), costs);
            let d = dests.clone();
            let mut wl = move |_: usize, _: &mut StdRng| smallbank::sim_profile(f, 0, &d);
            let observed = sim.run(&mut wl, 1, 50, 1).avg_latency_us();
            let error = (predicted - observed).abs() / observed;
            assert!(
                error < 0.2,
                "{f:?} size {size}: predicted {predicted:.1}µs vs simulated {observed:.1}µs"
            );
        }
    }
}

/// H1 (§4.2.1): the latency ordering of the four formulations matches
/// Figure 5 at every transaction size.
#[test]
fn formulation_ordering_matches_figure_5_at_all_sizes() {
    let deployment = SimDeployment::striped(SimStrategy::SharedNothing, 8, 8);
    for size in 2..=7usize {
        let dests: Vec<usize> = (1..=size).collect();
        let latency = |f: Formulation| {
            let sim = Simulator::new(deployment.clone(), SimCosts::default());
            let d = dests.clone();
            let mut wl = move |_: usize, _: &mut StdRng| smallbank::sim_profile(f, 0, &d);
            sim.run(&mut wl, 1, 50, 1).avg_latency_us()
        };
        let fully_sync = latency(Formulation::FullySync);
        let partially = latency(Formulation::PartiallyAsync);
        let fully_async = latency(Formulation::FullyAsync);
        let opt = latency(Formulation::Opt);
        assert!(fully_sync > partially, "size {size}");
        assert!(partially > fully_async, "size {size}");
        assert!(fully_async >= opt, "size {size}");
    }
}

/// H3 (§4.3): the most effective architecture depends on load. With the
/// delay-augmented new-order and one worker, shared-nothing-async wins by
/// about 2x; at eight workers shared-everything-with-affinity catches up or
/// overtakes it (Figures 9 and 10).
#[test]
fn asynchronicity_tradeoff_crosses_over_with_load() {
    let warehouses = 8;
    let run = |strategy, workers| {
        let deployment = SimDeployment::striped(strategy, warehouses, warehouses);
        let sim = Simulator::new(deployment, SimCosts::default());
        let mut wl = TpccSimWorkload {
            warehouses,
            remote_item_prob: 1.0,
            remote_payment_prob: 0.15,
            new_order_only: true,
            delay_us: Some((300.0, 400.0)),
            costs: Default::default(),
        };
        sim.run(&mut wl, workers, 200, 9)
    };
    let sn_1 = run(SimStrategy::SharedNothing, 1);
    let se_1 = run(SimStrategy::SharedEverythingWithAffinity, 1);
    assert!(
        sn_1.throughput_tps() > 1.6 * se_1.throughput_tps(),
        "at 1 worker shared-nothing-async should be ~2x: {} vs {}",
        sn_1.throughput_tps(),
        se_1.throughput_tps()
    );
    let sn_8 = run(SimStrategy::SharedNothing, 8);
    let se_8 = run(SimStrategy::SharedEverythingWithAffinity, 8);
    let ratio_8 = sn_8.throughput_tps() / se_8.throughput_tps();
    let ratio_1 = sn_1.throughput_tps() / se_1.throughput_tps();
    assert!(
        ratio_8 < ratio_1,
        "the shared-nothing advantage must shrink under load: {ratio_1:.2} -> {ratio_8:.2}"
    );
}

/// §4.3.1: under the standard TPC-C mix, shared-everything-with-affinity is
/// the best of the three deployments and round-robin routing the worst.
#[test]
fn standard_mix_ranking_matches_figure_7() {
    let warehouses = 4;
    let workers = 8;
    let throughput = |strategy| {
        let deployment = SimDeployment::striped(strategy, warehouses, warehouses);
        let sim = Simulator::new(deployment, SimCosts::default());
        let mut wl = TpccSimWorkload::standard(warehouses);
        sim.run(&mut wl, workers, 300, 5).throughput_tps()
    };
    let with_affinity = throughput(SimStrategy::SharedEverythingWithAffinity);
    let shared_nothing = throughput(SimStrategy::SharedNothing);
    let without_affinity = throughput(SimStrategy::SharedEverythingWithoutAffinity);
    assert!(with_affinity >= shared_nothing);
    assert!(shared_nothing > without_affinity * 0.95);
}

/// Appendix C: with a single worker, increasing skew *reduces* multi_update
/// latency (more sub-transactions become local); with four workers, queueing
/// on the hot executor makes high skew slower instead.
#[test]
fn ycsb_skew_effect_reverses_under_queueing() {
    let executors = 4;
    let keys = 40_000;
    let latency = |theta: f64, workers: usize| {
        let deployment = SimDeployment::striped(SimStrategy::SharedNothing, executors, executors);
        let sim = Simulator::new(deployment, SimCosts::default());
        let mut wl = YcsbSimWorkload::new(keys, executors, theta);
        sim.run(&mut wl, workers, 300, 21).avg_latency_us()
    };
    // One worker: local execution at high skew is cheaper than paying
    // dispatch costs for ten remote updates.
    assert!(latency(0.01, 1) > latency(5.0, 1));
    // Four workers: queueing on the single hot executor erases (and
    // reverses) that advantage — the relative gain of skew must shrink.
    let gain_1 = latency(0.01, 1) / latency(5.0, 1);
    let gain_4 = latency(0.01, 4) / latency(5.0, 4);
    assert!(
        gain_4 < gain_1,
        "queueing must reduce the benefit of locality: {gain_1:.2} -> {gain_4:.2}"
    );
    assert!(
        latency(5.0, 4) > latency(5.0, 1),
        "queueing delays must be visible at high skew"
    );
}

/// The simulator's utilization accounting mirrors the paper's observation
/// that shared-nothing-async uses all executor cores even with one worker,
/// while shared-everything-with-affinity concentrates the work.
#[test]
fn utilization_profile_distinguishes_architectures() {
    let warehouses = 4;
    let run = |strategy| {
        let deployment = SimDeployment::striped(strategy, warehouses, warehouses);
        let sim = Simulator::new(deployment, SimCosts::default());
        let mut wl = TpccSimWorkload {
            warehouses,
            remote_item_prob: 1.0,
            remote_payment_prob: 0.15,
            new_order_only: true,
            delay_us: Some((300.0, 400.0)),
            costs: Default::default(),
        };
        sim.run(&mut wl, 1, 200, 2)
    };
    let sn = run(SimStrategy::SharedNothing);
    let se = run(SimStrategy::SharedEverythingWithAffinity);
    let busy_executors = |report: &reactdb_sim::SimReport| {
        report.utilization().iter().filter(|u| **u > 0.05).count()
    };
    assert_eq!(
        busy_executors(&se),
        1,
        "affinity keeps the single worker on one core"
    );
    assert!(
        busy_executors(&sn) >= 3,
        "async fan-out spreads stock updates over the cores"
    );
}

/// The workload generators are deterministic for a fixed seed, which the
/// harness relies on for reproducible figures.
#[test]
fn workload_generation_is_deterministic() {
    use rand::SeedableRng;
    let mut a = TpccSimWorkload::standard(4);
    let mut b = TpccSimWorkload::standard(4);
    let mut rng_a = StdRng::seed_from_u64(77);
    let mut rng_b = StdRng::seed_from_u64(77);
    for worker in 0..16 {
        assert_eq!(
            a.next_txn(worker, &mut rng_a),
            b.next_txn(worker, &mut rng_b)
        );
    }
}
