//! Robustness tests for the wire-protocol server: hostile and unlucky
//! clients must damage at most their own connection, backpressure must
//! shed load without corrupting sessions, and shutdown must drain cleanly
//! and release the WAL directory lock.

mod support;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use reactdb::common::{DeploymentConfig, DurabilityConfig, Value};
use reactdb::engine::ReactDB;
use reactdb_client::{codec, WireClient};
use reactdb_server::{Server, ServerConfig};
use support::history::{load, spec, SHARDS};

fn boot_server(config: ServerConfig) -> (Server, Arc<ReactDB>) {
    let db = Arc::new(ReactDB::boot(
        spec(),
        DeploymentConfig::shared_nothing(SHARDS),
    ));
    load(&db);
    let server = Server::start(Arc::clone(&db), config).unwrap();
    (server, db)
}

/// Polls until `cond` holds or the deadline passes.
fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn version_mismatch_is_rejected_with_the_server_version_echoed() {
    let (server, db) = boot_server(ServerConfig::default());

    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut hello = codec::client_hello();
    hello[4..6].copy_from_slice(&99u16.to_le_bytes()); // future protocol
    raw.write_all(&hello).unwrap();

    let mut reply = [0u8; codec::HANDSHAKE_LEN];
    raw.read_exact(&mut reply).unwrap();
    match codec::parse_server_hello(&reply) {
        Err(codec::WireError::VersionMismatch { client, server }) => {
            assert_eq!(client, codec::PROTOCOL_VERSION);
            assert_eq!(server, codec::PROTOCOL_VERSION);
        }
        other => panic!("expected a version-mismatch rejection, got {other:?}"),
    }
    // The server closes after rejecting.
    let mut scratch = [0u8; 1];
    assert_eq!(raw.read(&mut scratch).unwrap(), 0, "connection closed");
    eventually("rejected connection accounted", || {
        server.net_stats().rejected() == 1
    });

    // A correct-version client on the same server is unaffected.
    let client = WireClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    server.shutdown();
    drop(db);
}

#[test]
fn malformed_frames_kill_only_the_offending_connection() {
    let (server, db) = boot_server(ServerConfig::default());
    let addr = server.local_addr();

    // A healthy session, established first.
    let healthy = WireClient::connect(addr).unwrap();
    healthy.ping().unwrap();

    // An attacker session: valid handshake, then a frame whose CRC lies.
    let mut evil = TcpStream::connect(addr).unwrap();
    evil.write_all(&codec::client_hello()).unwrap();
    let mut reply = [0u8; codec::HANDSHAKE_LEN];
    evil.read_exact(&mut reply).unwrap();
    codec::parse_server_hello(&reply).unwrap();
    let mut bad = codec::frame(b"not a valid payload");
    let crc_byte = codec::FRAME_HEADER_LEN - 1;
    bad[crc_byte] ^= 0xFF;
    evil.write_all(&bad).unwrap();

    // The server kills the malformed connection...
    let mut scratch = [0u8; 64];
    assert_eq!(evil.read(&mut scratch).unwrap(), 0, "offender disconnected");
    eventually("malformed kill accounted", || {
        server.net_stats().malformed() == 1
    });

    // ...and a frame announcing more than the 1 MiB cap dies the same way,
    // from the header alone.
    let mut greedy = TcpStream::connect(addr).unwrap();
    greedy.write_all(&codec::client_hello()).unwrap();
    greedy.read_exact(&mut reply).unwrap();
    let mut huge_header = Vec::new();
    huge_header.extend_from_slice(&(codec::MAX_FRAME_LEN + 1).to_le_bytes());
    huge_header.extend_from_slice(&0u32.to_le_bytes());
    greedy.write_all(&huge_header).unwrap();
    assert_eq!(
        greedy.read(&mut scratch).unwrap(),
        0,
        "oversized disconnected"
    );
    eventually("oversized kill accounted", || {
        server.net_stats().malformed() == 2
    });

    // The healthy session never noticed.
    let v = healthy
        .invoke("shard-0", "snapshot", vec![Value::Int(0)])
        .unwrap();
    assert!(matches!(v, Value::Str(_)));
    assert!(!healthy.is_dead());
    server.shutdown();
    drop(db);
}

#[test]
fn pipelining_beyond_the_in_flight_cap_is_absorbed_by_backpressure() {
    // A tiny cap forces the server to pause reads on the flooded
    // connection; every request must still resolve, in order.
    let (server, db) = boot_server(ServerConfig::default().with_max_in_flight(4));
    let client = WireClient::connect(server.local_addr()).unwrap();

    let handles: Vec<_> = (0..200)
        .map(|_| {
            client
                .submit("shard-1", "rmw", vec![Value::Int(7), Value::Int(2)])
                .unwrap()
        })
        .collect();
    // Every request must resolve — committed or cleanly OCC-aborted; a
    // flood beyond the cap must never lose or wedge a request.
    let mut committed = 0;
    for handle in handles {
        match handle.wait() {
            Ok(_) => committed += 1,
            Err(e) => assert!(e.is_cc_abort(), "unexpected error: {e:?}"),
        }
    }
    assert!(committed > 0, "some of the flood commits");
    assert!(!client.is_dead(), "backpressure must not kill the session");
    assert_eq!(server.net_stats().in_flight(), 0);
    server.shutdown();
    drop(db);
}

#[test]
fn an_abruptly_killed_connection_leaks_nothing_and_wedges_nobody() {
    let (server, db) = boot_server(ServerConfig::default());
    let addr = server.local_addr();

    let survivor = WireClient::connect(addr).unwrap();
    let victim = WireClient::connect(addr).unwrap();
    // Load the victim's pipeline, then sever it without waiting.
    let _abandoned: Vec<_> = (0..50)
        .map(|_| {
            victim
                .submit("shard-2", "rmw", vec![Value::Int(9), Value::Int(1)])
                .unwrap()
        })
        .collect();
    drop(_abandoned);
    drop(victim);

    // The server notices the death, resolves or discards the in-flight
    // transactions, and the gauge returns to zero.
    eventually("victim's in-flight drained", || {
        server.net_stats().in_flight() == 0
    });
    eventually("victim connection reaped", || {
        server.net_stats().active() == 1
    });

    // The survivor keeps transacting, and new connections are served.
    survivor
        .invoke("shard-0", "rmw", vec![Value::Int(11), Value::Int(0)])
        .unwrap();
    WireClient::connect(addr).unwrap().ping().unwrap();
    server.shutdown();
    drop(db);
}

#[test]
fn graceful_shutdown_drains_and_releases_the_log_dir_lock() {
    let dir = std::env::temp_dir().join(format!("reactdb-wire-shutdown-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().into_owned();

    let config = DeploymentConfig::shared_nothing(SHARDS)
        .with_durability(DurabilityConfig::epoch_sync(&dir_s).with_interval_ms(1));
    let db = Arc::new(ReactDB::boot(spec(), config.clone()));
    load(&db);
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let client = WireClient::connect(server.local_addr()).unwrap();

    // In-flight work at shutdown time must be drained, not dropped.
    let pending: Vec<_> = (0..20)
        .map(|_| {
            client
                .submit_durable("shard-0", "rmw", vec![Value::Int(3), Value::Int(0)])
                .unwrap()
        })
        .collect();
    // Submission only writes to the socket; wait until the server has read
    // at least one request so the drain actually has in-flight work to
    // finish (otherwise shutdown can win the race before the worker ever
    // sees the frames, especially on a single-core machine).
    eventually("server observed the submissions", || {
        server.net_stats().requests() > 0
    });
    server.shutdown();
    let mut drained = 0;
    for handle in pending {
        if let Some(Ok(_)) = handle.wait_timeout(Duration::from_secs(5)) {
            drained += 1;
        }
    }
    assert!(drained > 0, "shutdown drained in-flight transactions");

    // Dropping the last engine handle shuts the engine down and releases
    // the WAL directory lock; recovery from the same directory must then
    // succeed rather than failing the lock acquisition.
    drop(db);
    let recovered = ReactDB::recover(spec(), config).unwrap();
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
