//! Fault-injection chaos matrix for the replication path.
//!
//! One sequential test walks every kill point × follower-count cell:
//! each cell boots a fresh primary plus {1, 2, 3} followers, arms one
//! scoped failpoint (ship-mid-file, truncate-under-cursor, ack-drop, or
//! feeder-stall), then drives concurrent replicated-acked writes through
//! a checkpoint-truncation storm. Every cell must end with:
//!
//! * every write resolved — no wedged replicated ack, no spurious
//!   follower promotion;
//! * **quorum honesty** — in multi-follower cells (quorum 2) a
//!   replicated reply is never observed before at least two followers
//!   durably applied its commit epoch;
//! * every follower re-converged byte-for-byte on the primary's register
//!   state, however many times its stream was killed;
//! * the combined history — writes plus follower snapshot reads — passing
//!   the SI checker;
//! * a truthful `repl_followers` gauge (abrupt feeder deaths must not
//!   leak roster entries).
//!
//! The cells run inside one `#[test]` on purpose: failpoints are
//! process-global (scoped by log-dir name), and a single sequential
//! walk keeps each cell's arm/clear window to itself.

mod support;

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use reactdb::common::{AckLevel, DeploymentConfig, DurabilityConfig, ReplicationConfig, Value};
use reactdb::engine::ReactDB;
use reactdb::wal::failpoint;
use reactdb_client::WireClient;
use reactdb_server::{run_follower, FollowerOpts, Server, ServerConfig};
use support::history::{
    check_history_si, load, parse_observations, shard_name, spec, ReadObs, TxnRecord,
    KEYS_PER_SHARD, SHARDS,
};

const WRITER_THREADS: usize = 2;
const WRITES_PER_THREAD: i64 = 18;
const CHECKPOINT_EVERY: i64 = 6;

fn temp_path(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("reactdb-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

struct Follower {
    db: Arc<ReactDB>,
    server: Server,
    thread: std::thread::JoinHandle<std::io::Result<reactdb_server::FollowerReport>>,
    stop: Arc<AtomicBool>,
}

/// One matrix cell: boot, arm, storm, verify, tear down.
fn run_cell(kill_point: &str, fp_spec_suffix: &str, followers: usize) {
    let cell = format!("{kill_point}-f{followers}");
    let primary_wal = temp_path(&format!("{cell}-primary-wal"));

    let primary_db = Arc::new(ReactDB::boot(
        spec(),
        DeploymentConfig::shared_nothing(SHARDS)
            .with_durability(DurabilityConfig::epoch_sync(&primary_wal).with_interval_ms(1)),
    ));
    load(&primary_db);
    let quorum = followers.min(2);
    let primary = Server::start(
        Arc::clone(&primary_db),
        ServerConfig::default().with_replication(ReplicationConfig::default().with_quorum(quorum)),
    )
    .unwrap();

    // Arm the cell's kill point before any follower subscribes, so even
    // the bootstrap ship is fair game. The scope is the primary's log-dir
    // name: nothing outside this cell can trip it.
    let scope = std::path::Path::new(&primary_wal)
        .file_name()
        .unwrap()
        .to_string_lossy()
        .into_owned();
    let fp = format!("{kill_point}@{scope}");
    failpoint::arm(&format!("{fp}{fp_spec_suffix}")).unwrap();

    let fleet: Vec<Follower> = (0..followers)
        .map(|i| {
            let wal = temp_path(&format!("{cell}-follower{i}-wal"));
            let staging = temp_path(&format!("{cell}-follower{i}-staging"));
            let db = Arc::new(ReactDB::boot(
                spec(),
                DeploymentConfig::shared_nothing(SHARDS)
                    .with_durability(DurabilityConfig::epoch_sync(&wal).with_interval_ms(1)),
            ));
            let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
            // A generous budget plus progress replenishment: the storm may
            // kill the stream many times, and none of it may promote.
            let opts = FollowerOpts::new(primary.local_addr().to_string(), staging)
                .with_reconnects(20, Duration::from_millis(10))
                .with_promote_on_disconnect(false);
            let stop = Arc::new(AtomicBool::new(false));
            let thread = {
                let db = Arc::clone(&db);
                let repl = server.repl_state();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || run_follower(&db, &repl, &opts, &stop))
            };
            Follower {
                db,
                server,
                thread,
                stop,
            }
        })
        .collect();
    let wait_for_roster = |context: &str| {
        let deadline = Instant::now() + Duration::from_secs(20);
        while primary.repl_state().followers() != followers as u64 {
            assert!(
                Instant::now() < deadline,
                "[{cell}] roster stuck at {} of {followers} followers {context}",
                primary.repl_state().followers(),
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    wait_for_roster("before the storm");

    // The storm: concurrent replicated-acked writers racing periodic
    // checkpoints that truncate shipped segments under the live cursors,
    // with the cell's failpoint firing into the middle of it.
    let labels = AtomicI64::new(1);
    let follower_repls: Vec<_> = fleet.iter().map(|f| f.server.repl_state()).collect();
    let records: Vec<TxnRecord> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITER_THREADS)
            .map(|t| {
                let labels = &labels;
                let cell = &cell;
                let primary_db = &primary_db;
                let follower_repls = &follower_repls;
                let addr = primary.local_addr();
                scope.spawn(move || {
                    let client = WireClient::connect(addr).expect("connect primary");
                    let mut committed = Vec::new();
                    for i in 0..WRITES_PER_THREAD {
                        if t == 0 && i > 0 && i % CHECKPOINT_EVERY == 0 {
                            primary_db.checkpoint_now().expect("storm checkpoint");
                        }
                        let label = labels.fetch_add(1, Ordering::Relaxed);
                        let shard = shard_name((label as usize) % SHARDS);
                        let key = label % KEYS_PER_SHARD;
                        let handle = client
                            .submit_with_ack(
                                &shard,
                                "rmw",
                                vec![Value::Int(label), Value::Int(key)],
                                AckLevel::Replicated,
                            )
                            .expect("submit");
                        let result = handle
                            .wait_timeout(Duration::from_secs(30))
                            .unwrap_or_else(|| panic!("[{cell}] replicated ack wedged"));
                        let obs = match result {
                            Ok(Value::Str(obs)) => obs,
                            Ok(v) => panic!("[{cell}] unexpected result {v:?}"),
                            Err(e) if e.is_cc_abort() => continue,
                            Err(e) => panic!("[{cell}] write failed: {e:?}"),
                        };
                        // Quorum honesty: the reply was only now observed,
                        // so at least `quorum` followers must already have
                        // durably applied the commit epoch.
                        let epoch = handle.commit_epoch().expect("commit epoch");
                        let applied = follower_repls
                            .iter()
                            .filter(|r| r.applied_epoch() >= epoch)
                            .count();
                        assert!(
                            applied >= followers.min(2),
                            "[{cell}] replicated ack for epoch {epoch} observed with only \
                             {applied} followers durably applied",
                        );
                        let reads = parse_observations(&obs);
                        let writes: Vec<ReadObs> = reads
                            .iter()
                            .map(|r| ReadObs {
                                shard: r.shard.clone(),
                                key: r.key,
                                ver: r.ver + 1,
                            })
                            .collect();
                        committed.push(TxnRecord {
                            label,
                            reads,
                            writes,
                        });
                    }
                    committed
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert!(
        records.len() as i64 > WRITER_THREADS as i64 * WRITES_PER_THREAD / 2,
        "[{cell}] most writes must commit through the storm"
    );

    // Convergence: every follower — not just the quorum — catches up to
    // the primary's final register state.
    let mut expected: std::collections::HashMap<(String, i64), i64> =
        std::collections::HashMap::new();
    for shard in 0..SHARDS {
        let shard = shard_name(shard);
        let keys: Vec<Value> = (0..KEYS_PER_SHARD).map(Value::Int).collect();
        let obs = primary_db
            .invoke(&shard, "snapshot", keys)
            .expect("primary digest read");
        for read in parse_observations(obs.as_str()) {
            expected.insert((read.shard, read.key), read.ver);
        }
    }
    let mut records = records;
    for (i, follower) in fleet.iter().enumerate() {
        let deadline = Instant::now() + Duration::from_secs(20);
        'converge: loop {
            let mut seen = Vec::new();
            for shard in 0..SHARDS {
                let shard = shard_name(shard);
                let keys: Vec<Value> = (0..KEYS_PER_SHARD).map(Value::Int).collect();
                let obs = follower
                    .db
                    .invoke(&shard, "snapshot", keys)
                    .expect("follower digest read");
                seen.extend(parse_observations(obs.as_str()));
            }
            if seen
                .iter()
                .all(|r| expected[&(r.shard.clone(), r.key)] == r.ver)
            {
                // The converged snapshot joins the history as reads.
                records.push(TxnRecord {
                    label: 100_000 + i as i64,
                    reads: seen,
                    writes: Vec::new(),
                });
                break 'converge;
            }
            assert!(
                Instant::now() < deadline,
                "[{cell}] follower {i} never re-converged on the primary's digest"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    check_history_si(&records, &cell);

    // The roster healed from every feeder death: no leaked gauge entries,
    // and per-follower acks are exported for exactly the live set.
    wait_for_roster("after the storm");
    assert_eq!(
        primary.repl_state().follower_acks().len(),
        followers,
        "[{cell}] roster must hold exactly the live followers"
    );
    assert!(
        failpoint::hits(&fp) >= 1,
        "[{cell}] the failpoint never fired; the cell tested nothing"
    );
    failpoint::clear();

    for (i, follower) in fleet.into_iter().enumerate() {
        follower.stop.store(true, Ordering::SeqCst);
        let report = follower.thread.join().unwrap().expect("clean stop");
        assert!(
            !report.promoted,
            "[{cell}] follower {i} spuriously promoted: {report:?}"
        );
        follower.server.shutdown();
        drop(follower.db);
    }
    primary.shutdown();
    drop(primary_db);
}

/// The full matrix. Kill points and their budgets:
///
/// * `ship-mid-file=err:2` — the cursor faults after shipping new segment
///   bytes, twice; nothing shipped-but-unoffset may be lost or doubled.
/// * `truncate-under-cursor=err:2` — the poll faults as if a checkpoint
///   had vanished a tracked segment (on top of the *real* truncations the
///   storm's checkpoints cause).
/// * `ack-drop=err:3` — three follower acks vanish before the roster sees
///   them; cumulative acks on later epochs must still release the gate.
/// * `feeder-stall=err:1` — one feeder thread dies abruptly mid-loop; the
///   drop guard must keep the gauge truthful and the follower resubscribe.
#[test]
fn chaos_matrix_every_kill_point_converges_and_stays_si() {
    for followers in [1usize, 2, 3] {
        run_cell("ship-mid-file", "=err:2", followers);
        run_cell("truncate-under-cursor", "=err:2", followers);
        run_cell("ack-drop", "=err:3", followers);
        run_cell("feeder-stall", "=err:1", followers);
    }
}
