//! Workspace-level acceptance test for the observability layer: a mixed
//! workload must light up the commit-path phase histograms, the abort
//! breakdown must match what actually happened, and the two renderers must
//! agree with the snapshot.

use reactdb::common::{DeploymentConfig, DurabilityConfig, Key, Value};
use reactdb::core::{ReactorDatabaseSpec, ReactorType};
use reactdb::storage::{ColumnType, RelationDef, Schema, Tuple};
use reactdb::{AbortReason, MetricsSnapshot, Phase, ReactDB, TraceKind};

fn spec() -> ReactorDatabaseSpec {
    let counter = ReactorType::new("Counter")
        .with_relation(RelationDef::new(
            "state",
            Schema::of(&[("id", ColumnType::Int), ("n", ColumnType::Int)], &["id"]),
        ))
        .with_procedure("init", |ctx, _| {
            ctx.insert("state", Tuple::of([Value::Int(0), Value::Int(0)]))?;
            Ok(Value::Null)
        })
        .with_procedure("bump", |ctx, _| {
            let row = ctx.update_with("state", &Key::Int(0), |t| {
                t.values_mut()[1] = Value::Int(t.at(1).as_int() + 1);
            })?;
            Ok(Value::Int(row.at(1).as_int()))
        })
        .with_procedure("refuse", |ctx, _| ctx.abort("refused"));
    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(counter);
    spec.add_reactor("c-0", "Counter");
    spec.add_reactor("c-1", "Counter");
    spec
}

fn wal_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "reactdb-metrics-surface-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn mixed_workload_fills_the_export_surface() {
    let dir = wal_dir("fill");
    let config = DeploymentConfig::shared_nothing(2).with_durability(
        DurabilityConfig::epoch_sync(dir.to_string_lossy().as_ref()).with_interval_ms(0),
    );
    let db = ReactDB::boot(spec(), config);
    let client = db.client();
    client.invoke("c-0", "init", vec![]).unwrap();
    client.invoke("c-1", "init", vec![]).unwrap();
    for i in 0..10 {
        let handle = client
            .submit(&format!("c-{}", i % 2), "bump", vec![])
            .unwrap();
        handle.wait_durable().unwrap();
    }
    assert!(client.invoke("c-0", "refuse", vec![]).is_err());

    let before = db.metrics();
    for phase in [
        Phase::Execute,
        Phase::Lock,
        Phase::Fence,
        Phase::Validate,
        Phase::Write,
        Phase::Log,
        Phase::DurableAck,
    ] {
        let h = before
            .histogram(&format!("phase_{}_ns", phase.name()))
            .unwrap();
        assert!(h.count > 0, "{} empty", phase.name());
    }
    assert_eq!(before.counter("txn_committed"), Some(12));
    assert_eq!(before.counter("txn_aborts{reason=\"user_abort\"}"), Some(1));

    // Session-level breakdown agrees.
    let session = client.stats();
    let user_aborts = session
        .aborts_by_reason
        .iter()
        .find(|(r, _)| *r == AbortReason::UserAbort)
        .map(|(_, n)| *n)
        .unwrap();
    assert_eq!(user_aborts, 1);
    assert_eq!(session.aborted, 1);

    // Renderers round-trip the same values.
    let parsed = MetricsSnapshot::from_json(&before.to_json()).unwrap();
    assert_eq!(parsed, before);
    assert!(before
        .to_prometheus_text()
        .contains("reactdb_txn_committed 12"));

    // Deltas move with the workload.
    for _ in 0..5 {
        client.invoke("c-0", "bump", vec![]).unwrap();
    }
    let after = db.metrics();
    let delta = after.delta(&before);
    assert_eq!(delta.counter("txn_committed"), Some(5));

    // Trace events cover commit, abort and group-commit activity.
    let events = db.trace_events();
    assert!(events.iter().any(|e| matches!(e.kind, TraceKind::Commit)));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, TraceKind::Abort(AbortReason::UserAbort))));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, TraceKind::GroupCommitFsync)));
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
