//! Checkpoint/crash interleaving tests: recovery must restore exactly the
//! durable pre-crash state no matter where in the checkpoint protocol the
//! crash lands — mid-checkpoint (incomplete checkpoint ignored), after the
//! manifest commit but before truncation (covered records re-replay as
//! no-ops), or mid-truncation (a surviving subset of covered segments is
//! equally harmless) — plus a live-writer test: a checkpoint taken under
//! concurrent commits recovers a consistent epoch-prefix.
//!
//! The whole crash matrix runs twice: once with classic full-image redo
//! logging and once with delta redo logging (+ record compression). The
//! two runs perform the same logical history, so the recovered states must
//! be identical *across modes* — asserted with a shared state digest over
//! every row of every relation — which is what pins down the
//! delta/checkpoint interplay: every surviving delta chain must find its
//! base in a checkpoint row or an in-tail full image at every crash
//! point.

mod support;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use reactdb::common::{CheckpointConfig, DeploymentConfig, DurabilityConfig, Value};
use reactdb::engine::ReactDB;
use reactdb::workloads::smallbank::{self, customer_name};
use support::history;

const CUSTOMERS: usize = 6;
const HISTORY_TXNS: usize = 120;
const TAIL_TXNS: usize = 4;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "reactdb-ckpt-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path, delta: bool) -> DeploymentConfig {
    DeploymentConfig::shared_nothing(3).with_durability(
        DurabilityConfig::epoch_sync(dir.to_string_lossy().into_owned())
            .with_interval_ms(0)
            .with_delta_logging(delta)
            .with_compression(delta),
    )
}

/// Digest of the database's full logical state: every visible row of every
/// relation of every customer, in deterministic order, hashed with FNV-1a.
/// Versions (TIDs) are excluded — they depend on wall-clock epoch timing —
/// so the digest compares exactly what the log format must preserve: the
/// data. Shared by the full-image and delta crash-matrix runs.
fn state_digest(db: &ReactDB) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    for customer in 0..CUSTOMERS {
        for relation in ["account", "savings", "checking"] {
            let table = db.table(&customer_name(customer), relation).unwrap();
            for (key, record) in table.scan() {
                if !record.is_visible() {
                    continue;
                }
                eat(relation.as_bytes());
                eat(key.to_string().as_bytes());
                eat(format!("{:?}", record.read_unguarded()).as_bytes());
            }
        }
    }
    hash
}

fn balances(db: &ReactDB) -> BTreeMap<usize, f64> {
    (0..CUSTOMERS)
        .map(|c| {
            (
                c,
                db.invoke(&customer_name(c), "balance", vec![])
                    .unwrap()
                    .as_float(),
            )
        })
        .collect()
}

/// Copies every `wal-*.log` segment of `dir` into `backup`.
fn backup_segments(dir: &Path, backup: &Path) {
    fs::create_dir_all(backup).unwrap();
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap().to_owned();
        if name.starts_with("wal-") && name.ends_with(".log") {
            fs::copy(&path, backup.join(&name)).unwrap();
        }
    }
}

/// Builds the shared scenario: a checkpointed history with a durable tail,
/// crashing at the end. Returns the expected (durable) balances and the
/// path holding pre-checkpoint copies of every segment the checkpoint's
/// truncation may have deleted.
fn build_history(dir: &Path, backup: &Path, delta: bool) -> (BTreeMap<usize, f64>, u64) {
    let config = durable_config(dir, delta);
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();
    for i in 0..HISTORY_TXNS {
        db.invoke(
            &customer_name(i % CUSTOMERS),
            "deposit_checking",
            vec![Value::Float(1.0)],
        )
        .unwrap();
        if i % 25 == 24 {
            db.wal_sync().unwrap();
        }
    }
    db.wal_sync().unwrap();
    // Pre-checkpoint segment state: what a crash before truncation would
    // have left behind.
    backup_segments(dir, backup);
    let outcome = db.checkpoint_now().expect("checkpoint");
    assert!(outcome.rows > 0);
    for _ in 0..TAIL_TXNS {
        db.invoke(
            &customer_name(0),
            "deposit_checking",
            vec![Value::Float(5.0)],
        )
        .unwrap();
    }
    db.wal_sync().unwrap();
    if delta {
        assert!(
            db.stats().log_delta_records() > 0,
            "the delta run must actually exercise the delta commit path"
        );
    } else {
        assert_eq!(db.stats().log_delta_records(), 0);
    }
    let expected = balances(&db);
    let digest = state_digest(&db);
    db.simulate_crash();
    (expected, digest)
}

/// The crash points the recovery protocol must tolerate, expressed as
/// post-crash mutations of the log directory.
enum CrashPoint {
    /// Clean run: manifest committed, truncation completed.
    AfterTruncation,
    /// Mid-checkpoint: a later checkpoint attempt died before its manifest
    /// commit, leaving a torn temp file and an unreferenced data file.
    MidCheckpoint,
    /// A parallel part capture died: one writer thread's torn temp file
    /// plus a completed part from the same doomed attempt that never made
    /// it into a manifest.
    MidPartWrite,
    /// The manifest rewrite died after every part was durable: a torn
    /// manifest temp sits next to the committed manifest.
    MidManifest,
    /// Manifest committed, truncation never ran: every covered segment is
    /// still present and re-replays idempotently.
    BeforeTruncation,
    /// Truncation died halfway: only some covered segments were deleted.
    MidTruncation,
}

fn apply_crash_point(point: &CrashPoint, dir: &Path, backup: &Path) {
    match point {
        CrashPoint::AfterTruncation => {}
        CrashPoint::MidCheckpoint => {
            // Debris of an unfinished successor checkpoint: recovery must
            // keep using the committed manifest and clean these up.
            fs::write(dir.join("ckpt.tmp"), b"torn half-written snapshot").unwrap();
            let mut orphan = Vec::new();
            // A decodable header with no manifest pointing at it.
            orphan.extend_from_slice(b"RDBCKPT1");
            orphan.extend_from_slice(&99u64.to_le_bytes());
            orphan.extend_from_slice(&99u64.to_le_bytes());
            fs::write(dir.join("ckpt-000099.dat"), &orphan).unwrap();
        }
        CrashPoint::MidPartWrite => {
            // One writer thread died mid-stream (torn temp), another had
            // already finished its part — neither is manifest-referenced.
            fs::write(dir.join("ckpt-p00.tmp"), b"torn parallel part").unwrap();
            let mut orphan = Vec::new();
            orphan.extend_from_slice(b"RDBCKPT1");
            orphan.extend_from_slice(&98u64.to_le_bytes());
            orphan.extend_from_slice(&98u64.to_le_bytes());
            orphan.extend_from_slice(&1u32.to_le_bytes());
            fs::write(dir.join("ckpt-000098-p01.dat"), &orphan).unwrap();
        }
        CrashPoint::MidManifest => {
            fs::write(
                dir.join("checkpoint-manifest.tmp"),
                b"torn manifest rewrite",
            )
            .unwrap();
        }
        CrashPoint::BeforeTruncation => {
            // Restore every pre-checkpoint segment truncation deleted.
            for entry in fs::read_dir(backup).unwrap() {
                let path = entry.unwrap().path();
                let name = path.file_name().unwrap().to_str().unwrap().to_owned();
                if !dir.join(&name).exists() {
                    fs::copy(&path, dir.join(&name)).unwrap();
                }
            }
        }
        CrashPoint::MidTruncation => {
            // Restore only every other deleted segment.
            for (i, entry) in fs::read_dir(backup).unwrap().enumerate() {
                let path = entry.unwrap().path();
                let name = path.file_name().unwrap().to_str().unwrap().to_owned();
                if i % 2 == 0 && !dir.join(&name).exists() {
                    fs::copy(&path, dir.join(&name)).unwrap();
                }
            }
        }
    }
}

#[test]
fn recovery_tolerates_a_crash_at_every_checkpoint_protocol_step() {
    for (tag, point) in [
        ("clean", CrashPoint::AfterTruncation),
        ("mid-ckpt", CrashPoint::MidCheckpoint),
        ("mid-part", CrashPoint::MidPartWrite),
        ("mid-manifest", CrashPoint::MidManifest),
        ("pre-trunc", CrashPoint::BeforeTruncation),
        ("mid-trunc", CrashPoint::MidTruncation),
    ] {
        // Identical logical history under both log formats; the recovered
        // digests must agree with the pre-crash digests AND across modes.
        let mut digests = Vec::new();
        for delta in [false, true] {
            let mode = if delta { "delta" } else { "full" };
            let dir = test_dir(&format!("{tag}-{mode}"));
            let backup = test_dir(&format!("{tag}-{mode}-backup"));
            let (expected, pre_crash_digest) = build_history(&dir, &backup, delta);
            apply_crash_point(&point, &dir, &backup);

            let recovered =
                ReactDB::recover(smallbank::spec(CUSTOMERS), durable_config(&dir, delta))
                    .unwrap_or_else(|e| panic!("{tag}/{mode}: recovery failed: {e:?}"));
            assert_eq!(
                balances(&recovered),
                expected,
                "{tag}/{mode}: recovered state must equal the durable pre-crash model"
            );
            let recovered_digest = state_digest(&recovered);
            assert_eq!(
                recovered_digest, pre_crash_digest,
                "{tag}/{mode}: recovery reproduces the pre-crash state digest"
            );
            digests.push(recovered_digest);
            assert_eq!(
                recovered.stats().recovered_checkpoint_rows(),
                (CUSTOMERS * 3) as u64,
                "{tag}/{mode}: the committed checkpoint supplies the base state"
            );
            match point {
                CrashPoint::AfterTruncation
                | CrashPoint::MidCheckpoint
                | CrashPoint::MidPartWrite
                | CrashPoint::MidManifest => {
                    // Only the tail survives on disk: recovery is
                    // tail-bounded.
                    assert!(
                        recovered.stats().recovered_txns() <= (2 * TAIL_TXNS) as u64,
                        "{tag}/{mode}: expected a tail-bounded replay, got {}",
                        recovered.stats().recovered_txns()
                    );
                }
                CrashPoint::BeforeTruncation | CrashPoint::MidTruncation => {
                    // Covered segments are present but skipped by the
                    // checkpoint-epoch filter, so the replay stays
                    // tail-scale even with the full history restored.
                    assert!(
                        recovered.stats().recovered_txns() < (HISTORY_TXNS / 2) as u64,
                        "{tag}/{mode}: covered records must not be re-replayed at scale, got {}",
                        recovered.stats().recovered_txns()
                    );
                }
            }
            // The debris of an unfinished checkpoint — torn temps, orphan
            // parts, a torn manifest rewrite — is cleaned up.
            for debris in [
                "ckpt.tmp",
                "ckpt-p00.tmp",
                "checkpoint-manifest.tmp",
                "ckpt-000099.dat",
                "ckpt-000098-p01.dat",
            ] {
                assert!(!dir.join(debris).exists(), "{tag}/{mode}: {debris} cleaned");
            }
            // The recovered instance keeps committing and checkpointing.
            recovered
                .invoke(
                    &customer_name(1),
                    "deposit_checking",
                    vec![Value::Float(2.0)],
                )
                .unwrap();
            let next = recovered
                .checkpoint_now()
                .expect("post-recovery checkpoint");
            assert!(next.rows >= (CUSTOMERS * 3) as u64);
            drop(recovered);
            let _ = fs::remove_dir_all(&dir);
            let _ = fs::remove_dir_all(&backup);
        }
        assert_eq!(
            digests[0], digests[1],
            "{tag}: delta-mode recovery must be byte-identical to the \
             full-image control run"
        );
    }
}

#[test]
fn checkpoint_under_concurrent_commits_recovers_a_consistent_prefix() {
    for delta in [false, true] {
        checkpoint_under_live_writers(delta);
    }
}

fn checkpoint_under_live_writers(delta: bool) {
    let dir = test_dir(&format!(
        "live-writer-{}",
        if delta { "delta" } else { "full" }
    ));
    // Real daemons: 1 ms group commits; checkpoints run from this thread
    // while writer threads commit continuously.
    let config = DeploymentConfig::shared_nothing(3).with_durability(
        DurabilityConfig::epoch_sync(dir.to_string_lossy().into_owned())
            .with_interval_ms(1)
            .with_delta_logging(delta)
            .with_compression(delta),
    );
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).unwrap();

    std::thread::scope(|scope| {
        for customer in 0..CUSTOMERS {
            let db = &db;
            scope.spawn(move || {
                for _ in 0..40 {
                    db.invoke(
                        &customer_name(customer),
                        "deposit_checking",
                        vec![Value::Float(1.0)],
                    )
                    .unwrap();
                }
            });
        }
        // Checkpoints interleave with the live writers: no stop-the-world,
        // every capture is fuzzy and completed under the durability gate.
        for _ in 0..3 {
            db.checkpoint_now().expect("live checkpoint");
        }
    });
    assert!(db.stats().checkpoints_taken() >= 3);

    // Everything committed so far becomes durable, then the crash.
    db.wal_sync().unwrap();
    let expected = balances(&db);
    db.simulate_crash();

    let recovered = ReactDB::recover(smallbank::spec(CUSTOMERS), config).unwrap();
    assert_eq!(
        balances(&recovered),
        expected,
        "fuzzy checkpoint + tail replay reproduces the durable state exactly"
    );
    assert!(recovered.stats().recovered_checkpoint_rows() > 0);
    assert!(
        recovered.stats().recovered_txns() < (CUSTOMERS * 40) as u64,
        "the checkpoints bounded the replayed tail below the full history"
    );
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Parallel capture / partitioned replay: determinism across worker counts
// and checkpoint modes
// ---------------------------------------------------------------------------

/// Copies every regular file of `src` into `dst` — a byte-level clone of a
/// crashed log directory, so the same log can be recovered more than once.
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let path = entry.unwrap().path();
        if path.is_file() {
            fs::copy(&path, dst.join(path.file_name().unwrap())).unwrap();
        }
    }
}

/// Builds a deterministic history under `ckpt` (two checkpoints with a
/// skewed update burst in between, plus a durable tail) and crashes.
/// Returns the durable balances, the state digest, and whether the second
/// capture extended the chain as a delta.
fn build_parallel_history(dir: &Path, ckpt: CheckpointConfig) -> (BTreeMap<usize, f64>, u64, bool) {
    let config = durable_config(dir, false).with_checkpoint(ckpt);
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();
    for i in 0..HISTORY_TXNS {
        db.invoke(
            &customer_name(i % CUSTOMERS),
            "deposit_checking",
            vec![Value::Float(1.0)],
        )
        .unwrap();
    }
    db.wal_sync().unwrap();
    let first = db.checkpoint_now().expect("chain root");
    assert!(!first.delta, "the chain root is always a full capture");
    assert!(
        first.parts >= 2,
        "two checkpoint writers must split the tables across part files, got {}",
        first.parts
    );
    // Skewed burst: only two customers dirty between the captures.
    for _ in 0..10 {
        for customer in 0..2 {
            db.invoke(
                &customer_name(customer),
                "deposit_checking",
                vec![Value::Float(2.0)],
            )
            .unwrap();
        }
    }
    db.wal_sync().unwrap();
    let second = db.checkpoint_now().expect("second capture");
    if second.delta {
        assert!(
            second.rows < first.rows,
            "a delta capture carries only the dirty rows: {} vs {}",
            second.rows,
            first.rows
        );
    }
    for _ in 0..TAIL_TXNS {
        db.invoke(
            &customer_name(2),
            "deposit_checking",
            vec![Value::Float(5.0)],
        )
        .unwrap();
    }
    db.wal_sync().unwrap();
    let expected = balances(&db);
    let digest = state_digest(&db);
    db.simulate_crash();
    (expected, digest, second.delta)
}

#[test]
fn parallel_recovery_is_deterministic_across_worker_counts_and_checkpoint_modes() {
    // The same logical history captured twice: once as a full+delta chain,
    // once as full-only checkpoints. The pre-crash digests must already
    // agree (the history is deterministic), and every recovery below must
    // reproduce them exactly.
    let delta_dir = test_dir("parallel-det-delta");
    let (expected, digest, was_delta) = build_parallel_history(
        &delta_dir,
        CheckpointConfig::manual()
            .with_workers(2)
            .with_full_every(3),
    );
    assert!(was_delta, "full_every=3 makes the second capture a delta");

    let full_dir = test_dir("parallel-det-full");
    let (full_expected, full_digest, full_was_delta) =
        build_parallel_history(&full_dir, CheckpointConfig::manual().with_workers(2));
    assert!(!full_was_delta, "deltas disabled: every capture is full");
    assert_eq!(expected, full_expected);
    assert_eq!(
        digest, full_digest,
        "identical histories digest identically regardless of checkpoint mode"
    );

    // Each crashed directory recovered with 1 replay lane and with 4: the
    // digests must be byte-identical to each other and to the pre-crash
    // state — partitioned replay may not change what recovery computes.
    for (mode, dir) in [("delta", &delta_dir), ("full", &full_dir)] {
        for workers in [1usize, 4] {
            let copy = test_dir(&format!("parallel-det-{mode}-{workers}w"));
            copy_dir(dir, &copy);
            let config = durable_config(&copy, false).with_checkpoint(
                CheckpointConfig::manual()
                    .with_workers(2)
                    .with_replay_workers(workers),
            );
            let recovered = ReactDB::recover(smallbank::spec(CUSTOMERS), config)
                .unwrap_or_else(|e| panic!("{mode}/{workers}w: recovery failed: {e:?}"));
            assert_eq!(
                balances(&recovered),
                expected,
                "{mode}/{workers}w: balances survive"
            );
            assert_eq!(
                state_digest(&recovered),
                digest,
                "{mode}/{workers}w: recovered digest matches the single-lane ground truth"
            );
            assert_eq!(
                recovered.stats().recovery_replay_workers(),
                workers as u64,
                "{mode}/{workers}w: the configured lane count was actually used"
            );
            drop(recovered);
            let _ = fs::remove_dir_all(&copy);
        }
    }

    // Mid-parallel-replay crash: a recovery that dies immediately after
    // its parallel replay (before committing anything new) leaves a
    // directory a second parallel recovery restores identically.
    let config = durable_config(&delta_dir, false).with_checkpoint(
        CheckpointConfig::manual()
            .with_workers(2)
            .with_replay_workers(4),
    );
    let once = ReactDB::recover(smallbank::spec(CUSTOMERS), config.clone()).unwrap();
    assert_eq!(state_digest(&once), digest);
    once.simulate_crash();
    let twice = ReactDB::recover(smallbank::spec(CUSTOMERS), config).unwrap();
    assert_eq!(
        balances(&twice),
        expected,
        "replay is restartable: crashing right after recovery loses nothing"
    );
    assert_eq!(state_digest(&twice), digest);
    drop(twice);
    let _ = fs::remove_dir_all(&delta_dir);
    let _ = fs::remove_dir_all(&full_dir);
}

/// The black-box serializability checker driven across a crash → parallel
/// recovery boundary: version counters live in durable rows, so the
/// combined pre-crash + post-recovery history is checkable as one — any
/// update lost (or resurrected) by parallel capture, the delta chain, or
/// partitioned replay shows up as a duplicate writer, a version gap, or a
/// dependency cycle.
#[test]
fn history_stays_serializable_across_a_crash_and_parallel_recovery() {
    let dir = test_dir("history-parallel");
    let config = DeploymentConfig::shared_nothing(history::SHARDS)
        .with_durability(
            DurabilityConfig::epoch_sync(dir.to_string_lossy().into_owned()).with_interval_ms(1),
        )
        .with_checkpoint(
            CheckpointConfig::manual()
                .with_workers(2)
                .with_full_every(2)
                .with_replay_workers(3),
        );
    let db = ReactDB::boot(history::spec(), config.clone());
    history::load(&db);

    // Concurrent workload, full checkpoint, more workload, delta
    // checkpoint, then a tail the log alone must carry.
    let mut records = history::run_workload(&db);
    let first = db.checkpoint_now().expect("chain root");
    assert!(!first.delta);
    let mut second = history::run_workload(&db);
    for record in &mut second {
        record.label += 1_000_000;
    }
    records.extend(second);
    let extended = db.checkpoint_now().expect("delta capture");
    assert!(extended.delta, "full_every=2 chains a delta onto the root");
    let mut third = history::run_workload(&db);
    for record in &mut third {
        record.label += 2_000_000;
    }
    records.extend(third);
    db.wal_sync().unwrap();
    db.simulate_crash();

    let recovered = ReactDB::recover(history::spec(), config).unwrap();
    assert_eq!(recovered.stats().recovery_replay_workers(), 3);
    let mut post = history::run_workload(&recovered);
    for record in &mut post {
        record.label += 3_000_000;
    }
    records.extend(post);

    history::assert_commit_mix(&records, "crash + parallel recovery");
    history::check_history(&records, "crash + parallel recovery");
    drop(recovered);
    let _ = fs::remove_dir_all(&dir);
}
