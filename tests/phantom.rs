//! End-to-end phantom-serializability tests: a committed insert into a
//! concurrently scanned range must abort the scanner with a
//! phantom-classified error, a non-overlapping insert must not, and a
//! `RetryPolicy`-driven retry must then succeed.

use std::sync::Arc;
use std::time::Duration;

use reactdb_common::{DeploymentConfig, Key, TxnError, Value};
use reactdb_core::{ReactorDatabaseSpec, ReactorType};
use reactdb_engine::{ReactDB, RetryPolicy};
use reactdb_storage::{ColumnType, RelationDef, Schema, Tuple};

/// A ledger reactor whose `scan_window` procedure scans a bounded id range
/// and then spins long enough for a concurrent insert to commit inside the
/// window before the scanner validates.
fn ledger_spec() -> ReactorDatabaseSpec {
    let ledger = ReactorType::new("Ledger")
        .with_relation(RelationDef::new(
            "entries",
            Schema::of(
                &[("id", ColumnType::Int), ("val", ColumnType::Int)],
                &["id"],
            ),
        ))
        .with_procedure("scan_window", |ctx, args| {
            // args: [low, high, spin]
            let low = args[0].as_int();
            let high = args[1].as_int();
            let spin = args[2].as_int() as u64;
            let rows = ctx.scan_bounded("entries", Key::Int(low)..Key::Int(high))?;
            ctx.busy_work(spin);
            Ok(Value::Int(rows.len() as i64))
        })
        .with_procedure("insert_entry", |ctx, args| {
            ctx.insert(
                "entries",
                Tuple::of([Value::Int(args[0].as_int()), Value::Int(0)]),
            )?;
            Ok(Value::Null)
        });
    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(ledger);
    spec.add_reactor("ledger", "Ledger");
    spec
}

fn boot() -> ReactDB {
    // Round-robin routing: the scanner and the racing inserter land on
    // different executors of the shared container, so they genuinely run
    // concurrently (affinity routing would serialize them on the ledger
    // reactor's home executor).
    let db = ReactDB::boot(
        ledger_spec(),
        DeploymentConfig::shared_everything_without_affinity(2),
    );
    for i in 0..50i64 {
        db.load_row(
            "ledger",
            "entries",
            Tuple::of([Value::Int(i), Value::Int(0)]),
        )
        .unwrap();
    }
    db
}

/// Spin budget long enough that the racing insert reliably commits while
/// the scanner is still between its scan and its validation.
const SPIN: i64 = 40_000_000;

/// Submits a slow scanner of `[0, 1000)` and, while it spins, commits an
/// insert of `key`. Returns the scanner's outcome.
fn race_scan_against_insert(db: &ReactDB, key: i64) -> Result<Value, TxnError> {
    let client = db.client();
    let scanner = client
        .submit(
            "ledger",
            "scan_window",
            vec![Value::Int(0), Value::Int(1000), Value::Int(SPIN)],
        )
        .unwrap();
    // Give the scanner a head start so its scan happened, then commit the
    // insert while it is still spinning.
    std::thread::sleep(Duration::from_millis(5));
    client
        .invoke("ledger", "insert_entry", vec![Value::Int(key)])
        .unwrap();
    scanner.wait()
}

#[test]
fn committed_insert_into_scanned_range_phantom_aborts_the_scanner() {
    let db = boot();
    let mut saw_phantom = false;
    // The interleaving is timing-dependent; retry a few times, though the
    // generous spin makes the first attempt succeed in practice.
    for attempt in 0..10 {
        let key = 500 + attempt; // inside the scanned [0, 1000) window
        match race_scan_against_insert(&db, key) {
            Err(TxnError::Phantom) => {
                saw_phantom = true;
                break;
            }
            Err(e) => panic!("expected a phantom abort, got {e:?}"),
            Ok(_) => {} // insert lost the race; try again
        }
    }
    assert!(
        saw_phantom,
        "scanner must abort with a phantom-classified error"
    );
    assert!(
        db.stats().phantom_aborts() >= 1,
        "phantom aborts are counted separately"
    );
    assert!(
        db.stats().cc_aborts() >= db.stats().phantom_aborts(),
        "phantoms are a subset of cc aborts"
    );
    assert!(db.stats().scan_ops() >= 1);
}

#[test]
fn non_overlapping_insert_does_not_abort_the_scanner() {
    let db = boot();
    // Grow the table so the scanned prefix and the insert region live on
    // different index nodes.
    for i in 1000..1400i64 {
        db.load_row(
            "ledger",
            "entries",
            Tuple::of([Value::Int(i), Value::Int(0)]),
        )
        .unwrap();
    }
    let phantoms_before = db.stats().phantom_aborts();
    for attempt in 0..5 {
        // Insert far outside the scanned [0, 1000) window. Only the 50
        // seeded rows fall inside it, and that count must stay stable.
        let value = race_scan_against_insert(&db, 2000 + attempt)
            .expect("a disjoint insert must not abort the scan");
        assert_eq!(value, Value::Int(50), "the scanned prefix is stable");
    }
    assert_eq!(
        db.stats().phantom_aborts(),
        phantoms_before,
        "no phantom was signalled for disjoint ranges"
    );
}

#[test]
fn retry_policy_drives_a_phantom_aborted_scan_to_success() {
    let db = Arc::new(boot());
    // A background inserter keeps committing into the scanned range while
    // the retrying scanner runs.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let inserter = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut key = 10_000i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                key += 1;
                let _ = db.invoke("ledger", "insert_entry", vec![Value::Int(key)]);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    // The scan covers the inserter's whole key range, so individual
    // attempts may phantom-abort; the OCC retry policy must absorb that
    // and return a clean result. The scan itself is short relative to the
    // insert cadence, so a retry window free of collisions exists.
    let result = db.client().invoke_with_retry(
        "ledger",
        "scan_window",
        vec![Value::Int(0), Value::Int(1_000_000), Value::Int(100_000)],
        &RetryPolicy::occ().with_max_attempts(100),
    );
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    inserter.join().unwrap();
    let count = result.expect("retries converge to a committed scan");
    assert!(
        count.as_int() >= 50,
        "the scan saw at least the loaded rows"
    );
}
