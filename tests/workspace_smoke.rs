//! Facade smoke test that plain `cargo test` (root package only — CI runs
//! `--workspace` as well, but the keep-green rule says both invocations must
//! exercise real suites) drives the full durability vertical through the
//! `reactdb` facade: boot with delta redo logging + record compression,
//! commit through the session API, crash, recover, and check both the
//! recovered state and the delta-path statistics.

use std::collections::BTreeMap;

use reactdb::common::{DeploymentConfig, DurabilityConfig, Value};
use reactdb::engine::ReactDB;
use reactdb::workloads::smallbank::{self, customer_name};

const CUSTOMERS: usize = 4;

fn config(dir: &str, delta: bool) -> DeploymentConfig {
    DeploymentConfig::shared_nothing(2).with_durability(
        DurabilityConfig::epoch_sync(dir)
            .with_interval_ms(0)
            .with_delta_logging(delta)
            .with_compression(delta),
    )
}

fn balances(db: &ReactDB) -> BTreeMap<usize, f64> {
    (0..CUSTOMERS)
        .map(|c| {
            (
                c,
                db.invoke(&customer_name(c), "balance", vec![])
                    .unwrap()
                    .as_float(),
            )
        })
        .collect()
}

#[test]
fn facade_delta_mode_commits_crash_and_recover() {
    let dir = std::env::temp_dir().join(format!("reactdb-workspace-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir = dir.to_string_lossy().into_owned();

    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config(&dir, true));
    smallbank::load(&db, CUSTOMERS).unwrap();
    let client = db.client();
    for i in 0..24 {
        client
            .invoke(
                &customer_name(i % CUSTOMERS),
                "deposit_checking",
                vec![Value::Float(1.0 + i as f64)],
            )
            .unwrap();
    }
    assert!(
        db.stats().log_delta_records() > 0,
        "repeat balance updates ship as deltas"
    );
    assert!(db.stats().log_bytes_saved() > 0);
    db.wal_sync().unwrap();
    let expected = balances(&db);
    // One unsynced deposit is lost by the crash.
    client
        .invoke(
            &customer_name(0),
            "deposit_checking",
            vec![Value::Float(1e6)],
        )
        .unwrap();
    drop(client);
    db.simulate_crash();

    let recovered = ReactDB::recover(smallbank::spec(CUSTOMERS), config(&dir, true)).unwrap();
    assert_eq!(
        balances(&recovered),
        expected,
        "delta + compressed log recovers the exact durable state"
    );
    // The recovered instance keeps serving and delta-logging.
    recovered
        .invoke(
            &customer_name(1),
            "deposit_checking",
            vec![Value::Float(1.0)],
        )
        .unwrap();
    recovered
        .invoke(
            &customer_name(1),
            "deposit_checking",
            vec![Value::Float(1.0)],
        )
        .unwrap();
    assert!(recovered.stats().log_delta_records() >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
