//! The black-box serializability checker and its register workload, shared
//! between the in-process history test (`tests/history_check.rs`) and the
//! wire-protocol one (`tests/wire_history_check.rs`).
//!
//! In the spirit of *Efficient Black-box Checking of Snapshot Isolation in
//! Databases* (Huang et al.): the engine is treated as a black box. A
//! concurrent workload of read-modify-write register transactions (point
//! rmw, cross-reactor 2PC rmw, and read-only snapshots) records, through
//! whatever session API the test supplies, what each committed transaction
//! *observed* — each register's version counter at read time — and what it
//! wrote (version + 1 under its own label). An offline pass then
//! reconstructs the dependency graph from the observations alone:
//!
//! * **WR**: the writer of the version a transaction read precedes it;
//! * **WW**: the writer of version `v` precedes the writer of `v + 1`;
//! * **RW**: a reader of version `v` precedes the writer of `v + 1`.
//!
//! Serializability requires this graph to be acyclic (conflict
//! serializability, Bernstein et al.; the repo's `reactdb_core::history`
//! module supplies the cycle test). A cycle means the engine committed an
//! interleaving with no equivalent serial order — the history is dumped so
//! the offending transactions can be read off. Two structural invariants
//! are checked on the way: every `(register, version)` pair has exactly
//! one writer (a duplicate is a lost update) and versions are dense (a
//! gap means a committed write built on a version that was never
//! committed).
//!
//! The workload is invoker-agnostic: [`run_workload_with`] takes a factory
//! producing one `invoke` closure per worker thread, so the same history
//! can be driven through an in-process [`reactdb::engine::ReactDB`] client
//! or a `reactdb-client` wire connection — the checker cannot tell the
//! difference, which is the point.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, Ordering};

use reactdb::common::{Key, Result, TxnError, Value};
use reactdb::core::history::ConflictGraph;
use reactdb::core::{ReactorDatabaseSpec, ReactorType};
use reactdb::engine::ReactDB;
use reactdb::storage::{ColumnType, RelationDef, Schema, Tuple};

pub const SHARDS: usize = 3;
pub const KEYS_PER_SHARD: i64 = 4;
pub const THREADS: usize = 4;
pub const TXNS_PER_THREAD: usize = 40;

pub fn shard_name(i: usize) -> String {
    format!("shard-{i}")
}

/// One observed read: (shard, key) is the register, `ver` the version
/// counter the transaction saw.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReadObs {
    pub shard: String,
    pub key: i64,
    pub ver: i64,
}

pub fn parse_observations(s: &str) -> Vec<ReadObs> {
    s.split(';')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut fields = part.split(':');
            ReadObs {
                shard: fields.next().expect("shard").to_owned(),
                key: fields.next().expect("key").parse().expect("key int"),
                ver: fields.next().expect("ver").parse().expect("ver int"),
            }
        })
        .collect()
}

/// The register server: each shard reactor owns `KEYS_PER_SHARD` versioned
/// registers. `rmw` reads and bumps each named register under the caller's
/// label and reports the observed versions; `rmw_remote` additionally bumps
/// a register on another shard through a sub-transaction (2PC);
/// `snapshot` only reads.
pub fn spec() -> ReactorDatabaseSpec {
    let rmw_local =
        |ctx: &reactdb::core::ReactorCtx<'_>, label: i64, keys: &[i64]| -> Result<String> {
            let mut obs = Vec::new();
            for key in keys {
                let row = ctx.get_expected("regs", &Key::Int(*key))?;
                let ver = row.at(1).as_int();
                obs.push(format!("{}:{}:{}", ctx.reactor_name(), key, ver));
                ctx.update(
                    "regs",
                    Tuple::of([
                        Value::Int(*key),
                        Value::Int(ver + 1),
                        Value::Int(label),
                        row.at(3).clone(),
                    ]),
                )?;
            }
            Ok(obs.join(";"))
        };
    let registers = ReactorType::new("Registers")
        .with_relation(RelationDef::new(
            "regs",
            Schema::of(
                &[
                    ("id", ColumnType::Int),
                    ("ver", ColumnType::Int),
                    ("writer", ColumnType::Int),
                    // Fixed payload: makes the rows wide enough that delta
                    // frames are actually smaller than full images, so the
                    // delta commit path is exercised for real.
                    ("pad", ColumnType::Str),
                ],
                &["id"],
            ),
        ))
        .with_procedure("rmw", move |ctx, args| {
            let label = args[0].as_int();
            let keys: Vec<i64> = args[1..].iter().map(|v| v.as_int()).collect();
            Ok(Value::Str(rmw_local(ctx, label, &keys)?))
        })
        .with_procedure("rmw_remote", move |ctx, args| {
            // args: [label, local key, dst shard, dst key]
            let label = args[0].as_int();
            let local = rmw_local(ctx, label, &[args[1].as_int()])?;
            let dst = args[2].as_str().to_owned();
            let remote = ctx
                .call(&dst, "rmw", vec![Value::Int(label), args[3].clone()])?
                .get()?;
            Ok(Value::Str(format!("{local};{}", remote.as_str())))
        })
        .with_procedure("snapshot", move |ctx, args| {
            let mut obs = Vec::new();
            for key in args.iter().map(|v| v.as_int()) {
                let row = ctx.get_expected("regs", &Key::Int(key))?;
                obs.push(format!(
                    "{}:{}:{}",
                    ctx.reactor_name(),
                    key,
                    row.at(1).as_int()
                ));
            }
            Ok(Value::Str(obs.join(";")))
        });

    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(registers);
    for i in 0..SHARDS {
        spec.add_reactor(shard_name(i), "Registers");
    }
    spec
}

pub fn load(db: &ReactDB) {
    for shard in 0..SHARDS {
        for key in 0..KEYS_PER_SHARD {
            db.load_row(
                &shard_name(shard),
                "regs",
                Tuple::of([
                    Value::Int(key),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Str("register-payload-".repeat(4)),
                ]),
            )
            .unwrap();
        }
    }
}

/// One committed transaction's black-box record.
#[derive(Debug, Clone)]
pub struct TxnRecord {
    pub label: i64,
    pub reads: Vec<ReadObs>,
    /// Registers this transaction wrote (at version `read + 1`); empty for
    /// snapshots.
    pub writes: Vec<ReadObs>,
}

/// A tiny deterministic RNG so the workload needs no external crate state.
pub struct Lcg(pub u64);
impl Lcg {
    pub fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Runs the concurrent workload through an in-process client per thread.
pub fn run_workload(db: &ReactDB) -> Vec<TxnRecord> {
    run_workload_with(|_| {
        let client = db.client();
        move |reactor: &str, procedure: &str, args: Vec<Value>| {
            client.invoke(reactor, procedure, args)
        }
    })
}

/// Runs the concurrent workload and returns every *committed* transaction's
/// observation record. Aborted attempts are discarded: they installed
/// nothing, so the black box never shows their labels.
///
/// `make_invoker` is called once per worker thread (on the spawning thread)
/// and produces that thread's `invoke(reactor, procedure, args)` function —
/// an in-process session or a wire connection, the checker doesn't care.
pub fn run_workload_with<C, F>(make_invoker: F) -> Vec<TxnRecord>
where
    C: Fn(&str, &str, Vec<Value>) -> std::result::Result<Value, TxnError> + Send,
    F: Fn(usize) -> C,
{
    let labels = AtomicI64::new(1);
    let records: Vec<TxnRecord> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let labels = &labels;
                let invoke = make_invoker(t);
                scope.spawn(move || {
                    let mut rng = Lcg(0x9E3779B97F4A7C15 ^ (t as u64 + 1));
                    let mut committed = Vec::new();
                    for _ in 0..TXNS_PER_THREAD {
                        let label = labels.fetch_add(1, Ordering::Relaxed);
                        let shard = rng.below(SHARDS as u64) as usize;
                        let k0 = rng.below(KEYS_PER_SHARD as u64) as i64;
                        let k1 =
                            (k0 + 1 + rng.below(KEYS_PER_SHARD as u64 - 1) as i64) % KEYS_PER_SHARD;
                        let (proc, args, writes_reads): (&str, Vec<Value>, bool) =
                            match rng.below(4) {
                                // Multi-register rmw on one shard.
                                0 | 1 => (
                                    "rmw",
                                    vec![Value::Int(label), Value::Int(k0), Value::Int(k1)],
                                    true,
                                ),
                                // Cross-shard rmw: a 2PC commit.
                                2 => {
                                    let dst = (shard + 1) % SHARDS;
                                    (
                                        "rmw_remote",
                                        vec![
                                            Value::Int(label),
                                            Value::Int(k0),
                                            Value::Str(shard_name(dst)),
                                            Value::Int(k1),
                                        ],
                                        true,
                                    )
                                }
                                // Read-only snapshot of two registers.
                                _ => ("snapshot", vec![Value::Int(k0), Value::Int(k1)], false),
                            };
                        match invoke(&shard_name(shard), proc, args) {
                            Ok(Value::Str(obs)) => {
                                let reads = parse_observations(&obs);
                                let writes = if writes_reads {
                                    reads
                                        .iter()
                                        .map(|r| ReadObs {
                                            shard: r.shard.clone(),
                                            key: r.key,
                                            ver: r.ver + 1,
                                        })
                                        .collect()
                                } else {
                                    Vec::new()
                                };
                                committed.push(TxnRecord {
                                    label,
                                    reads,
                                    writes,
                                });
                            }
                            Ok(v) => panic!("unexpected result {v:?}"),
                            // OCC/2PC aborts are part of normal operation;
                            // the label dies with the attempt.
                            Err(e) if e.is_cc_abort() || e.is_dangerous_structure() => {}
                            Err(e) => panic!("unexpected error {e:?}"),
                        }
                    }
                    committed
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    records
}

/// The offline pass: rebuilds the dependency graph from observations and
/// asserts acyclicity, dumping the history on violation.
pub fn check_history(records: &[TxnRecord], context: &str) {
    // Version ledger per register: version -> writing label. Version 0 is
    // the initial load, attributed to the virtual transaction 0.
    let mut writers: HashMap<(String, i64), BTreeMap<i64, i64>> = HashMap::new();
    for record in records {
        for w in &record.writes {
            let ledger = writers.entry((w.shard.clone(), w.key)).or_default();
            if let Some(previous) = ledger.insert(w.ver, record.label) {
                dump_and_panic(
                    records,
                    context,
                    &format!(
                        "lost update: {}:{} version {} written by both txn {} and txn {}",
                        w.shard, w.key, w.ver, previous, record.label
                    ),
                );
            }
        }
    }
    for ledger in writers.values_mut() {
        ledger.insert(0, 0);
    }
    // Density: committed writes build on committed versions only.
    for ((shard, key), ledger) in &writers {
        let max = *ledger.keys().last().unwrap();
        if ledger.len() as i64 != max + 1 {
            dump_and_panic(
                records,
                context,
                &format!("version gap on {shard}:{key}: ledger {ledger:?}"),
            );
        }
    }

    let mut nodes: Vec<u64> = records.iter().map(|r| r.label as u64).collect();
    nodes.push(0);
    let mut graph = ConflictGraph::new(nodes);
    for ledger in writers.values() {
        // WW: version order is dependency order between writers.
        let labels: Vec<i64> = ledger.values().copied().collect();
        for pair in labels.windows(2) {
            graph.add_edge(pair[0] as u64, pair[1] as u64);
        }
    }
    for record in records {
        for read in &record.reads {
            let ledger = &writers[&(read.shard.clone(), read.key)];
            // WR: the writer of the observed version precedes the reader.
            let writer = *ledger.get(&read.ver).unwrap_or_else(|| {
                dump_and_panic(
                    records,
                    context,
                    &format!(
                        "txn {} read {}:{} version {} which no committed txn wrote",
                        record.label, read.shard, read.key, read.ver
                    ),
                );
            });
            graph.add_edge(writer as u64, record.label as u64);
            // RW: the reader precedes whoever overwrote what it read.
            if let Some(next_writer) = ledger.get(&(read.ver + 1)) {
                graph.add_edge(record.label as u64, *next_writer as u64);
            }
        }
    }
    if !graph.is_acyclic() {
        dump_and_panic(
            records,
            context,
            "dependency graph has a cycle: no equivalent serial order exists",
        );
    }
    // An acyclic graph has a serial witness; sanity-check the API agrees.
    assert!(graph.serial_order().is_some(), "{context}: witness exists");
}

/// The snapshot-isolation variant of [`check_history`]: the same ledger
/// invariants, but the cycle test drops RW (anti-dependency) edges.
///
/// Under SI every transaction reads one consistent snapshot and
/// first-committer-wins orders conflicting writers, so the WW ∪ WR graph
/// must embed in the commit/snapshot order and stay acyclic — a cycle
/// means a lost update, a torn snapshot, or a read of a version newer
/// than some version the same transaction missed. What SI deliberately
/// permits (and serializability forbids) are cycles *through* RW edges —
/// write skew, and stale-but-consistent reads whose observed versions
/// were already overwritten at read time. Follower reads are exactly
/// that second case: served at the follower's applied stable epoch, they
/// may trail the primary by whole epochs, but must still be one
/// transactionally consistent snapshot. So the follower-read history is
/// checked with this variant, with the RW staleness edges excluded.
pub fn check_history_si(records: &[TxnRecord], context: &str) {
    // Version ledger per register, exactly as the serializable checker
    // builds it: unique writer per version (SI forbids lost updates) and
    // dense versions (writes build on committed versions only).
    let mut writers: HashMap<(String, i64), BTreeMap<i64, i64>> = HashMap::new();
    for record in records {
        for w in &record.writes {
            let ledger = writers.entry((w.shard.clone(), w.key)).or_default();
            if let Some(previous) = ledger.insert(w.ver, record.label) {
                dump_and_panic(
                    records,
                    context,
                    &format!(
                        "lost update: {}:{} version {} written by both txn {} and txn {}",
                        w.shard, w.key, w.ver, previous, record.label
                    ),
                );
            }
        }
    }
    for ledger in writers.values_mut() {
        ledger.insert(0, 0);
    }
    for ((shard, key), ledger) in &writers {
        let max = *ledger.keys().last().unwrap();
        if ledger.len() as i64 != max + 1 {
            dump_and_panic(
                records,
                context,
                &format!("version gap on {shard}:{key}: ledger {ledger:?}"),
            );
        }
    }

    let mut nodes: Vec<u64> = records.iter().map(|r| r.label as u64).collect();
    nodes.push(0);
    let mut graph = ConflictGraph::new(nodes);
    for ledger in writers.values() {
        // WW: first-committer-wins totally orders a register's writers.
        let labels: Vec<i64> = ledger.values().copied().collect();
        for pair in labels.windows(2) {
            graph.add_edge(pair[0] as u64, pair[1] as u64);
        }
    }
    for record in records {
        for read in &record.reads {
            let ledger = &writers[&(read.shard.clone(), read.key)];
            // WR: the writer of the observed version committed before the
            // reader's snapshot. No RW edges: staleness is SI-legal.
            let writer = *ledger.get(&read.ver).unwrap_or_else(|| {
                dump_and_panic(
                    records,
                    context,
                    &format!(
                        "txn {} read {}:{} version {} which no committed txn wrote",
                        record.label, read.shard, read.key, read.ver
                    ),
                );
            });
            graph.add_edge(writer as u64, record.label as u64);
        }
    }
    if !graph.is_acyclic() {
        dump_and_panic(
            records,
            context,
            "WW ∪ WR graph has a cycle: some transaction saw a torn snapshot",
        );
    }
}

pub fn dump_and_panic(records: &[TxnRecord], context: &str, reason: &str) -> ! {
    eprintln!("=== serializability violation ({context}): {reason} ===");
    for record in records {
        eprintln!(
            "txn {:>4}: reads {:?} writes {:?}",
            record.label, record.reads, record.writes
        );
    }
    panic!("{context}: {reason}");
}

/// Standard run for one deployment config through the in-process client.
pub fn run_and_check(config: reactdb::common::DeploymentConfig, context: &str) {
    let db = std::sync::Arc::new(ReactDB::boot(spec(), config));
    load(&db);
    let records = run_workload(&db);
    assert_commit_mix(&records, context);
    check_history(&records, context);
}

/// The run must have enough commits, and both read-write and read-only
/// ones, to be a meaningful check.
pub fn assert_commit_mix(records: &[TxnRecord], context: &str) {
    assert!(
        records.len() >= THREADS * TXNS_PER_THREAD / 2,
        "{context}: too few commits ({}) to be meaningful",
        records.len()
    );
    let rw_commits = records.iter().filter(|r| !r.writes.is_empty()).count();
    let ro_commits = records.len() - rw_commits;
    assert!(
        rw_commits > 0 && ro_commits > 0,
        "{context}: mixed workload"
    );
}
