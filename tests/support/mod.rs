//! Shared helpers for the integration tests. Each `tests/*.rs` file is its
//! own crate; the ones that need the black-box serializability checker
//! declare `mod support;` and get this module compiled in. Not every test
//! crate uses every item, hence the blanket `dead_code` allowance.
#![allow(dead_code)]

pub mod history;
