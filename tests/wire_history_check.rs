//! The black-box serializability check from `tests/history_check.rs`,
//! replayed **over the wire**: the same register workload drives a spawned
//! `reactdb-server` through `reactdb-client` TCP connections instead of
//! in-process sessions. The checker is identical (shared via
//! `tests/support/history.rs`) — framing, pipelining, correlation-id
//! dispatch and the network ack paths must not change what histories the
//! engine admits.

mod support;

use std::sync::Arc;

use reactdb::common::{DeploymentConfig, DurabilityConfig, Value};
use reactdb::engine::ReactDB;
use reactdb_client::WireClient;
use reactdb_server::{Server, ServerConfig};
use support::history::{assert_commit_mix, check_history, load, run_workload_with, spec, SHARDS};

fn wal_dir(tag: &str) -> String {
    let dir =
        std::env::temp_dir().join(format!("reactdb-wire-history-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

#[test]
fn wire_histories_are_serializable() {
    let db = Arc::new(ReactDB::boot(
        spec(),
        DeploymentConfig::shared_nothing(SHARDS),
    ));
    load(&db);
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // One TCP connection per worker thread; validation-time acks.
    let records = run_workload_with(|_| {
        let client = WireClient::connect(addr).expect("connect");
        move |reactor: &str, procedure: &str, args: Vec<Value>| {
            client.invoke(reactor, procedure, args)
        }
    });
    assert_commit_mix(&records, "wire");
    check_history(&records, "wire");

    let stats = server.net_stats();
    assert!(stats.requests() > 0, "requests flowed over the wire");
    assert_eq!(
        stats.in_flight(),
        0,
        "no transaction left in flight after the workload joined"
    );
    server.shutdown();
    drop(db);
}

#[test]
fn wire_histories_are_serializable_with_durable_acks() {
    let dir = wal_dir("durable");
    let config = DeploymentConfig::shared_nothing(SHARDS)
        .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(1));
    let db = Arc::new(ReactDB::boot(spec(), config));
    load(&db);
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Durable acks: the server withholds each response until the commit
    // epoch is on stable storage (the SiloR rule) — the observed histories
    // must be serializable all the same.
    let records = run_workload_with(|_| {
        let client = WireClient::connect(addr).expect("connect");
        move |reactor: &str, procedure: &str, args: Vec<Value>| {
            client.invoke_durable(reactor, procedure, args)
        }
    });
    assert_commit_mix(&records, "wire durable");
    check_history(&records, "wire durable");

    server.shutdown();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
