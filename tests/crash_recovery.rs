//! Crash-recovery integration test: a SmallBank prefix is committed under
//! epoch-based group commit, the database "crashes" mid-epoch, and recovery
//! must restore exactly the transactions of fully synced epochs — then keep
//! committing with monotonically increasing TIDs.

use reactdb::common::{DeploymentConfig, DurabilityConfig, Key, Value};
use reactdb::engine::ReactDB;
use reactdb::workloads::smallbank::{self, customer_name, INITIAL_BALANCE};

const CUSTOMERS: usize = 8;

fn wal_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!(
        "reactdb-crash-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn durable_config(dir: &str) -> DeploymentConfig {
    // Manual group commit (interval 0) makes the durable/lost boundary
    // deterministic; the daemon path is exercised by the engine unit tests.
    DeploymentConfig::shared_nothing(4)
        .with_durability(DurabilityConfig::epoch_sync(dir).with_interval_ms(0))
}

fn savings_balance(db: &ReactDB, customer: usize) -> f64 {
    db.table(&customer_name(customer), "savings")
        .unwrap()
        .get(&Key::Int(customer as i64))
        .unwrap()
        .read_unguarded()
        .at(1)
        .as_float()
}

#[test]
fn smallbank_prefix_survives_crash_and_database_resumes() {
    let dir = wal_dir("smallbank");
    let config = durable_config(&dir);

    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).unwrap();

    // --- Durable prefix: deposits plus a cross-container multi-transfer.
    for customer in 0..4 {
        db.invoke(
            &customer_name(customer),
            "deposit_checking",
            vec![Value::Float(100.0 + customer as f64)],
        )
        .unwrap();
    }
    db.invoke(
        &customer_name(0),
        "multi_transfer_opt",
        smallbank::multi_transfer_invocation(0, &[1, 2, 3], 50.0),
    )
    .unwrap();
    let durable_epoch = db.wal_sync().expect("durability enabled");
    assert!(durable_epoch >= 1);
    assert!(db.stats().log_syncs() >= 1);
    assert!(db.stats().log_bytes() > 0);

    // --- Mid-epoch suffix: committed and acknowledged, but never synced;
    // the simulated crash must lose it.
    db.invoke(
        &customer_name(5),
        "deposit_checking",
        vec![Value::Float(77_777.0)],
    )
    .unwrap();
    db.invoke(
        &customer_name(4),
        "multi_transfer_opt",
        smallbank::multi_transfer_invocation(4, &[5, 6], 1_000.0),
    )
    .unwrap();
    db.simulate_crash();

    // --- Recover and verify the durable prefix, row by row.
    let recovered = ReactDB::recover(smallbank::spec(CUSTOMERS), config.clone()).unwrap();
    assert!(
        recovered.stats().recovered_txns() >= 5,
        "expected the synced prefix to replay, got {}",
        recovered.stats().recovered_txns()
    );
    for customer in 0..4 {
        let balance = recovered
            .invoke(&customer_name(customer), "balance", vec![])
            .unwrap()
            .as_float();
        let expected = 2.0 * INITIAL_BALANCE
            + 100.0
            + customer as f64
            + if customer == 0 { -150.0 } else { 50.0 };
        assert!(
            (balance - expected).abs() < 1e-9,
            "customer {customer}: got {balance}, expected {expected}"
        );
    }
    // The unsynced suffix is gone: balances 4..=6 are untouched.
    assert_eq!(savings_balance(&recovered, 4), INITIAL_BALANCE);
    assert_eq!(savings_balance(&recovered, 5), INITIAL_BALANCE);
    let checking5 = recovered
        .table(&customer_name(5), "checking")
        .unwrap()
        .get(&Key::Int(5))
        .unwrap()
        .read_unguarded()
        .at(1)
        .as_float();
    assert_eq!(
        checking5, INITIAL_BALANCE,
        "unsynced deposit must not resurface"
    );

    // --- The recovered database resumes committing, with commit TIDs that
    // dominate every replayed TID.
    let replayed_tid = recovered
        .table(&customer_name(1), "savings")
        .unwrap()
        .get(&Key::Int(1))
        .unwrap()
        .tid();
    assert!(replayed_tid.version() > 0);
    recovered
        .invoke(
            &customer_name(1),
            "transact_saving",
            vec![Value::Float(5.0)],
        )
        .unwrap();
    let new_tid = recovered
        .table(&customer_name(1), "savings")
        .unwrap()
        .get(&Key::Int(1))
        .unwrap()
        .tid();
    assert!(
        new_tid.version() > replayed_tid.version(),
        "recovered TID generation must stay monotonic: {replayed_tid:?} -> {new_tid:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn double_crash_recovery_is_stable() {
    // Recover, commit more, crash again, recover again: both durable
    // generations must be visible exactly once.
    let dir = wal_dir("double");
    let config = durable_config(&dir);

    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).unwrap();
    db.invoke(
        &customer_name(0),
        "transact_saving",
        vec![Value::Float(10.0)],
    )
    .unwrap();
    db.wal_sync().unwrap();
    db.simulate_crash();

    let db = ReactDB::recover(smallbank::spec(CUSTOMERS), config.clone()).unwrap();
    db.invoke(
        &customer_name(0),
        "transact_saving",
        vec![Value::Float(7.0)],
    )
    .unwrap();
    db.wal_sync().unwrap();
    db.invoke(
        &customer_name(0),
        "transact_saving",
        vec![Value::Float(100_000.0)],
    )
    .unwrap();
    db.simulate_crash();

    let db = ReactDB::recover(smallbank::spec(CUSTOMERS), config.clone()).unwrap();
    assert_eq!(
        savings_balance(&db, 0),
        INITIAL_BALANCE + 17.0,
        "both durable increments applied exactly once, unsynced one lost"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn buffered_mode_replays_flushed_commits() {
    let dir = wal_dir("buffered");
    let config = DeploymentConfig::shared_everything_with_affinity(2)
        .with_durability(DurabilityConfig::buffered(&dir));

    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).unwrap();
    db.invoke(
        &customer_name(3),
        "transact_saving",
        vec![Value::Float(123.0)],
    )
    .unwrap();
    db.wal_sync().unwrap(); // buffered flush, no fsync/marker
    db.simulate_crash();

    let recovered = ReactDB::recover(smallbank::spec(CUSTOMERS), config).unwrap();
    assert_eq!(savings_balance(&recovered, 3), INITIAL_BALANCE + 123.0);
    let _ = std::fs::remove_dir_all(&dir);
}
