//! Crash-recovery integration test: a SmallBank prefix is committed under
//! epoch-based group commit, the database "crashes" mid-epoch, and recovery
//! must restore exactly the transactions of fully synced epochs — then keep
//! committing with monotonically increasing TIDs.

use reactdb::common::{DeploymentConfig, DurabilityConfig, Key, Value};
use reactdb::engine::{Call, ReactDB};
use reactdb::workloads::smallbank::{self, customer_name, INITIAL_BALANCE};

const CUSTOMERS: usize = 8;

fn wal_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!(
        "reactdb-crash-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn durable_config(dir: &str) -> DeploymentConfig {
    // Manual group commit (interval 0) makes the durable/lost boundary
    // deterministic; the daemon path is exercised by the engine unit tests.
    DeploymentConfig::shared_nothing(4)
        .with_durability(DurabilityConfig::epoch_sync(dir).with_interval_ms(0))
}

fn savings_balance(db: &ReactDB, customer: usize) -> f64 {
    db.table(&customer_name(customer), "savings")
        .unwrap()
        .get(&Key::Int(customer as i64))
        .unwrap()
        .read_unguarded()
        .at(1)
        .as_float()
}

fn checking_balance(db: &ReactDB, customer: usize) -> f64 {
    db.table(&customer_name(customer), "checking")
        .unwrap()
        .get(&Key::Int(customer as i64))
        .unwrap()
        .read_unguarded()
        .at(1)
        .as_float()
}

#[test]
fn smallbank_prefix_survives_crash_and_database_resumes() {
    let dir = wal_dir("smallbank");
    let config = durable_config(&dir);

    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).unwrap();

    // --- Durable prefix: deposits plus a cross-container multi-transfer.
    for customer in 0..4 {
        db.invoke(
            &customer_name(customer),
            "deposit_checking",
            vec![Value::Float(100.0 + customer as f64)],
        )
        .unwrap();
    }
    db.invoke(
        &customer_name(0),
        "multi_transfer_opt",
        smallbank::multi_transfer_invocation(0, &[1, 2, 3], 50.0),
    )
    .unwrap();
    let durable_epoch = db.wal_sync().expect("durability enabled");
    assert!(durable_epoch >= 1);
    assert!(db.stats().log_syncs() >= 1);
    assert!(db.stats().log_bytes() > 0);

    // --- Mid-epoch suffix: committed and acknowledged, but never synced;
    // the simulated crash must lose it.
    db.invoke(
        &customer_name(5),
        "deposit_checking",
        vec![Value::Float(77_777.0)],
    )
    .unwrap();
    db.invoke(
        &customer_name(4),
        "multi_transfer_opt",
        smallbank::multi_transfer_invocation(4, &[5, 6], 1_000.0),
    )
    .unwrap();
    db.simulate_crash();

    // --- Recover and verify the durable prefix, row by row.
    let recovered = ReactDB::recover(smallbank::spec(CUSTOMERS), config.clone()).unwrap();
    assert!(
        recovered.stats().recovered_txns() >= 5,
        "expected the synced prefix to replay, got {}",
        recovered.stats().recovered_txns()
    );
    for customer in 0..4 {
        let balance = recovered
            .invoke(&customer_name(customer), "balance", vec![])
            .unwrap()
            .as_float();
        let expected = 2.0 * INITIAL_BALANCE
            + 100.0
            + customer as f64
            + if customer == 0 { -150.0 } else { 50.0 };
        assert!(
            (balance - expected).abs() < 1e-9,
            "customer {customer}: got {balance}, expected {expected}"
        );
    }
    // The unsynced suffix is gone: balances 4..=6 are untouched.
    assert_eq!(savings_balance(&recovered, 4), INITIAL_BALANCE);
    assert_eq!(savings_balance(&recovered, 5), INITIAL_BALANCE);
    let checking5 = recovered
        .table(&customer_name(5), "checking")
        .unwrap()
        .get(&Key::Int(5))
        .unwrap()
        .read_unguarded()
        .at(1)
        .as_float();
    assert_eq!(
        checking5, INITIAL_BALANCE,
        "unsynced deposit must not resurface"
    );

    // --- The recovered database resumes committing, with commit TIDs that
    // dominate every replayed TID.
    let replayed_tid = recovered
        .table(&customer_name(1), "savings")
        .unwrap()
        .get(&Key::Int(1))
        .unwrap()
        .tid();
    assert!(replayed_tid.version() > 0);
    recovered
        .invoke(
            &customer_name(1),
            "transact_saving",
            vec![Value::Float(5.0)],
        )
        .unwrap();
    let new_tid = recovered
        .table(&customer_name(1), "savings")
        .unwrap()
        .get(&Key::Int(1))
        .unwrap()
        .tid();
    assert!(
        new_tid.version() > replayed_tid.version(),
        "recovered TID generation must stay monotonic: {replayed_tid:?} -> {new_tid:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn double_crash_recovery_is_stable() {
    // Recover, commit more, crash again, recover again: both durable
    // generations must be visible exactly once.
    let dir = wal_dir("double");
    let config = durable_config(&dir);

    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).unwrap();
    db.invoke(
        &customer_name(0),
        "transact_saving",
        vec![Value::Float(10.0)],
    )
    .unwrap();
    db.wal_sync().unwrap();
    db.simulate_crash();

    let db = ReactDB::recover(smallbank::spec(CUSTOMERS), config.clone()).unwrap();
    db.invoke(
        &customer_name(0),
        "transact_saving",
        vec![Value::Float(7.0)],
    )
    .unwrap();
    db.wal_sync().unwrap();
    db.invoke(
        &customer_name(0),
        "transact_saving",
        vec![Value::Float(100_000.0)],
    )
    .unwrap();
    db.simulate_crash();

    let db = ReactDB::recover(smallbank::spec(CUSTOMERS), config.clone()).unwrap();
    assert_eq!(
        savings_balance(&db, 0),
        INITIAL_BALANCE + 17.0,
        "both durable increments applied exactly once, unsynced one lost"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_ack_survives_crash_but_validation_ack_may_not() {
    // The two acknowledgement modes of the client API, asserted in both
    // directions across a crash:
    //
    // * a transaction acknowledged by `wait_durable()` has its commit epoch
    //   covered by a completed group commit — recovery MUST restore it;
    // * a transaction merely `wait()`-ed is acknowledged at validation
    //   time, before its epoch synced — this one commits after the last
    //   group commit and MUST be lost by the crash.
    let dir = wal_dir("durable-ack");
    let config = durable_config(&dir);
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).unwrap();

    {
        let client = db.client();
        let durable = client
            .submit(
                &customer_name(1),
                "deposit_checking",
                vec![Value::Float(250.0)],
            )
            .unwrap();
        let value = durable.wait_durable().expect("durable acknowledgement");
        assert_eq!(value, Value::Float(INITIAL_BALANCE + 250.0));
        let commit_epoch = durable.commit_epoch().expect("committed write");
        assert!(
            db.durable_epoch().unwrap() >= commit_epoch,
            "wait_durable returns only once durable_epoch covers the commit"
        );

        // Submitted after the group commit above, acknowledged at
        // validation only: its epoch is strictly beyond the durable marker
        // and no further sync happens before the crash (interval 0).
        let risky = client
            .submit(
                &customer_name(2),
                "deposit_checking",
                vec![Value::Float(77_777.0)],
            )
            .unwrap();
        risky.wait().expect("validation acknowledgement");
        assert_eq!(client.stats().committed, 2);
    }
    db.simulate_crash();

    let recovered = ReactDB::recover(smallbank::spec(CUSTOMERS), config).unwrap();
    assert_eq!(
        checking_balance(&recovered, 1),
        INITIAL_BALANCE + 250.0,
        "durably acknowledged transaction must survive the crash"
    );
    assert_eq!(
        checking_balance(&recovered, 2),
        INITIAL_BALANCE,
        "validation-acknowledged transaction past the last sync is lost"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn many_sessions_pipeline_handles_and_all_durable_acks_survive() {
    const SESSIONS: usize = 4;
    const PER_SESSION: usize = 25;
    let dir = wal_dir("many-sessions");
    // Real group-commit daemon: durable waiters park on the epoch watch
    // and are woken by the daemon's syncs. MPL 1 serializes each session's
    // same-customer deposits on its executor, so none of the pipelined
    // handles can abort on OCC validation.
    let config = DeploymentConfig::shared_nothing(4)
        .with_mpl(1)
        .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(1));
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).unwrap();

    std::thread::scope(|scope| {
        for session in 0..SESSIONS {
            let client = db.client();
            scope.spawn(move || {
                // Pipeline a full batch, then require the durable ack for
                // every handle. Distinct customers per session: no
                // cross-session validation aborts.
                let handles = client
                    .submit_batch((0..PER_SESSION).map(|_| {
                        Call::new(
                            customer_name(session),
                            "deposit_checking",
                            vec![Value::Float(1.0)],
                        )
                    }))
                    .unwrap();
                for handle in &handles {
                    handle.wait_durable().expect("durable acknowledgement");
                }
                let stats = client.stats();
                assert_eq!(stats.submitted, PER_SESSION as u64);
                assert_eq!(stats.committed, PER_SESSION as u64);
                assert_eq!(stats.in_flight, 0);
                // No depth assertion here: how far the batch overlaps
                // depends on host scheduling. The deterministic pipelining-
                // depth check (with deliberately slow transactions) lives
                // in the engine's client_pipelines_handles unit test.
                assert!(stats.in_flight_hwm >= 1);
            });
        }
    });

    assert!(db.stats().client_committed() >= (SESSIONS * PER_SESSION) as u64);
    assert_eq!(db.stats().handles_in_flight(), 0);
    assert!(db.stats().handles_in_flight_hwm() >= 1);
    db.simulate_crash();

    // Every durably acknowledged deposit survives the crash.
    let recovered = ReactDB::recover(smallbank::spec(CUSTOMERS), config).unwrap();
    for session in 0..SESSIONS {
        assert_eq!(
            checking_balance(&recovered, session),
            INITIAL_BALANCE + PER_SESSION as f64,
            "session {session}: all durably acknowledged deposits survive"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn buffered_mode_replays_flushed_commits() {
    let dir = wal_dir("buffered");
    let config = DeploymentConfig::shared_everything_with_affinity(2)
        .with_durability(DurabilityConfig::buffered(&dir));

    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config.clone());
    smallbank::load(&db, CUSTOMERS).unwrap();
    db.invoke(
        &customer_name(3),
        "transact_saving",
        vec![Value::Float(123.0)],
    )
    .unwrap();
    db.wal_sync().unwrap(); // buffered flush, no fsync/marker
    db.simulate_crash();

    let recovered = ReactDB::recover(smallbank::spec(CUSTOMERS), config).unwrap();
    assert_eq!(savings_balance(&recovered, 3), INITIAL_BALANCE + 123.0);
    let _ = std::fs::remove_dir_all(&dir);
}
