//! Follower runtime: tails a primary's replication stream and applies it.
//!
//! A follower is an ordinary engine instance booted with its own (empty)
//! log directory and flipped read-only, fronted by an ordinary wire
//! server for snapshot-epoch reads and metrics. [`run_follower`] then
//! drives the replication protocol against the primary:
//!
//! 1. connect, handshake, `ReplSubscribe` with the highest epoch already
//!    applied (zero on first boot);
//! 2. stage every `ReplFile` chunk byte-for-byte into a staging
//!    directory — a faithful, growing copy of the primary's log dir;
//! 3. on each `ReplEpoch E`: bootstrap once from the staged checkpoint
//!    chain via [`reactdb_wal::load_checkpoint`] (the same parallel
//!    loader crash recovery uses), then decode the staged segments and
//!    apply every not-yet-applied batch with commit epoch `<= E` through
//!    [`ReactDB::apply_redo`] — which re-logs them into the follower's
//!    *own* WAL — force a group commit, and `ReplAck E`.
//!
//! Because the ack is sent only after the follower's own group commit,
//! the primary's `AckLevel::Replicated` gate really does mean "durable on
//! two nodes". Reads served meanwhile run at the follower's applied
//! stable epoch: the engine's ordinary snapshot-epoch read path, just fed
//! by replication instead of local commits.
//!
//! When the stream dies and cannot be re-established, the follower
//! *promotes*: [`ReactDB::promote`] lifts the read-only gate and opens a
//! fresh epoch beyond everything applied, and the node starts accepting
//! writes as a primary with zero loss of replicated-acked work — that
//! work was durably applied here before it was ever acknowledged.
//!
//! **Resubscribing is not restarting.** A recoverable stream loss — the
//! primary's checkpoint truncated a segment under the shipping cursor, a
//! failpoint cut the feeder, a transient disconnect — re-enters step 1
//! with the follower's state intact: every subscription stages into a
//! fresh *generation* subdirectory of the staging dir (the new
//! subscription re-ships the bootstrap from the primary's *new*
//! checkpoint chain, which must not be spliced into stale staged bytes),
//! the checkpoint is re-loaded from that side generation, and only rows
//! above the follower's `applied` epoch are fed to the TID-idempotent
//! [`ReactDB::apply_redo`]. The reconnect budget replenishes whenever a
//! subscription made apply progress, so a storm of truncation races never
//! adds up to a spurious promotion; only consecutive dead connections do.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::{self, ErrorKind, Read, Seek, SeekFrom, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use reactdb_client::codec::{self, Request, Response};
use reactdb_engine::ReactDB;
use reactdb_storage::TidWord;
use reactdb_txn::RedoRecord;

use crate::ReplState;

/// Tuning for [`run_follower`].
#[derive(Debug, Clone)]
pub struct FollowerOpts {
    /// The primary's wire address (`host:port`).
    pub primary_addr: String,
    /// Directory the shipped log-dir copy is staged into. Must not be the
    /// follower engine's own WAL directory.
    pub staging_dir: PathBuf,
    /// Parallel apply lanes for [`ReactDB::apply_redo`] (0 = all cores).
    pub replay_workers: usize,
    /// Reconnect attempts after a lost stream before giving up (and, with
    /// [`FollowerOpts::promote_on_disconnect`], promoting).
    pub reconnect_attempts: u32,
    /// Pause between reconnect attempts.
    pub reconnect_backoff: Duration,
    /// Promote this node to a serving primary when the stream is lost for
    /// good, instead of returning an error.
    pub promote_on_disconnect: bool,
}

impl FollowerOpts {
    /// Defaults for tailing `primary_addr`, staging into `staging_dir`.
    pub fn new(primary_addr: impl Into<String>, staging_dir: impl Into<PathBuf>) -> Self {
        Self {
            primary_addr: primary_addr.into(),
            staging_dir: staging_dir.into(),
            replay_workers: 0,
            reconnect_attempts: 3,
            reconnect_backoff: Duration::from_millis(100),
            promote_on_disconnect: true,
        }
    }

    /// Sets the parallel apply lanes (0 = all cores).
    pub fn with_replay_workers(mut self, workers: usize) -> Self {
        self.replay_workers = workers;
        self
    }

    /// Sets the reconnect budget after a lost stream.
    pub fn with_reconnects(mut self, attempts: u32, backoff: Duration) -> Self {
        self.reconnect_attempts = attempts;
        self.reconnect_backoff = backoff;
        self
    }

    /// Sets whether losing the primary promotes this node.
    pub fn with_promote_on_disconnect(mut self, promote: bool) -> Self {
        self.promote_on_disconnect = promote;
        self
    }
}

/// What a finished [`run_follower`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerReport {
    /// Whether this node promoted itself to primary.
    pub promoted: bool,
    /// Highest epoch durably applied from the primary.
    pub applied_epoch: u64,
    /// Detection-to-serving time of the promotion, when one happened:
    /// from the moment the last *progressing* stream dropped to
    /// [`ReactDB::promote`] returning (includes the reconnect attempts).
    pub failover: Option<Duration>,
    /// Times the follower re-established a lost subscription without
    /// losing its applied state (e.g. after a checkpoint truncation raced
    /// the primary's shipping cursor).
    pub resubscribes: u64,
}

/// Mutable state threaded through (re)subscriptions.
struct Tail {
    /// Byte length staged so far, per file name, in the *current*
    /// staging generation.
    staged: HashMap<String, u64>,
    /// Staged files written since the last pre-ack fsync pass.
    dirty: HashSet<String>,
    /// A staged file was created since the last staging-dir fsync (the
    /// directory entry itself must be durable before an ack).
    dir_dirty: bool,
    /// Highest epoch durably applied into the local engine. Survives
    /// resubscription: the one piece of state that must never reset.
    applied: u64,
    /// Epoch floor below which batches are covered by the loaded
    /// checkpoint (its `cover_epoch`); 0 before bootstrap or without one.
    checkpoint_floor: u64,
    /// Whether the current generation's checkpoint chain has been loaded.
    bootstrapped: bool,
    /// Monotone (re)subscription counter; names the staging generation
    /// subdirectory.
    generation: u64,
    /// Stream events seen (chunks staged + epochs applied), the progress
    /// measure that replenishes the reconnect budget.
    progress: u64,
}

impl Tail {
    /// The staging subdirectory of the current generation.
    fn gen_dir(&self, staging_dir: &Path) -> PathBuf {
        staging_dir.join(format!("gen-{:06}", self.generation))
    }

    /// Starts a fresh staging generation for a new subscription: staged
    /// bookkeeping resets (the new stream re-ships its bootstrap from the
    /// primary's *current* checkpoint chain), `applied` survives, and
    /// generations older than the previous one are deleted.
    fn next_generation(&mut self, staging_dir: &Path) -> io::Result<PathBuf> {
        self.generation += 1;
        self.staged.clear();
        self.dirty.clear();
        self.dir_dirty = false;
        self.bootstrapped = false;
        self.checkpoint_floor = 0;
        // Keep the previous generation (a dying apply could still hold
        // open files); everything older is garbage.
        if let Ok(entries) = fs::read_dir(staging_dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(gen) = name
                    .strip_prefix("gen-")
                    .and_then(|n| n.parse::<u64>().ok())
                else {
                    continue;
                };
                if gen + 1 < self.generation {
                    let _ = fs::remove_dir_all(entry.path());
                }
            }
        }
        let dir = self.gen_dir(staging_dir);
        fs::create_dir_all(&dir)?;
        Ok(dir)
    }
}

/// Tails `opts.primary_addr` until `stop` is raised, the stream is lost
/// beyond the configured reconnects, or an apply error occurs. Blocks the
/// calling thread; run it on a dedicated one. `db` must be booted with
/// durability on (its own fresh WAL directory) and is flipped read-only
/// here; `repl` should come from the serving [`crate::Server`]'s
/// [`crate::Server::repl_state`] so lag shows up in its metrics.
pub fn run_follower(
    db: &Arc<ReactDB>,
    repl: &Arc<ReplState>,
    opts: &FollowerOpts,
    stop: &AtomicBool,
) -> io::Result<FollowerReport> {
    fs::create_dir_all(&opts.staging_dir)?;
    db.set_read_only(true);
    repl.set_follower_mode(true);
    let follower_id = follower_id(&opts.staging_dir);
    let mut tail = Tail {
        staged: HashMap::new(),
        dirty: HashSet::new(),
        dir_dirty: false,
        applied: 0,
        checkpoint_floor: 0,
        bootstrapped: false,
        generation: 0,
        progress: 0,
    };

    let mut disconnected_at: Option<Instant> = None;
    let mut attempts_left = opts.reconnect_attempts;
    let mut resubscribes = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(FollowerReport {
                promoted: false,
                applied_epoch: tail.applied,
                failover: None,
                resubscribes,
            });
        }
        let progress_before = tail.progress;
        if tail.generation > 0 {
            resubscribes += 1;
            // Scripts and the CI replication gate grep for this line.
            eprintln!(
                "follower resubscribing to {} (applied epoch {}, generation {})",
                opts.primary_addr,
                tail.applied,
                tail.generation + 1,
            );
        }
        match follow_once(db, repl, opts, stop, &mut tail, follower_id) {
            Ok(()) => {
                // Clean stop request honoured inside the stream loop.
                return Ok(FollowerReport {
                    promoted: false,
                    applied_epoch: tail.applied,
                    failover: None,
                    resubscribes,
                });
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Apply/decode failure: retrying would re-fail; surface it.
                return Err(e);
            }
            Err(e) => {
                // A subscription that streamed anything replenishes the
                // reconnect budget: recoverable races (checkpoint
                // truncations, feeder faults) can recur indefinitely
                // without adding up to a spurious promotion, while a
                // primary that is really gone yields dead connection
                // after dead connection and runs the budget out.
                if tail.progress > progress_before {
                    attempts_left = opts.reconnect_attempts;
                    disconnected_at = None;
                }
                disconnected_at.get_or_insert_with(Instant::now);
                if attempts_left > 0 {
                    attempts_left -= 1;
                    std::thread::park_timeout(opts.reconnect_backoff);
                    continue;
                }
                if !opts.promote_on_disconnect {
                    return Err(e);
                }
                db.promote();
                repl.set_follower_mode(false);
                return Ok(FollowerReport {
                    promoted: true,
                    applied_epoch: tail.applied,
                    failover: disconnected_at.map(|t| t.elapsed()),
                    resubscribes,
                });
            }
        }
    }
}

/// Stable identity of this follower across reconnects: an FNV-1a hash of
/// the staging directory plus the process id. Two followers on one
/// machine differ by staging dir; a restarted follower process gets a
/// fresh id, so the primary's registry never confuses its acks with the
/// dead incarnation's.
fn follower_id(staging_dir: &Path) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(staging_dir.to_string_lossy().as_bytes());
    eat(&std::process::id().to_le_bytes());
    hash
}

/// One subscription: connect, stream, stage, apply, ack — until the
/// connection drops (`Err`) or `stop` is raised (`Ok`).
fn follow_once(
    db: &Arc<ReactDB>,
    repl: &Arc<ReplState>,
    opts: &FollowerOpts,
    stop: &AtomicBool,
    tail: &mut Tail,
    follower_id: u64,
) -> io::Result<()> {
    let gen_dir = tail.next_generation(&opts.staging_dir)?;
    let mut stream = TcpStream::connect(&opts.primary_addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(20)))?;
    stream.write_all(&codec::client_hello())?;
    let mut hello = [0u8; codec::HANDSHAKE_LEN];
    read_exact_with_timeout(&mut stream, &mut hello)?;
    codec::parse_server_hello(&hello)
        .map_err(|e| io::Error::other(format!("primary rejected handshake: {e:?}")))?;

    let correlation_id = 1u64;
    let subscribe = codec::frame(&codec::encode_request(&Request::ReplSubscribe {
        correlation_id,
        from_epoch: tail.applied,
        follower_id,
    }));
    stream.write_all(&subscribe)?;

    let mut rbuf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(io::Error::other("primary closed the stream")),
            Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        loop {
            let (payload, consumed) = match codec::decode_frame(&rbuf) {
                Ok(None) => break,
                Ok(Some(frame)) => frame,
                Err(e) => {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        format!("undecodable replication frame: {e:?}"),
                    ));
                }
            };
            let response = codec::decode_response(payload).map_err(|e| {
                io::Error::new(
                    ErrorKind::InvalidData,
                    format!("undecodable replication frame: {e:?}"),
                )
            })?;
            rbuf.drain(..consumed);
            match response {
                Response::ReplFile {
                    name,
                    offset,
                    bytes,
                    ..
                } => {
                    stage_chunk(&gen_dir, tail, &name, offset, &bytes)?;
                    tail.progress += 1;
                }
                Response::ReplEpoch { epoch, .. } => {
                    if epoch > tail.applied {
                        apply_through(db, &gen_dir, opts, tail, epoch)?;
                        tail.progress += 1;
                        // Local state (and metrics) reflect the applied
                        // epoch *before* the primary can observe the ack:
                        // anything gating on the ack — the quorum reply
                        // gate above all — may then rely on this node
                        // already serving that epoch.
                        repl.observe_apply(tail.applied, epoch);
                        let ack = codec::frame(&codec::encode_request(&Request::ReplAck {
                            correlation_id,
                            applied_epoch: tail.applied,
                        }));
                        stream.write_all(&ack)?;
                    } else {
                        repl.observe_apply(tail.applied, epoch);
                    }
                }
                Response::ReplEnd { reason, .. } => {
                    return Err(io::Error::other(format!("stream ended: {reason}")));
                }
                _ => {} // a subscribed connection carries nothing else
            }
        }
    }
}

/// Blocking read of exactly `buf.len()` bytes on a stream whose read
/// timeout is short; retries timeouts so the handshake survives them.
fn read_exact_with_timeout(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    let deadline = Instant::now() + Duration::from_secs(5);
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::Error::other("primary closed during handshake")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                if Instant::now() >= deadline {
                    return Err(io::Error::other("handshake timed out"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Stages one shipped chunk at its exact offset into the current staging
/// generation. The cursor re-ships a file from offset 0 after a
/// resubscribe, so a chunk below the staged length truncates and rewrites
/// — idempotent by construction. Durability is deferred: the staged file
/// is only recorded dirty here and fsynced in [`apply_through`], before
/// the ack that makes the primary count these bytes as replicated.
fn stage_chunk(
    gen_dir: &Path,
    tail: &mut Tail,
    name: &str,
    offset: u64,
    bytes: &[u8],
) -> io::Result<()> {
    if name.contains('/') || name.contains('\\') || name == "." || name == ".." {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("shipped file name {name:?} is not a plain file name"),
        ));
    }
    let staged_len = match tail.staged.get(name) {
        Some(&len) => len,
        None => {
            // First chunk of this file in this generation: its directory
            // entry must reach disk before any covering ack.
            tail.dir_dirty = true;
            0
        }
    };
    let mut file = fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(gen_dir.join(name))?;
    if offset > staged_len {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("gap in shipped stream for {name}: offset {offset} past {staged_len}"),
        ));
    }
    if offset < staged_len {
        file.set_len(offset)?;
    }
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(bytes)?;
    tail.staged
        .insert(name.to_string(), offset + bytes.len() as u64);
    tail.dirty.insert(name.to_string());
    Ok(())
}

/// Applies every staged-but-unapplied batch with commit epoch `<= epoch`
/// into the local engine, bootstrapping from the staged checkpoint chain
/// on the first call of the generation, then forces a local group commit
/// and fsyncs the staged bytes so the subsequent ack means *durably*
/// applied — in the engine's own WAL and in the staged copy both.
fn apply_through(
    db: &Arc<ReactDB>,
    gen_dir: &Path,
    opts: &FollowerOpts,
    tail: &mut Tail,
    epoch: u64,
) -> io::Result<()> {
    let mut checkpoint_rows: Vec<(TidWord, RedoRecord)> = Vec::new();
    if !tail.bootstrapped {
        if let Some(recovered) = reactdb_wal::load_checkpoint(gen_dir, epoch, opts.replay_workers)?
        {
            tail.checkpoint_floor = recovered.cover_epoch;
            // On a resubscribe the primary's *new* checkpoint may cover
            // epochs this follower already applied; `apply_redo` is
            // TID-idempotent, but filtering here keeps the common case
            // (checkpoint entirely below `applied`) from re-walking
            // every row.
            checkpoint_rows = recovered.rows;
            checkpoint_rows.retain(|(tid, _)| tid.epoch() > tail.applied);
        }
        tail.bootstrapped = true;
    }

    // Re-decode the staged segments and keep what is new this round:
    // batches above the checkpoint floor and the already-applied epoch,
    // at or below the announced epoch. Within one apply call batches are
    // ordered by commit TID, as recovery orders them.
    let floor = tail.checkpoint_floor.max(tail.applied);
    let mut batches: Vec<(TidWord, Vec<RedoRecord>)> = Vec::new();
    for name in tail.staged.keys() {
        if !(name.starts_with("wal-") && name.ends_with(".log")) {
            continue;
        }
        let bytes = fs::read(gen_dir.join(name))?;
        let scan = reactdb_wal::codec::decode_segment(&bytes).ok_or_else(|| {
            io::Error::new(
                ErrorKind::InvalidData,
                format!("staged segment {name} does not decode"),
            )
        })?;
        for (tid, records) in scan.batches {
            if tid.epoch() > floor && tid.epoch() <= epoch {
                batches.push((tid, records));
            }
        }
    }
    batches.sort_by_key(|(tid, _)| (tid.epoch(), tid.version()));

    if !(batches.is_empty() && checkpoint_rows.is_empty()) {
        db.apply_redo(&checkpoint_rows, &batches, opts.replay_workers)
            .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("apply failed: {e}")))?;
        // The ack promises durability: flush the follower's own WAL.
        db.wal_sync()
            .map_err(|e| io::Error::other(format!("follower group commit failed: {e}")))?;
    }
    // The staged copy is this node's bootstrap source if it restarts as a
    // primary seed; make everything the ack will cover durable too. One
    // batched pass per epoch, not per chunk — the set of dirty files is
    // small and the ack is the durability boundary, not the write.
    for name in tail.dirty.drain() {
        fs::File::open(gen_dir.join(&name))?.sync_data()?;
    }
    if tail.dir_dirty {
        fs::File::open(gen_dir)?.sync_all()?;
        tail.dir_dirty = false;
    }
    tail.applied = epoch;
    Ok(())
}
