//! Follower runtime: tails a primary's replication stream and applies it.
//!
//! A follower is an ordinary engine instance booted with its own (empty)
//! log directory and flipped read-only, fronted by an ordinary wire
//! server for snapshot-epoch reads and metrics. [`run_follower`] then
//! drives the replication protocol against the primary:
//!
//! 1. connect, handshake, `ReplSubscribe` with the highest epoch already
//!    applied (zero on first boot);
//! 2. stage every `ReplFile` chunk byte-for-byte into a staging
//!    directory — a faithful, growing copy of the primary's log dir;
//! 3. on each `ReplEpoch E`: bootstrap once from the staged checkpoint
//!    chain via [`reactdb_wal::load_checkpoint`] (the same parallel
//!    loader crash recovery uses), then decode the staged segments and
//!    apply every not-yet-applied batch with commit epoch `<= E` through
//!    [`ReactDB::apply_redo`] — which re-logs them into the follower's
//!    *own* WAL — force a group commit, and `ReplAck E`.
//!
//! Because the ack is sent only after the follower's own group commit,
//! the primary's `AckLevel::Replicated` gate really does mean "durable on
//! two nodes". Reads served meanwhile run at the follower's applied
//! stable epoch: the engine's ordinary snapshot-epoch read path, just fed
//! by replication instead of local commits.
//!
//! When the stream dies and cannot be re-established, the follower
//! *promotes*: [`ReactDB::promote`] lifts the read-only gate and opens a
//! fresh epoch beyond everything applied, and the node starts accepting
//! writes as a primary with zero loss of replicated-acked work — that
//! work was durably applied here before it was ever acknowledged.

use std::collections::HashMap;
use std::fs;
use std::io::{self, ErrorKind, Read, Seek, SeekFrom, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use reactdb_client::codec::{self, Request, Response};
use reactdb_engine::ReactDB;
use reactdb_storage::TidWord;
use reactdb_txn::RedoRecord;

use crate::ReplState;

/// Tuning for [`run_follower`].
#[derive(Debug, Clone)]
pub struct FollowerOpts {
    /// The primary's wire address (`host:port`).
    pub primary_addr: String,
    /// Directory the shipped log-dir copy is staged into. Must not be the
    /// follower engine's own WAL directory.
    pub staging_dir: PathBuf,
    /// Parallel apply lanes for [`ReactDB::apply_redo`] (0 = all cores).
    pub replay_workers: usize,
    /// Reconnect attempts after a lost stream before giving up (and, with
    /// [`FollowerOpts::promote_on_disconnect`], promoting).
    pub reconnect_attempts: u32,
    /// Pause between reconnect attempts.
    pub reconnect_backoff: Duration,
    /// Promote this node to a serving primary when the stream is lost for
    /// good, instead of returning an error.
    pub promote_on_disconnect: bool,
}

impl FollowerOpts {
    /// Defaults for tailing `primary_addr`, staging into `staging_dir`.
    pub fn new(primary_addr: impl Into<String>, staging_dir: impl Into<PathBuf>) -> Self {
        Self {
            primary_addr: primary_addr.into(),
            staging_dir: staging_dir.into(),
            replay_workers: 0,
            reconnect_attempts: 3,
            reconnect_backoff: Duration::from_millis(100),
            promote_on_disconnect: true,
        }
    }

    /// Sets the parallel apply lanes (0 = all cores).
    pub fn with_replay_workers(mut self, workers: usize) -> Self {
        self.replay_workers = workers;
        self
    }

    /// Sets the reconnect budget after a lost stream.
    pub fn with_reconnects(mut self, attempts: u32, backoff: Duration) -> Self {
        self.reconnect_attempts = attempts;
        self.reconnect_backoff = backoff;
        self
    }

    /// Sets whether losing the primary promotes this node.
    pub fn with_promote_on_disconnect(mut self, promote: bool) -> Self {
        self.promote_on_disconnect = promote;
        self
    }
}

/// What a finished [`run_follower`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerReport {
    /// Whether this node promoted itself to primary.
    pub promoted: bool,
    /// Highest epoch durably applied from the primary.
    pub applied_epoch: u64,
    /// Detection-to-serving time of the promotion, when one happened:
    /// from the moment the established stream dropped to
    /// [`ReactDB::promote`] returning (includes the reconnect attempts).
    pub failover: Option<Duration>,
}

/// Mutable state threaded through (re)subscriptions.
struct Tail {
    /// Byte length staged so far, per file name.
    staged: HashMap<String, u64>,
    /// Highest epoch durably applied into the local engine.
    applied: u64,
    /// Epoch floor below which batches are covered by the loaded
    /// checkpoint (its `cover_epoch`); 0 before bootstrap or without one.
    checkpoint_floor: u64,
    /// Whether the staged checkpoint chain has been loaded.
    bootstrapped: bool,
}

/// Tails `opts.primary_addr` until `stop` is raised, the stream is lost
/// beyond the configured reconnects, or an apply error occurs. Blocks the
/// calling thread; run it on a dedicated one. `db` must be booted with
/// durability on (its own fresh WAL directory) and is flipped read-only
/// here; `repl` should come from the serving [`crate::Server`]'s
/// [`crate::Server::repl_state`] so lag shows up in its metrics.
pub fn run_follower(
    db: &Arc<ReactDB>,
    repl: &Arc<ReplState>,
    opts: &FollowerOpts,
    stop: &AtomicBool,
) -> io::Result<FollowerReport> {
    fs::create_dir_all(&opts.staging_dir)?;
    db.set_read_only(true);
    repl.set_follower_mode(true);
    let mut tail = Tail {
        staged: HashMap::new(),
        applied: 0,
        checkpoint_floor: 0,
        bootstrapped: false,
    };

    let mut disconnected_at: Option<Instant> = None;
    let mut attempts_left = opts.reconnect_attempts;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(FollowerReport {
                promoted: false,
                applied_epoch: tail.applied,
                failover: None,
            });
        }
        match follow_once(db, repl, opts, stop, &mut tail) {
            Ok(()) => {
                // Clean stop request honoured inside the stream loop.
                return Ok(FollowerReport {
                    promoted: false,
                    applied_epoch: tail.applied,
                    failover: None,
                });
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Apply/decode failure: retrying would re-fail; surface it.
                return Err(e);
            }
            Err(e) => {
                disconnected_at.get_or_insert_with(Instant::now);
                if attempts_left > 0 {
                    attempts_left -= 1;
                    std::thread::park_timeout(opts.reconnect_backoff);
                    continue;
                }
                if !opts.promote_on_disconnect {
                    return Err(e);
                }
                db.promote();
                repl.set_follower_mode(false);
                return Ok(FollowerReport {
                    promoted: true,
                    applied_epoch: tail.applied,
                    failover: disconnected_at.map(|t| t.elapsed()),
                });
            }
        }
    }
}

/// One subscription: connect, stream, stage, apply, ack — until the
/// connection drops (`Err`) or `stop` is raised (`Ok`).
fn follow_once(
    db: &Arc<ReactDB>,
    repl: &Arc<ReplState>,
    opts: &FollowerOpts,
    stop: &AtomicBool,
    tail: &mut Tail,
) -> io::Result<()> {
    let mut stream = TcpStream::connect(&opts.primary_addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(20)))?;
    stream.write_all(&codec::client_hello())?;
    let mut hello = [0u8; codec::HANDSHAKE_LEN];
    read_exact_with_timeout(&mut stream, &mut hello)?;
    codec::parse_server_hello(&hello)
        .map_err(|e| io::Error::other(format!("primary rejected handshake: {e:?}")))?;

    let correlation_id = 1u64;
    let subscribe = codec::frame(&codec::encode_request(&Request::ReplSubscribe {
        correlation_id,
        from_epoch: tail.applied,
    }));
    stream.write_all(&subscribe)?;

    let mut rbuf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(io::Error::other("primary closed the stream")),
            Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        loop {
            let (payload, consumed) = match codec::decode_frame(&rbuf) {
                Ok(None) => break,
                Ok(Some(frame)) => frame,
                Err(e) => {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        format!("undecodable replication frame: {e:?}"),
                    ));
                }
            };
            let response = codec::decode_response(payload).map_err(|e| {
                io::Error::new(
                    ErrorKind::InvalidData,
                    format!("undecodable replication frame: {e:?}"),
                )
            })?;
            rbuf.drain(..consumed);
            match response {
                Response::ReplFile {
                    name,
                    offset,
                    bytes,
                    ..
                } => stage_chunk(&opts.staging_dir, tail, &name, offset, &bytes)?,
                Response::ReplEpoch { epoch, .. } => {
                    if epoch > tail.applied {
                        apply_through(db, opts, tail, epoch)?;
                        let ack = codec::frame(&codec::encode_request(&Request::ReplAck {
                            correlation_id,
                            applied_epoch: tail.applied,
                        }));
                        stream.write_all(&ack)?;
                    }
                    repl.observe_apply(tail.applied, epoch);
                }
                Response::ReplEnd { reason, .. } => {
                    return Err(io::Error::other(format!("stream ended: {reason}")));
                }
                _ => {} // a subscribed connection carries nothing else
            }
        }
    }
}

/// Blocking read of exactly `buf.len()` bytes on a stream whose read
/// timeout is short; retries timeouts so the handshake survives them.
fn read_exact_with_timeout(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    let deadline = Instant::now() + Duration::from_secs(5);
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::Error::other("primary closed during handshake")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                if Instant::now() >= deadline {
                    return Err(io::Error::other("handshake timed out"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Stages one shipped chunk at its exact offset. The cursor re-ships a
/// file from offset 0 after a resubscribe, so a chunk below the staged
/// length truncates and rewrites — idempotent by construction.
fn stage_chunk(
    staging_dir: &Path,
    tail: &mut Tail,
    name: &str,
    offset: u64,
    bytes: &[u8],
) -> io::Result<()> {
    if name.contains('/') || name.contains('\\') || name == "." || name == ".." {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("shipped file name {name:?} is not a plain file name"),
        ));
    }
    let staged_len = tail.staged.get(name).copied().unwrap_or(0);
    let mut file = fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(staging_dir.join(name))?;
    if offset > staged_len {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("gap in shipped stream for {name}: offset {offset} past {staged_len}"),
        ));
    }
    if offset < staged_len {
        file.set_len(offset)?;
    }
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(bytes)?;
    tail.staged
        .insert(name.to_string(), offset + bytes.len() as u64);
    Ok(())
}

/// Applies every staged-but-unapplied batch with commit epoch `<= epoch`
/// into the local engine, bootstrapping from the staged checkpoint chain
/// on the first call, then forces a local group commit so the subsequent
/// ack means *durably* applied.
fn apply_through(
    db: &Arc<ReactDB>,
    opts: &FollowerOpts,
    tail: &mut Tail,
    epoch: u64,
) -> io::Result<()> {
    let mut checkpoint_rows: Vec<(TidWord, RedoRecord)> = Vec::new();
    if !tail.bootstrapped {
        if let Some(recovered) =
            reactdb_wal::load_checkpoint(&opts.staging_dir, epoch, opts.replay_workers)?
        {
            tail.checkpoint_floor = recovered.cover_epoch;
            checkpoint_rows = recovered.rows;
        }
        tail.bootstrapped = true;
    }

    // Re-decode the staged segments and keep what is new this round:
    // batches above the checkpoint floor and the already-applied epoch,
    // at or below the announced epoch. Within one apply call batches are
    // ordered by commit TID, as recovery orders them.
    let floor = tail.checkpoint_floor.max(tail.applied);
    let mut batches: Vec<(TidWord, Vec<RedoRecord>)> = Vec::new();
    for name in tail.staged.keys() {
        if !(name.starts_with("wal-") && name.ends_with(".log")) {
            continue;
        }
        let bytes = fs::read(opts.staging_dir.join(name))?;
        let scan = reactdb_wal::codec::decode_segment(&bytes).ok_or_else(|| {
            io::Error::new(
                ErrorKind::InvalidData,
                format!("staged segment {name} does not decode"),
            )
        })?;
        for (tid, records) in scan.batches {
            if tid.epoch() > floor && tid.epoch() <= epoch {
                batches.push((tid, records));
            }
        }
    }
    batches.sort_by_key(|(tid, _)| (tid.epoch(), tid.version()));

    if !(batches.is_empty() && checkpoint_rows.is_empty()) {
        db.apply_redo(&checkpoint_rows, &batches, opts.replay_workers)
            .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("apply failed: {e}")))?;
        // The ack promises durability: flush the follower's own WAL.
        db.wal_sync()
            .map_err(|e| io::Error::other(format!("follower group commit failed: {e}")))?;
    }
    tail.applied = epoch;
    Ok(())
}
