//! Standalone `reactdb-server`: boots an engine instance with a builtin
//! workload schema and serves the wire protocol until interrupted.
//!
//! Reactor database specs contain Rust closures, so a standalone process
//! cannot load an arbitrary application schema from a file; instead the
//! binary offers the builtin workload schemas (SmallBank, YCSB) selected
//! by flag — enough for the load generator, smoke tests and any client
//! driving those procedures over the wire.
//!
//! ```text
//! reactdb-server --addr 127.0.0.1:5433 --workload smallbank --scale 1000 \
//!     --executors 4 --deployment shared_nothing --wal-dir /tmp/reactdb-wal
//! ```
//!
//! Flags:
//!   --addr HOST:PORT      bind address (default 127.0.0.1:5433; port 0 = ephemeral)
//!   --workload NAME       smallbank | ycsb (default smallbank)
//!   --scale N             customers / keys to load (default 1000)
//!   --executors N         engine executors (default 4)
//!   --deployment NAME     shared_nothing | shared_everything | affinity
//!                         (default shared_nothing)
//!   --net-workers N       I/O worker threads (default 2)
//!   --max-in-flight N     per-connection pipeline cap (default 128)
//!   --wal-dir PATH        enable epoch-sync durability in PATH (default off)
//!   --wal-interval-ms N   group-commit interval (default 10)
//!   --checkpoint-interval-epochs N
//!                         background checkpoint every N epochs (default 0 = off)
//!   --checkpoint-max-log-bytes N
//!                         also checkpoint after N bytes of new log (default 0 = off)
//!   --checkpoint-workers N
//!                         parallel checkpoint writer threads (default 0 = all cores)
//!   --replay-workers N    parallel recovery replay lanes (default 0 = all cores)
//!   --run-secs N          exit after N seconds (default: run until killed)
//!   --follow HOST:PORT    run as a replication follower of that primary:
//!                         boot empty (no workload load), serve reads at the
//!                         applied stable epoch, tail the primary's log, and
//!                         promote to a serving primary if the primary dies.
//!                         Requires --wal-dir (the follower's own log).
//!   --staging-dir PATH    where the shipped copy of the primary's log dir
//!                         is staged (default: <wal-dir>.staging)
//!   --repl-quorum N       followers that must durably ack an epoch before
//!                         AckLevel::Replicated replies release (default 1)
//!   --failpoints SPEC     arm fault-injection points, e.g.
//!                         "truncate-under-cursor=err:1,ack-drop=err:3";
//!                         equivalent to setting REACTDB_FAILPOINTS
//!
//! A follower that loses its primary prints `promoted to primary` with the
//! failover time; smoke tests and the CI replication gate grep for it.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use reactdb_common::{CheckpointConfig, DeploymentConfig, DurabilityConfig};
use reactdb_engine::ReactDB;
use reactdb_server::{run_follower, FollowerOpts, Server, ServerConfig};
use reactdb_workloads::{smallbank, ycsb};

struct Opts {
    addr: String,
    workload: String,
    scale: usize,
    executors: usize,
    deployment: String,
    net_workers: usize,
    max_in_flight: usize,
    wal_dir: Option<String>,
    wal_interval_ms: u64,
    checkpoint_interval_epochs: u64,
    checkpoint_max_log_bytes: u64,
    checkpoint_workers: usize,
    replay_workers: usize,
    run_secs: Option<u64>,
    follow: Option<String>,
    staging_dir: Option<String>,
    repl_quorum: usize,
    failpoints: Option<String>,
}

fn usage_and_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("see the doc comment at the top of crates/server/src/main.rs for flags");
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: "127.0.0.1:5433".to_string(),
        workload: "smallbank".to_string(),
        scale: 1000,
        executors: 4,
        deployment: "shared_nothing".to_string(),
        net_workers: 2,
        max_in_flight: 128,
        wal_dir: None,
        wal_interval_ms: 10,
        checkpoint_interval_epochs: 0,
        checkpoint_max_log_bytes: 0,
        checkpoint_workers: 0,
        replay_workers: 0,
        run_secs: None,
        follow: None,
        staging_dir: None,
        repl_quorum: 1,
        failpoints: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage_and_exit(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--workload" => opts.workload = value("--workload"),
            "--scale" => {
                opts.scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--scale wants an integer"))
            }
            "--executors" => {
                opts.executors = value("--executors")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--executors wants an integer"))
            }
            "--deployment" => opts.deployment = value("--deployment"),
            "--net-workers" => {
                opts.net_workers = value("--net-workers")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--net-workers wants an integer"))
            }
            "--max-in-flight" => {
                opts.max_in_flight = value("--max-in-flight")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--max-in-flight wants an integer"))
            }
            "--wal-dir" => opts.wal_dir = Some(value("--wal-dir")),
            "--wal-interval-ms" => {
                opts.wal_interval_ms = value("--wal-interval-ms")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--wal-interval-ms wants an integer"))
            }
            "--checkpoint-interval-epochs" => {
                opts.checkpoint_interval_epochs = value("--checkpoint-interval-epochs")
                    .parse()
                    .unwrap_or_else(|_| {
                        usage_and_exit("--checkpoint-interval-epochs wants an integer")
                    })
            }
            "--checkpoint-max-log-bytes" => {
                opts.checkpoint_max_log_bytes = value("--checkpoint-max-log-bytes")
                    .parse()
                    .unwrap_or_else(|_| {
                        usage_and_exit("--checkpoint-max-log-bytes wants an integer")
                    })
            }
            "--checkpoint-workers" => {
                opts.checkpoint_workers = value("--checkpoint-workers")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--checkpoint-workers wants an integer"))
            }
            "--replay-workers" => {
                opts.replay_workers = value("--replay-workers")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--replay-workers wants an integer"))
            }
            "--run-secs" => {
                opts.run_secs = Some(
                    value("--run-secs")
                        .parse()
                        .unwrap_or_else(|_| usage_and_exit("--run-secs wants an integer")),
                )
            }
            "--follow" => opts.follow = Some(value("--follow")),
            "--staging-dir" => opts.staging_dir = Some(value("--staging-dir")),
            "--repl-quorum" => {
                opts.repl_quorum = value("--repl-quorum")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--repl-quorum wants an integer"))
            }
            "--failpoints" => opts.failpoints = Some(value("--failpoints")),
            other => usage_and_exit(&format!("unknown flag {other}")),
        }
    }
    if opts.follow.is_some() && opts.wal_dir.is_none() {
        usage_and_exit("--follow requires --wal-dir (the follower's own log directory)");
    }
    opts
}

fn main() {
    let opts = parse_opts();
    if let Some(spec) = &opts.failpoints {
        reactdb_wal::failpoint::arm(spec)
            .unwrap_or_else(|e| usage_and_exit(&format!("--failpoints: {e}")));
    }

    let mut config = match opts.deployment.as_str() {
        "shared_nothing" => DeploymentConfig::shared_nothing(opts.executors),
        "shared_everything" => DeploymentConfig::shared_everything_without_affinity(opts.executors),
        "affinity" => DeploymentConfig::shared_everything_with_affinity(opts.executors),
        other => usage_and_exit(&format!("unknown deployment {other}")),
    };
    config.replication = config.replication.with_quorum(opts.repl_quorum);
    if let Some(dir) = &opts.wal_dir {
        config = config
            .with_durability(
                DurabilityConfig::epoch_sync(dir.as_str()).with_interval_ms(opts.wal_interval_ms),
            )
            .with_checkpoint(
                CheckpointConfig::every_epochs(opts.checkpoint_interval_epochs)
                    .with_max_log_bytes(opts.checkpoint_max_log_bytes)
                    .with_workers(opts.checkpoint_workers)
                    .with_replay_workers(opts.replay_workers),
            );
    }

    let spec = match opts.workload.as_str() {
        "smallbank" => smallbank::spec(opts.scale),
        "ycsb" => ycsb::spec(opts.scale),
        other => usage_and_exit(&format!("unknown workload {other}")),
    };

    eprintln!(
        "booting {} (scale {}) on {} executors, deployment {}, durability {}",
        opts.workload,
        opts.scale,
        opts.executors,
        opts.deployment,
        opts.wal_dir.as_deref().unwrap_or("off"),
    );
    let db = ReactDB::boot(spec, config.clone());
    // A follower gets its data from the primary's stream, not a local load.
    if opts.follow.is_none() {
        match opts.workload.as_str() {
            "smallbank" => smallbank::load(&db, opts.scale).expect("smallbank load"),
            "ycsb" => ycsb::load(&db, opts.scale).expect("ycsb load"),
            _ => unreachable!(),
        }
    }
    let db = Arc::new(db);

    let server = Server::start(
        Arc::clone(&db),
        ServerConfig::default()
            .with_addr(opts.addr)
            .with_workers(opts.net_workers)
            .with_max_in_flight(opts.max_in_flight)
            .with_replication(config.replication),
    )
    .expect("bind server");
    // The loadgen's --spawn mode and scripts parse this line for the port.
    println!("listening on {}", server.local_addr());

    // Follower mode: tail the primary on a dedicated thread while the
    // server above answers reads at the applied stable epoch.
    let follower_stop = Arc::new(AtomicBool::new(false));
    let follower = opts.follow.as_ref().map(|primary| {
        let staging = opts.staging_dir.clone().unwrap_or_else(|| {
            format!(
                "{}.staging",
                opts.wal_dir.as_deref().expect("checked in parse_opts")
            )
        });
        let follower_opts =
            FollowerOpts::new(primary.clone(), staging).with_replay_workers(opts.replay_workers);
        let db = Arc::clone(&db);
        let repl = server.repl_state();
        let stop = Arc::clone(&follower_stop);
        std::thread::Builder::new()
            .name("reactdb-follower".into())
            .spawn(move || {
                match run_follower(&db, &repl, &follower_opts, &stop) {
                    Ok(report) if report.promoted => {
                        // Scripts and the CI replication gate parse this line.
                        println!(
                            "promoted to primary (applied epoch {}, failover {} ms)",
                            report.applied_epoch,
                            report.failover.map_or(0, |d| d.as_millis()),
                        );
                    }
                    Ok(report) => {
                        eprintln!("follower stopped at applied epoch {}", report.applied_epoch)
                    }
                    Err(e) => eprintln!("follower failed: {e}"),
                }
            })
            .expect("spawn follower thread")
    });

    match opts.run_secs {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    eprintln!("draining and shutting down");
    follower_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    server.shutdown();
    if let Some(follower) = follower {
        // The stop flag is checked between stream reads (bounded by the
        // read timeout), so this join is bounded too.
        let _ = follower.join();
    }
    // Last engine handle: drop shuts the engine down and releases the
    // log-directory lock.
    drop(db);
}
