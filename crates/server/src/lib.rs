//! TCP wire-protocol front end for a ReactDB-rs engine instance.
//!
//! The offline build environment rules out async runtimes, so the server is
//! a sharded thread-per-core blocking design in the spirit of the paper's
//! executor/affinity model: one acceptor thread plus N I/O worker threads,
//! each new connection pinned to a worker by peer-address hash and never
//! migrated. A worker owns its connections outright — nonblocking sockets
//! polled in a loop with a short idle park — so no locks are taken on the
//! per-connection hot path.
//!
//! Each accepted connection performs the version handshake and then maps
//! 1:1 onto an engine [`Client`] session. Requests are pipelined: a worker
//! decodes as many frames as the connection's in-flight cap allows, submits
//! each invoke without waiting ([`Client::submit`]), and polls the
//! resulting `TxnHandle`s as it services the connection — replying at
//! validation time, at durable time, or at replicated time per the
//! request's [`AckLevel`](reactdb_common::AckLevel), in whatever order
//! transactions actually resolve (responses carry the request's
//! correlation id, so ordering is the client's problem by design).
//!
//! **Replication** — a connection that sends `ReplSubscribe` is handed off
//! from its I/O worker to a dedicated feeder thread that streams the
//! engine's log directory through a [`reactdb_wal::ShipCursor`]: the
//! newest checkpoint chain first, then the durable tail of every log
//! segment, interleaved with durable-epoch announcements. `ReplAck`
//! frames flowing back advance that follower's entry in the per-follower
//! registry; [`ReplState::quorum_epoch`] — the `quorum`-th-highest acked
//! epoch across live followers — is the gate
//! [`AckLevel::Replicated`](reactdb_common::AckLevel) invokes wait
//! behind, so a transaction is acknowledged at that level only once a
//! quorum of followers has durably applied its commit epoch. The
//! follower side of the stream lives in [`replica`].
//!
//! Robustness rules:
//!
//! * **Backpressure** — a connection at its in-flight cap (or with a
//!   backed-up send buffer) is not read from until it drains; misbehaving
//!   clients stall themselves, not the worker.
//! * **Timeouts** — a connection that stalls mid-frame, or that refuses to
//!   accept writes while responses are queued, is killed after a deadline.
//! * **Malformed frames** — a failed length/checksum/body decode kills
//!   only the offending connection; its session drops and the engine
//!   resolves whatever was still in flight.
//! * **Graceful shutdown** — [`Server::shutdown`] stops accepting, drains
//!   in-flight transactions and send buffers (bounded by
//!   `drain_timeout`), then joins every thread. Dropping the last
//!   `Arc<ReactDB>` afterwards releases the `LogDirLock` via the engine's
//!   own shutdown path.
//!
//! The server records its request lifecycle into the engine's metrics
//! registry (`net_decode` / `net_dispatch` / `net_reply` phases) and
//! augments [`ReactDB::metrics`] with connection counters and gauges; the
//! wire protocol's metrics op returns that augmented snapshot rendered as
//! Prometheus text or JSON — the `GET /metrics` equivalent.

pub mod replica;

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use reactdb_client::codec::{self, MetricsFormat, Request, Response};
use reactdb_common::{AckLevel, ReplicationConfig};
use reactdb_engine::{Client, ReactDB, TxnHandle};
use reactdb_obs::{Counter, Gauge, Metrics, MetricsSnapshot, Phase};
use reactdb_wal::{ShipCursor, ShipEvent};

pub use replica::{run_follower, FollowerOpts, FollowerReport};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// I/O worker threads; connections are pinned across them by
    /// peer-address hash.
    pub workers: usize,
    /// Per-connection cap on invokes submitted but not yet replied to;
    /// reaching it pauses reads from that connection until work drains.
    pub max_in_flight: usize,
    /// A connection that has started a frame (or the handshake) and makes
    /// no read progress for this long is killed.
    pub read_timeout: Duration,
    /// A connection with queued responses that accepts no bytes for this
    /// long is killed.
    pub write_timeout: Duration,
    /// Upper bound on how long [`Server::shutdown`] waits for in-flight
    /// transactions and send buffers to drain before force-closing.
    pub drain_timeout: Duration,
    /// Shipping knobs (chunk size, poll interval) for replication
    /// subscriptions; defaults match
    /// [`reactdb_common::ReplicationConfig::default`].
    pub replication: ReplicationConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_in_flight: 128,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            replication: ReplicationConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the I/O worker thread count (at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-connection in-flight cap (at least 1).
    pub fn with_max_in_flight(mut self, cap: usize) -> Self {
        self.max_in_flight = cap.max(1);
        self
    }

    /// Sets both stall timeouts.
    pub fn with_timeouts(mut self, read: Duration, write: Duration) -> Self {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// Sets the graceful-shutdown drain bound.
    pub fn with_drain_timeout(mut self, drain: Duration) -> Self {
        self.drain_timeout = drain;
        self
    }

    /// Sets the replication shipping knobs.
    pub fn with_replication(mut self, replication: ReplicationConfig) -> Self {
        self.replication = replication;
        self
    }
}

/// Connection-level counters the server adds to the metrics snapshot.
#[derive(Debug, Default)]
pub struct NetStats {
    accepted: AtomicU64,
    active: AtomicU64,
    rejected: AtomicU64,
    malformed: AtomicU64,
    timeouts: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    in_flight: AtomicU64,
}

impl NetStats {
    /// Connections accepted over the server's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections currently open (post-handshake or still handshaking).
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Connections refused at the handshake (bad magic or version).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Connections killed for a malformed frame or body.
    pub fn malformed(&self) -> u64 {
        self.malformed.load(Ordering::Relaxed)
    }

    /// Connections killed for a read or write stall.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Requests dispatched (all kinds).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Responses written (all kinds).
    pub fn responses(&self) -> u64 {
        self.responses.load(Ordering::Relaxed)
    }

    /// Invokes submitted to the engine and not yet replied to, across all
    /// connections.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }
}

/// One live follower subscription in the primary's registry.
#[derive(Debug, Clone)]
struct FollowerEntry {
    /// The follower's wire-carried stable id (constant across its
    /// reconnects).
    id: u64,
    /// Highest epoch this follower has durably applied and acknowledged.
    acked: u64,
    /// Live subscriptions carrying this id: briefly 2 while a resubscribe
    /// overlaps the dying feeder it replaces; the entry is pruned at 0.
    live: u32,
}

/// Replication progress shared between the wire server, its feeder
/// threads, and (on a follower) the apply loop in [`replica`].
///
/// One struct serves both roles because a promoted follower *becomes* a
/// primary without restarting its server: the primary-side fields start
/// mattering the moment a follower of its own subscribes.
///
/// The primary side keeps a per-follower registry keyed by the stable
/// `follower_id` each subscription carries: [`ReplState::quorum_epoch`]
/// is the `quorum`-th-highest acked epoch across *live* followers, and
/// it — not the fastest follower's ack — gates
/// [`AckLevel::Replicated`](reactdb_common::AckLevel) replies, so a
/// replicated ack means "durable on at least quorum + 1 nodes". Dead
/// followers are pruned when their feeder exits (via the registration
/// guard's drop, so even a panicking feeder prunes), which can move
/// `quorum_epoch` *backwards*: pending replicated acks then correctly
/// re-stall until a quorum of live followers catches up again.
#[derive(Debug, Default)]
pub struct ReplState {
    /// Live follower subscriptions (primary side).
    followers: AtomicU64,
    /// Highest epoch some (the fastest) follower has durably applied and
    /// acknowledged (primary side). Kept for observability; the
    /// replicated-ack gate is [`ReplState::quorum_epoch`].
    acked_epoch: AtomicU64,
    /// Replicated-ack quorum (how many followers must have durably
    /// applied an epoch); 0 reads as 1.
    quorum: AtomicU64,
    /// Per-follower ack registry (primary side).
    roster: Mutex<Vec<FollowerEntry>>,
    /// Highest epoch this node has durably applied (follower side).
    applied_epoch: AtomicU64,
    /// Highest durable epoch the primary has announced to this node
    /// (follower side).
    shipped_epoch: AtomicU64,
    /// Set while this node tails a primary; cleared by promotion.
    follower_mode: AtomicBool,
}

impl ReplState {
    /// Live follower subscriptions on this node.
    pub fn followers(&self) -> u64 {
        self.followers.load(Ordering::Relaxed)
    }

    /// Highest epoch acknowledged as durably applied by any follower —
    /// the *fastest* follower's progress, for observability. The
    /// replicated-ack gate is [`ReplState::quorum_epoch`].
    pub fn acked_epoch(&self) -> u64 {
        self.acked_epoch.load(Ordering::Acquire)
    }

    /// The replicated-ack quorum this primary enforces (at least 1).
    pub fn quorum(&self) -> usize {
        (self.quorum.load(Ordering::Relaxed) as usize).max(1)
    }

    /// Sets the replicated-ack quorum (0 reads as 1).
    pub fn set_quorum(&self, quorum: usize) {
        self.quorum.store(quorum as u64, Ordering::Relaxed);
    }

    /// The highest epoch durably applied by at least [`ReplState::quorum`]
    /// live followers: the `quorum`-th-highest acked epoch of the
    /// registry, or 0 while fewer than `quorum` followers are subscribed.
    /// Not monotonic by design — a follower dying can lower it, re-gating
    /// pending replicated acks on the followers that still exist.
    pub fn quorum_epoch(&self) -> u64 {
        let roster = self.roster.lock().unwrap();
        let quorum = self.quorum();
        if roster.len() < quorum {
            return 0;
        }
        let mut acked: Vec<u64> = roster.iter().map(|f| f.acked).collect();
        acked.sort_unstable_by(|a, b| b.cmp(a));
        acked[quorum - 1]
    }

    /// Live follower ids and their acked epochs (for metrics and tests).
    pub fn follower_acks(&self) -> Vec<(u64, u64)> {
        let roster = self.roster.lock().unwrap();
        roster.iter().map(|f| (f.id, f.acked)).collect()
    }

    /// Highest epoch this node has durably applied from its primary.
    pub fn applied_epoch(&self) -> u64 {
        self.applied_epoch.load(Ordering::Acquire)
    }

    /// Highest durable epoch the primary has announced to this node.
    pub fn shipped_epoch(&self) -> u64 {
        self.shipped_epoch.load(Ordering::Acquire)
    }

    /// Whether this node is currently tailing a primary.
    pub fn is_follower(&self) -> bool {
        self.follower_mode.load(Ordering::Acquire)
    }

    /// Enters `follower_id` into the registry (or revives its entry on a
    /// reconnect) and returns a guard whose drop deregisters it. The
    /// feeder holds the guard for the life of the subscription, so a
    /// follower that dies — or a feeder that panics — is pruned and the
    /// `repl_followers` gauge stays truthful.
    pub fn register_follower(self: &Arc<Self>, follower_id: u64) -> FollowerRegistration {
        {
            let mut roster = self.roster.lock().unwrap();
            match roster.iter_mut().find(|f| f.id == follower_id) {
                Some(entry) => entry.live += 1,
                None => roster.push(FollowerEntry {
                    id: follower_id,
                    acked: 0,
                    live: 1,
                }),
            }
        }
        self.followers.fetch_add(1, Ordering::Relaxed);
        FollowerRegistration {
            repl: Arc::clone(self),
            follower_id,
        }
    }

    /// Monotonically raises `follower_id`'s acked epoch (primary side).
    /// Unregistered ids are ignored: an ack can only advance the quorum
    /// through a live registry entry.
    pub fn observe_ack(&self, follower_id: u64, applied_epoch: u64) {
        {
            let mut roster = self.roster.lock().unwrap();
            let Some(entry) = roster.iter_mut().find(|f| f.id == follower_id) else {
                return;
            };
            entry.acked = entry.acked.max(applied_epoch);
        }
        self.acked_epoch.fetch_max(applied_epoch, Ordering::AcqRel);
    }

    /// Records follower-side apply progress.
    pub fn observe_apply(&self, applied_epoch: u64, shipped_epoch: u64) {
        self.applied_epoch
            .fetch_max(applied_epoch, Ordering::AcqRel);
        self.shipped_epoch
            .fetch_max(shipped_epoch, Ordering::AcqRel);
    }

    /// Flags or clears follower mode (promotion clears it).
    pub fn set_follower_mode(&self, follower: bool) {
        self.follower_mode.store(follower, Ordering::Release);
    }

    fn deregister(&self, follower_id: u64) {
        let mut roster = self.roster.lock().unwrap();
        if let Some(pos) = roster.iter().position(|f| f.id == follower_id) {
            roster[pos].live = roster[pos].live.saturating_sub(1);
            if roster[pos].live == 0 {
                roster.remove(pos);
            }
        }
        self.followers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Registration of one follower subscription; dropping it deregisters
/// the follower (see [`ReplState::register_follower`]).
#[derive(Debug)]
pub struct FollowerRegistration {
    repl: Arc<ReplState>,
    follower_id: u64,
}

impl Drop for FollowerRegistration {
    fn drop(&mut self) {
        self.repl.deregister(self.follower_id);
    }
}

struct Shared {
    db: Arc<ReactDB>,
    metrics: Arc<Metrics>,
    stats: NetStats,
    repl: Arc<ReplState>,
    /// Feeder threads serving replication subscriptions; joined at
    /// shutdown.
    feeders: Mutex<Vec<JoinHandle<()>>>,
    config: ServerConfig,
    shutdown: AtomicBool,
}

impl Shared {
    /// The engine snapshot augmented with the server's connection counters
    /// and gauges — what the wire metrics op renders.
    fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.db.metrics();
        let s = &self.stats;
        for (name, value) in [
            ("net_connections_accepted", s.accepted()),
            ("net_connections_rejected", s.rejected()),
            (
                "net_connections_killed{reason=\"malformed\"}",
                s.malformed(),
            ),
            ("net_connections_killed{reason=\"timeout\"}", s.timeouts()),
            ("net_requests", s.requests()),
            ("net_responses", s.responses()),
        ] {
            snap.counters.push(Counter {
                name: name.to_string(),
                value,
            });
        }
        snap.gauges.push(Gauge {
            name: "net_connections_active".to_string(),
            value: s.active() as f64,
        });
        snap.gauges.push(Gauge {
            name: "net_requests_in_flight".to_string(),
            value: s.in_flight() as f64,
        });
        let repl = &self.repl;
        snap.gauges.push(Gauge {
            name: "repl_followers".to_string(),
            value: repl.followers() as f64,
        });
        snap.gauges.push(Gauge {
            name: "repl_acked_epoch".to_string(),
            value: repl.acked_epoch() as f64,
        });
        // Per-follower progress plus the quorum epoch that actually gates
        // replicated acks ("durable on >= quorum + 1 nodes").
        for (id, acked) in repl.follower_acks() {
            snap.gauges.push(Gauge {
                name: format!("repl_acked_epoch{{follower=\"{id:016x}\"}}"),
                value: acked as f64,
            });
        }
        let quorum_epoch = repl.quorum_epoch();
        snap.gauges.push(Gauge {
            name: "repl_quorum_epoch".to_string(),
            value: quorum_epoch as f64,
        });
        // Primary-side lag: durable epochs no follower has acknowledged
        // yet. Zero with durability off (nothing to ship) or no follower
        // progress recorded. The quorum variant measures against the
        // quorum-acked epoch — what a replicated invoke would wait on now.
        let durable = self.db.durable_epoch();
        let lag = durable.map_or(0, |durable| durable.saturating_sub(repl.acked_epoch()));
        snap.gauges.push(Gauge {
            name: "repl_lag_epochs".to_string(),
            value: lag as f64,
        });
        let quorum_lag = durable.map_or(0, |durable| durable.saturating_sub(quorum_epoch));
        snap.gauges.push(Gauge {
            name: "repl_quorum_epoch_lag".to_string(),
            value: quorum_lag as f64,
        });
        if repl.is_follower() {
            snap.gauges.push(Gauge {
                name: "repl_applied_epoch".to_string(),
                value: repl.applied_epoch() as f64,
            });
            snap.gauges.push(Gauge {
                name: "repl_follower_lag_epochs".to_string(),
                value: repl.shipped_epoch().saturating_sub(repl.applied_epoch()) as f64,
            });
        }
        snap
    }
}

/// A running wire server fronting one engine instance.
///
/// Obtained from [`Server::start`]; stopped by [`Server::shutdown`] (or
/// drop, which performs the same drain).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker threads, and returns. The
    /// server shares `db`'s metrics registry, so its `net_*` phases land
    /// in the same snapshot as the engine's.
    pub fn start(db: Arc<ReactDB>, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let metrics = db.metrics_registry();
        let shared = Arc::new(Shared {
            db,
            metrics,
            stats: NetStats::default(),
            repl: Arc::new(ReplState::default()),
            feeders: Mutex::new(Vec::new()),
            config,
            shutdown: AtomicBool::new(false),
        });
        shared
            .repl
            .set_quorum(shared.config.replication.effective_quorum());

        let mut senders = Vec::new();
        let mut workers = Vec::new();
        for idx in 0..shared.config.workers {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("reactdb-net-{idx}"))
                    .spawn(move || worker_loop(shared, rx, idx))?,
            );
        }
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("reactdb-net-accept".into())
            .spawn(move || accept_loop(listener, acceptor_shared, senders))?;

        Ok(Self {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live connection counters.
    pub fn net_stats(&self) -> &NetStats {
        &self.shared.stats
    }

    /// Replication progress: follower count and acked epoch on a primary,
    /// applied/shipped epochs on a follower. The follower apply loop
    /// ([`run_follower`]) updates the same instance, so the server's
    /// metrics snapshot reflects it live.
    pub fn repl_state(&self) -> Arc<ReplState> {
        Arc::clone(&self.shared.repl)
    }

    /// The engine's metrics snapshot augmented with the server's `net_*`
    /// counters and gauges.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// Stops accepting, drains in-flight transactions and send buffers
    /// (bounded by the configured drain timeout), and joins every thread.
    /// The engine itself keeps running; dropping the last `Arc<ReactDB>`
    /// afterwards shuts it down and releases the log-directory lock.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let feeders = std::mem::take(&mut *self.shared.feeders.lock().unwrap());
        for feeder in feeders {
            let _ = feeder.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, senders: Vec<mpsc::Sender<TcpStream>>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                shared.stats.active.fetch_add(1, Ordering::Relaxed);
                // Pin by peer-address hash so a client's connection always
                // lands on the same worker (stable, no rebalancing).
                let mut hash = 0xcbf2_9ce4_8422_2325u64;
                for b in peer.to_string().bytes() {
                    hash ^= b as u64;
                    hash = hash.wrapping_mul(0x100_0000_01b3);
                }
                let worker = (hash % senders.len() as u64) as usize;
                if senders[worker].send(stream).is_err() {
                    shared.stats.active.fetch_sub(1, Ordering::Relaxed);
                    return; // workers gone; shutting down
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::park_timeout(Duration::from_micros(200));
            }
            Err(_) => std::thread::park_timeout(Duration::from_millis(1)),
        }
    }
}

/// One invoke submitted to the engine, awaiting its reply point.
struct Pending {
    correlation_id: u64,
    handle: TxnHandle,
    ack: AckLevel,
}

/// Per-connection state owned by exactly one worker.
struct Conn {
    stream: TcpStream,
    session: Client,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    inflight: VecDeque<Pending>,
    handshaken: bool,
    /// Last time a read made progress; the read-stall clock only matters
    /// while the peer owes bytes (mid-handshake or mid-frame).
    last_read: Instant,
    /// Last time a write drained bytes while responses were queued.
    last_write: Instant,
    /// Set when the connection must be closed.
    kill: Option<KillReason>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillReason {
    /// Peer closed or the socket errored; nothing to count specially.
    Gone,
    /// Handshake failed (magic or version); counted as rejected.
    HandshakeRejected,
    /// Frame or body failed to decode; counted as malformed.
    Malformed,
    /// Read or write stall exceeded its deadline; counted as timeout.
    Stalled,
    /// Graceful shutdown finished draining this connection.
    Drained,
    /// The connection subscribed as a replication follower and its socket
    /// was handed to a feeder thread; the worker forgets the connection
    /// without shutting the socket down.
    ReplHandoff,
}

/// Soft cap on a connection's buffered bytes; reads pause above it.
const WBUF_HIGH_WATER: usize = 4 << 20;

/// Minimum spacing between WAL sync kicks a worker issues on behalf of
/// stalled durable acknowledgements.
const WAL_KICK_INTERVAL: Duration = Duration::from_millis(1);

fn worker_loop(shared: Arc<Shared>, rx: mpsc::Receiver<TcpStream>, worker_idx: usize) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut last_wal_kick = Instant::now();
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let shutting = shared.shutdown.load(Ordering::SeqCst);
        if shutting && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + shared.config.drain_timeout);
        }

        // Adopt connections the acceptor pinned to this worker.
        while let Ok(stream) = rx.try_recv() {
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                shared.stats.active.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let now = Instant::now();
            conns.push(Conn {
                stream,
                session: shared.db.client(),
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                inflight: VecDeque::new(),
                handshaken: false,
                last_read: now,
                last_write: now,
                kill: None,
            });
        }

        let mut progressed = false;
        let mut want_wal_kick = false;
        for conn in conns.iter_mut() {
            progressed |= service(&shared, conn, worker_idx, shutting, &mut want_wal_kick);
        }

        // A durable acknowledgement is waiting on group commit; nudge the
        // WAL rather than trusting the interval daemon alone, rate-limited
        // per worker.
        if want_wal_kick && last_wal_kick.elapsed() >= WAL_KICK_INTERVAL {
            last_wal_kick = Instant::now();
            let _ = shared.db.wal_sync();
        }

        conns.retain_mut(|conn| {
            let Some(reason) = conn.kill else { return true };
            match reason {
                KillReason::HandshakeRejected => {
                    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                }
                KillReason::Malformed => {
                    shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
                }
                KillReason::Stalled => {
                    shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                KillReason::Gone | KillReason::Drained | KillReason::ReplHandoff => {}
            }
            // Dropping the connection drops its session and handles; the
            // engine resolves whatever was still in flight on its own, so
            // a mid-run kill leaks nothing.
            shared
                .stats
                .in_flight
                .fetch_sub(conn.inflight.len() as u64, Ordering::Relaxed);
            shared.stats.active.fetch_sub(1, Ordering::Relaxed);
            // A handed-off socket lives on in its feeder thread (the
            // worker's fd is a duplicate); shutting it down here would
            // sever the replication stream.
            if reason != KillReason::ReplHandoff {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
            false
        });

        if shutting {
            let deadline_passed = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if conns.is_empty() || deadline_passed {
                return;
            }
            let drained = conns
                .iter()
                .all(|c| c.inflight.is_empty() && c.wbuf.is_empty());
            if drained {
                for conn in conns.iter_mut() {
                    conn.kill = Some(KillReason::Drained);
                }
                continue; // next retain pass closes them
            }
        }

        if !progressed {
            std::thread::park_timeout(Duration::from_micros(100));
        }
    }
}

/// Services one connection once: read, handshake, decode/dispatch, poll
/// in-flight transactions, flush, and check stall deadlines. Returns true
/// when any byte or transaction moved (the worker's idle heuristic).
fn service(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    worker_idx: usize,
    shutting: bool,
    want_wal_kick: &mut bool,
) -> bool {
    if conn.kill.is_some() {
        return false;
    }
    let mut progressed = false;

    // Read — unless shutting down, backpressured, or buffers are backed up
    // past the high-water mark.
    let paused = shutting
        || conn.inflight.len() >= shared.config.max_in_flight
        || conn.wbuf.len() >= WBUF_HIGH_WATER
        || conn.rbuf.len() >= WBUF_HIGH_WATER;
    if paused {
        // Not our peer's fault we aren't reading; restart its window so
        // the stall clock measures only willing-to-read time.
        conn.last_read = Instant::now();
    } else {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.kill = Some(KillReason::Gone);
                    return true;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    conn.last_read = Instant::now();
                    progressed = true;
                    if conn.rbuf.len() >= WBUF_HIGH_WATER {
                        break; // plenty buffered; decode before reading more
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.kill = Some(KillReason::Gone);
                    return true;
                }
            }
        }
    }

    // Handshake precedes any frame.
    if !conn.handshaken && conn.rbuf.len() >= codec::HANDSHAKE_LEN {
        let mut hello = [0u8; codec::HANDSHAKE_LEN];
        hello.copy_from_slice(&conn.rbuf[..codec::HANDSHAKE_LEN]);
        conn.rbuf.drain(..codec::HANDSHAKE_LEN);
        match codec::parse_client_hello(&hello) {
            Ok(_) => {
                conn.wbuf.extend_from_slice(&codec::server_hello(true));
                conn.handshaken = true;
            }
            Err(codec::WireError::VersionMismatch { .. }) => {
                // Tell the client which version we speak, then hang up.
                let _ = conn.stream.write_all(&codec::server_hello(false));
                conn.kill = Some(KillReason::HandshakeRejected);
                return true;
            }
            Err(_) => {
                conn.kill = Some(KillReason::HandshakeRejected);
                return true;
            }
        }
        progressed = true;
    }

    // Decode and dispatch pipelined requests up to the in-flight cap.
    while conn.handshaken && conn.inflight.len() < shared.config.max_in_flight {
        let decode_clock = shared.metrics.clock();
        let (request, consumed) = match codec::decode_frame(&conn.rbuf) {
            Ok(None) => break,
            Ok(Some((payload, consumed))) => match codec::decode_request(payload) {
                Ok(request) => (request, consumed),
                Err(_) => {
                    conn.kill = Some(KillReason::Malformed);
                    return true;
                }
            },
            Err(_) => {
                conn.kill = Some(KillReason::Malformed);
                return true;
            }
        };
        conn.rbuf.drain(..consumed);
        if let Some(since) = decode_clock {
            shared
                .metrics
                .record_elapsed(Phase::NetDecode, worker_idx, since);
        }
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        progressed = true;

        let dispatch_clock = shared.metrics.clock();
        match request {
            Request::Invoke {
                correlation_id,
                ack,
                reactor,
                procedure,
                args,
            } => match conn.session.submit(&reactor, &procedure, args) {
                Ok(handle) => {
                    shared.stats.in_flight.fetch_add(1, Ordering::Relaxed);
                    conn.inflight.push_back(Pending {
                        correlation_id,
                        handle,
                        ack,
                    });
                }
                Err(error) => reply(
                    shared,
                    conn,
                    worker_idx,
                    &Response::TxnErr {
                        correlation_id,
                        error,
                    },
                ),
            },
            Request::Metrics {
                correlation_id,
                format,
            } => {
                let snap = shared.snapshot();
                let text = match format {
                    MetricsFormat::Prometheus => snap.to_prometheus_text(),
                    MetricsFormat::Json => snap.to_json(),
                };
                reply(
                    shared,
                    conn,
                    worker_idx,
                    &Response::MetricsText {
                        correlation_id,
                        text,
                    },
                );
            }
            Request::Ping { correlation_id } => {
                reply(shared, conn, worker_idx, &Response::Pong { correlation_id })
            }
            Request::ReplSubscribe {
                correlation_id,
                // The primary always ships the full bootstrap (checkpoint
                // chain + durable log); a follower that already applied
                // through `from_epoch` skips those epochs at apply time,
                // so re-shipping is merely redundant, never wrong.
                from_epoch: _,
                follower_id,
            } => {
                subscribe_follower(shared, conn, worker_idx, correlation_id, follower_id);
                return true;
            }
            // Acks are read by the feeder on the subscribed connection
            // they belong to; one arriving on an ordinary connection has
            // no registered follower behind it and is dropped — it must
            // not advance any quorum it never subscribed to.
            Request::ReplAck { .. } => {}
        }
        if let Some(since) = dispatch_clock {
            shared
                .metrics
                .record_elapsed(Phase::NetDispatch, worker_idx, since);
        }
    }

    // Poll in-flight transactions; reply to whatever reached its ack point.
    let durable_epoch = shared.db.durable_epoch();
    // The quorum epoch takes the roster lock; compute it at most once per
    // pass, and only when some pending invoke actually asked for a
    // replicated ack.
    let mut quorum_epoch: Option<u64> = None;
    let mut still_pending = VecDeque::with_capacity(conn.inflight.len());
    while let Some(pending) = conn.inflight.pop_front() {
        let outcome = match pending.handle.try_result() {
            None => {
                still_pending.push_back(pending);
                continue;
            }
            Some(outcome) => outcome,
        };
        // A durable-ack commit waits until group commit covers its epoch;
        // a replicated-ack commit additionally waits until a *quorum* of
        // followers has acknowledged durably applying it. Aborts are
        // never durable and reply immediately. With no WAL configured
        // both levels degrade to validated, like the in-process
        // `wait_durable`.
        if pending.ack.requires_durable() && outcome.is_ok() {
            let covered = match (pending.handle.commit_epoch(), durable_epoch) {
                (Some(commit), Some(durable)) => commit <= durable,
                (_, None) => true,
                (None, Some(_)) => true,
            };
            let replicated = !pending.ack.requires_replicated()
                || durable_epoch.is_none()
                || pending.handle.commit_epoch().is_none_or(|commit| {
                    commit <= *quorum_epoch.get_or_insert_with(|| shared.repl.quorum_epoch())
                });
            if !(covered && replicated) {
                *want_wal_kick = true;
                still_pending.push_back(pending);
                continue;
            }
        }
        let response = match outcome {
            Ok(value) => Response::TxnOk {
                correlation_id: pending.correlation_id,
                value,
                commit_epoch: pending.handle.commit_epoch(),
            },
            Err(error) => Response::TxnErr {
                correlation_id: pending.correlation_id,
                error,
            },
        };
        shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        reply(shared, conn, worker_idx, &response);
        progressed = true;
    }
    conn.inflight = still_pending;

    // Flush the send buffer.
    while !conn.wbuf.is_empty() {
        match conn.stream.write(&conn.wbuf) {
            Ok(0) => {
                conn.kill = Some(KillReason::Gone);
                return true;
            }
            Ok(n) => {
                conn.wbuf.drain(..n);
                conn.last_write = Instant::now();
                progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.kill = Some(KillReason::Gone);
                return true;
            }
        }
    }

    // Stall deadlines. The read clock only matters while the peer owes us
    // bytes — mid-handshake or with the buffer's first frame incomplete —
    // and only when we were actually willing to read (a connection paused
    // by our own backpressure is not the peer stalling). An idle client
    // with no partial frame may stay connected indefinitely.
    let partial_frame =
        !conn.rbuf.is_empty() && matches!(codec::decode_frame(&conn.rbuf), Ok(None));
    let owes_bytes = !conn.handshaken || partial_frame;
    if !paused && owes_bytes && conn.last_read.elapsed() >= shared.config.read_timeout {
        conn.kill = Some(KillReason::Stalled);
        return true;
    }
    if !conn.wbuf.is_empty() && conn.last_write.elapsed() >= shared.config.write_timeout {
        conn.kill = Some(KillReason::Stalled);
        return true;
    }

    progressed
}

/// Encodes a response and queues it on the connection's send buffer,
/// recording the reply phase.
fn reply(shared: &Shared, conn: &mut Conn, worker_idx: usize, response: &Response) {
    let clock = shared.metrics.clock();
    let framed = codec::frame(&codec::encode_response(response));
    conn.wbuf.extend_from_slice(&framed);
    if let Some(since) = clock {
        shared
            .metrics
            .record_elapsed(Phase::NetReply, worker_idx, since);
    }
    shared.stats.responses.fetch_add(1, Ordering::Relaxed);
}

/// Hands a connection that sent `ReplSubscribe` off to a feeder thread.
///
/// The worker's nonblocking poll loop is the wrong shape for a one-way
/// bulk stream, so the subscription gets a dedicated thread working a
/// duplicated socket handle in blocking mode; the worker then forgets the
/// connection via [`KillReason::ReplHandoff`] (which closes the worker's
/// duplicate without shutting the socket down). Whatever responses were
/// still queued on the connection are shipped first, in order.
fn subscribe_follower(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    worker_idx: usize,
    correlation_id: u64,
    follower_id: u64,
) {
    let Some(dir) = shared.db.wal().map(|w| w.dir().to_path_buf()) else {
        // Nothing to ship without a log; tell the follower and move on.
        reply(
            shared,
            conn,
            worker_idx,
            &Response::ReplEnd {
                correlation_id,
                reason: "primary has durability off: nothing to replicate".to_string(),
            },
        );
        return;
    };
    let stream = match conn.stream.try_clone() {
        Ok(stream) => stream,
        Err(_) => {
            conn.kill = Some(KillReason::Gone);
            return;
        }
    };
    let backlog = std::mem::take(&mut conn.wbuf);
    conn.kill = Some(KillReason::ReplHandoff);

    let shared_for_feeder = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("reactdb-repl-feed".into())
        .spawn(move || {
            // The registration guard deregisters on drop, so the follower
            // count and quorum roster stay truthful even if the feeder
            // panics or bails early — the gauge can no longer leak.
            let registration = shared_for_feeder.repl.register_follower(follower_id);
            feeder_loop(
                &shared_for_feeder,
                stream,
                backlog,
                correlation_id,
                follower_id,
                &dir,
            );
            drop(registration);
        });
    match spawned {
        Ok(handle) => shared.feeders.lock().unwrap().push(handle),
        Err(_) => conn.kill = Some(KillReason::Gone),
    }
}

/// Streams the log directory to one follower until the stream ends.
///
/// Blocking socket with a short read timeout: each round ships whatever
/// the [`ShipCursor`] found new, then drains any `ReplAck` frames the
/// follower sent back into [`ReplState::observe_ack`] under this
/// subscription's `follower_id`. A cursor error (e.g. a checkpoint
/// truncated a segment mid-ship) ends the stream with a clean `ReplEnd`
/// so the follower reconnects and resubscribes instead of seeing a
/// connection drop.
///
/// Failpoints (scoped to the log directory's name): `feeder-stall`
/// delays each round (or, armed as `err`, kills the feeder abruptly —
/// no `ReplEnd`, exercising the registration guard), `ack-drop` discards
/// follower acks before they reach the quorum registry.
fn feeder_loop(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    backlog: Vec<u8>,
    correlation_id: u64,
    follower_id: u64,
    dir: &std::path::Path,
) {
    let fp_scope = dir
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("")
        .to_string();
    let poll_interval = Duration::from_millis(shared.config.replication.poll_interval_ms.max(1));
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(poll_interval)).is_err()
        || stream
            .set_write_timeout(Some(shared.config.write_timeout))
            .is_err()
    {
        return;
    }
    if !backlog.is_empty() && stream.write_all(&backlog).is_err() {
        return;
    }
    // Chunks must fit the wire frame cap with room for the envelope.
    let chunk = shared
        .config
        .replication
        .chunk_bytes
        .min(codec::MAX_FRAME_LEN as usize / 2);
    let mut cursor = ShipCursor::new(dir, chunk);
    let mut rbuf: Vec<u8> = Vec::new();
    let mut chunk_buf = [0u8; 16 * 1024];

    let send = |stream: &mut TcpStream, shared: &Shared, response: &Response| -> bool {
        let clock = shared.metrics.clock();
        let framed = codec::frame(&codec::encode_response(response));
        if stream.write_all(&framed).is_err() {
            return false;
        }
        if let Some(since) = clock {
            shared
                .metrics
                .record_elapsed(Phase::NetReplicate, usize::MAX, since);
        }
        shared.stats.responses.fetch_add(1, Ordering::Relaxed);
        true
    };

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = send(
                &mut stream,
                shared,
                &Response::ReplEnd {
                    correlation_id,
                    reason: "primary shutting down".to_string(),
                },
            );
            return;
        }
        // A `stall` spec sleeps inside `fire_scoped`; an `err` spec kills
        // the feeder abruptly, as a panic or a crashed thread would.
        if matches!(
            reactdb_wal::failpoint::fire_scoped("feeder-stall", &fp_scope),
            Some(reactdb_wal::failpoint::FpAction::Err)
        ) {
            return;
        }

        let events = match cursor.poll() {
            Ok(events) => events,
            Err(e) => {
                let _ = send(
                    &mut stream,
                    shared,
                    &Response::ReplEnd {
                        correlation_id,
                        reason: e.to_string(),
                    },
                );
                return;
            }
        };
        let idle = events.is_empty();
        for event in events {
            let response = match event {
                ShipEvent::File {
                    name,
                    offset,
                    bytes,
                } => Response::ReplFile {
                    correlation_id,
                    name,
                    offset,
                    bytes,
                },
                ShipEvent::DurableEpoch(epoch) => Response::ReplEpoch {
                    correlation_id,
                    epoch,
                },
            };
            if !send(&mut stream, shared, &response) {
                return;
            }
        }

        // Drain follower acknowledgements. The read timeout doubles as the
        // idle pacing: an idle round blocks here for one poll interval.
        loop {
            match stream.read(&mut chunk_buf) {
                Ok(0) => return, // follower hung up
                Ok(n) => {
                    rbuf.extend_from_slice(&chunk_buf[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    break;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
            if !idle {
                break; // more shipping to do; don't linger on the socket
            }
        }
        loop {
            match codec::decode_frame(&rbuf) {
                Ok(None) => break,
                Ok(Some((payload, consumed))) => {
                    match codec::decode_request(payload) {
                        Ok(Request::ReplAck { applied_epoch, .. }) => {
                            // `ack-drop`: the follower applied and acked,
                            // but the primary never hears it — the quorum
                            // gate must stall, not lie.
                            if reactdb_wal::failpoint::fire_scoped("ack-drop", &fp_scope)
                                != Some(reactdb_wal::failpoint::FpAction::Err)
                            {
                                shared.repl.observe_ack(follower_id, applied_epoch);
                            }
                        }
                        Ok(_) => {} // a subscribed connection is repl-only
                        Err(_) => return,
                    }
                    rbuf.drain(..consumed);
                }
                Err(_) => return,
            }
        }
    }
}
