//! Global epochs.
//!
//! Silo divides time into short epochs; commit TIDs embed the epoch in their
//! high-order bits so that TIDs are totally ordered across workers without a
//! shared counter on the critical path. ReactDB inherits this scheme
//! (§3.2.1). The engine advances the epoch from a background thread; tests
//! and the simulator advance it manually.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared epoch counter.
#[derive(Debug)]
pub struct EpochManager {
    epoch: AtomicU64,
    stop: AtomicU64,
}

impl Default for EpochManager {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochManager {
    /// Creates a manager starting at epoch 1 (epoch 0 is reserved for bulk
    /// loaded data).
    pub fn new() -> Self {
        Self {
            epoch: AtomicU64::new(1),
            stop: AtomicU64::new(0),
        }
    }

    /// Current epoch.
    pub fn current(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advances the epoch by one and returns the new value.
    pub fn advance(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Raises the epoch to at least `target`. Used by crash recovery to
    /// resume beyond the highest epoch observed in the log, so recovered
    /// commits never reuse a pre-crash (epoch, sequence) pair.
    pub fn advance_to(&self, target: u64) {
        let mut current = self.epoch.load(Ordering::Acquire);
        while current < target {
            match self.epoch.compare_exchange_weak(
                current,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Spawns a background thread that advances the epoch every `period`
    /// until the returned manager is asked to stop (dropping the handle does
    /// not stop it; call [`EpochManager::stop`]).
    pub fn start_advancer(self: &Arc<Self>, period: Duration) -> std::thread::JoinHandle<()> {
        let mgr = Arc::clone(self);
        std::thread::spawn(move || {
            while mgr.stop.load(Ordering::Acquire) == 0 {
                std::thread::sleep(period);
                mgr.advance();
            }
        })
    }

    /// Signals the background advancer (if any) to terminate.
    pub fn stop(&self) {
        self.stop.store(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_one_and_advances() {
        let e = EpochManager::new();
        assert_eq!(e.current(), 1);
        assert_eq!(e.advance(), 2);
        assert_eq!(e.current(), 2);
    }

    #[test]
    fn background_advancer_makes_progress_and_stops() {
        let e = Arc::new(EpochManager::new());
        let handle = e.start_advancer(Duration::from_millis(1));
        let start = e.current();
        std::thread::sleep(Duration::from_millis(20));
        assert!(e.current() > start);
        e.stop();
        handle.join().unwrap();
    }
}
