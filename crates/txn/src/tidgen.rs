//! Per-executor generation of commit TIDs.
//!
//! Silo's commit TID for a transaction must be (a) larger than the TID of
//! any record in the read or write set, (b) larger than the worker's most
//! recently chosen TID and (c) in the current global epoch. [`TidGen`]
//! implements that rule; one generator is owned by each transaction
//! executor so there is no shared counter on the commit path.

use std::sync::atomic::{AtomicU64, Ordering};

use reactdb_storage::TidWord;

/// Generator of monotonically increasing commit TIDs for one executor.
#[derive(Debug, Default)]
pub struct TidGen {
    /// Raw value of the last TID handed out by this generator.
    last: AtomicU64,
}

impl TidGen {
    /// Creates a fresh generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the commit TID for a transaction that observed
    /// `max_observed` (the largest record version in its read and write
    /// sets) and commits in `epoch`.
    pub fn next(&self, epoch: u64, max_observed: TidWord) -> TidWord {
        // Candidate sequence: one more than both the observed sequence (if
        // in the same epoch) and our own last sequence (if in the same
        // epoch).
        let mut last = self.last.load(Ordering::Relaxed);
        loop {
            let last_word = TidWord(last);
            let mut seq = 1;
            if last_word.epoch() == epoch {
                seq = seq.max(last_word.sequence() + 1);
            }
            if max_observed.epoch() == epoch {
                seq = seq.max(max_observed.sequence() + 1);
            }
            // Epochs only move forward, so observing a larger epoch than the
            // manager reported cannot happen; if the observed record is from
            // a *later* epoch than `epoch` (possible when the advancer ticks
            // mid-commit), adopt that epoch to preserve monotonicity.
            let commit_epoch = epoch.max(max_observed.epoch()).max(last_word.epoch());
            if commit_epoch > epoch {
                // Recompute the sequence against the adopted epoch.
                let mut s = 1;
                if last_word.epoch() == commit_epoch {
                    s = s.max(last_word.sequence() + 1);
                }
                if max_observed.epoch() == commit_epoch {
                    s = s.max(max_observed.sequence() + 1);
                }
                seq = s;
            }
            let candidate = TidWord::committed(commit_epoch, seq);
            match self.last.compare_exchange_weak(
                last,
                candidate.raw(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return candidate,
                Err(observed) => last = observed,
            }
        }
    }

    /// The last TID handed out (all-zero before the first call).
    pub fn last(&self) -> TidWord {
        TidWord(self.last.load(Ordering::Relaxed))
    }

    /// Raises the generator's high-water mark to at least `tid`. Used by
    /// crash recovery so that a recovered database keeps handing out TIDs
    /// strictly greater than every TID replayed from the log.
    pub fn observe(&self, tid: TidWord) {
        let target = tid.unlocked().as_present().raw();
        let mut last = self.last.load(Ordering::Relaxed);
        while TidWord(last).version() < TidWord(target).version() {
            match self
                .last
                .compare_exchange_weak(last, target, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => last = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tids_are_monotonic_per_generator() {
        let g = TidGen::new();
        let a = g.next(1, TidWord::committed(1, 0));
        let b = g.next(1, TidWord::committed(1, 0));
        let c = g.next(2, TidWord::committed(1, 0));
        assert!(a.version() < b.version());
        assert!(b.version() < c.version());
        assert_eq!(c.epoch(), 2);
    }

    #[test]
    fn tid_exceeds_observed_version() {
        let g = TidGen::new();
        let observed = TidWord::committed(1, 500);
        let t = g.next(1, observed);
        assert!(t.version() > observed.version());
        assert_eq!(t.sequence(), 501);
    }

    #[test]
    fn later_observed_epoch_is_adopted() {
        let g = TidGen::new();
        let observed = TidWord::committed(3, 7);
        let t = g.next(2, observed);
        assert_eq!(t.epoch(), 3);
        assert!(t.version() > observed.version());
    }

    /// Silo invariant (a)+(b): the commit TID is strictly greater than the
    /// largest observed record version *and* the worker's previous TID, for
    /// every interleaving of observations.
    #[test]
    fn tid_strictly_dominates_observed_and_previous() {
        let g = TidGen::new();
        let mut prev = TidWord(0);
        for (epoch, obs_epoch, obs_seq) in [
            (1, 0, 0),
            (1, 1, 3),
            (1, 1, 3),
            (2, 1, 900),
            (3, 3, 1),
            (3, 2, 77),
        ] {
            let observed = TidWord::committed(obs_epoch, obs_seq);
            let t = g.next(epoch, observed);
            assert!(
                t.version() > observed.version(),
                "{t:?} !> observed {observed:?}"
            );
            assert!(t.version() > prev.version(), "{t:?} !> previous {prev:?}");
            prev = t;
        }
    }

    /// Silo invariant (c): the TID lies in the current global epoch, and
    /// stays within it as the [`EpochManager`] advances (adopting a later
    /// epoch only when a record from it was already observed).
    #[test]
    fn tid_tracks_epoch_manager_across_advances() {
        use crate::epoch::EpochManager;
        let mgr = EpochManager::new();
        let g = TidGen::new();
        for _ in 0..5 {
            let epoch = mgr.current();
            let t = g.next(epoch, TidWord::committed(0, 0));
            assert_eq!(t.epoch(), epoch, "TID must carry the current epoch");
            let t2 = g.next(epoch, TidWord::committed(epoch, 40));
            assert_eq!(t2.epoch(), epoch);
            assert!(t2.sequence() > 40);
            mgr.advance();
        }
        // After an advance, the sequence restarts but the version ordering
        // still strictly increases thanks to the epoch's high-order bits.
        let before = g.last();
        let t = g.next(mgr.current(), TidWord::committed(0, 0));
        assert_eq!(t.sequence(), 1);
        assert!(t.version() > before.version());
    }

    /// Recovery hook: `observe` raises the high-water mark so post-recovery
    /// TIDs dominate every replayed TID, and never lowers it.
    #[test]
    fn observe_is_monotonic_and_bounds_next_tid() {
        let g = TidGen::new();
        g.observe(TidWord::committed(4, 123));
        assert_eq!(g.last().epoch(), 4);
        g.observe(TidWord::committed(2, 999)); // lower: ignored
        assert_eq!(g.last().epoch(), 4);
        assert_eq!(g.last().sequence(), 123);
        let t = g.next(4, TidWord::committed(0, 0));
        assert_eq!(t.epoch(), 4);
        assert_eq!(t.sequence(), 124);
    }

    proptest! {
        #[test]
        fn prop_commit_tid_dominates_inputs(
            epoch in 1u64..100,
            obs_epoch in 0u64..100,
            obs_seq in 0u64..10_000,
        ) {
            let g = TidGen::new();
            let observed = TidWord::committed(obs_epoch, obs_seq);
            let prev = g.next(epoch, observed);
            let next = g.next(epoch, observed);
            prop_assert!(prev.version() > observed.version() || prev.epoch() > observed.epoch());
            prop_assert!(next.version() > prev.version());
        }
    }
}
