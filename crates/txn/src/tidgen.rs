//! Per-executor generation of commit TIDs.
//!
//! Silo's commit TID for a transaction must be (a) larger than the TID of
//! any record in the read or write set, (b) larger than the worker's most
//! recently chosen TID and (c) in the current global epoch. [`TidGen`]
//! implements that rule; one generator is owned by each transaction
//! executor so there is no shared counter on the commit path.

use std::sync::atomic::{AtomicU64, Ordering};

use reactdb_storage::TidWord;

/// Generator of monotonically increasing commit TIDs for one executor.
#[derive(Debug, Default)]
pub struct TidGen {
    /// Raw value of the last TID handed out by this generator.
    last: AtomicU64,
}

impl TidGen {
    /// Creates a fresh generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the commit TID for a transaction that observed
    /// `max_observed` (the largest record version in its read and write
    /// sets) and commits in `epoch`.
    pub fn next(&self, epoch: u64, max_observed: TidWord) -> TidWord {
        // Candidate sequence: one more than both the observed sequence (if
        // in the same epoch) and our own last sequence (if in the same
        // epoch).
        let mut last = self.last.load(Ordering::Relaxed);
        loop {
            let last_word = TidWord(last);
            let mut seq = 1;
            if last_word.epoch() == epoch {
                seq = seq.max(last_word.sequence() + 1);
            }
            if max_observed.epoch() == epoch {
                seq = seq.max(max_observed.sequence() + 1);
            }
            // Epochs only move forward, so observing a larger epoch than the
            // manager reported cannot happen; if the observed record is from
            // a *later* epoch than `epoch` (possible when the advancer ticks
            // mid-commit), adopt that epoch to preserve monotonicity.
            let commit_epoch = epoch.max(max_observed.epoch()).max(last_word.epoch());
            if commit_epoch > epoch {
                // Recompute the sequence against the adopted epoch.
                let mut s = 1;
                if last_word.epoch() == commit_epoch {
                    s = s.max(last_word.sequence() + 1);
                }
                if max_observed.epoch() == commit_epoch {
                    s = s.max(max_observed.sequence() + 1);
                }
                seq = s;
            }
            let candidate = TidWord::committed(commit_epoch, seq);
            match self.last.compare_exchange_weak(
                last,
                candidate.raw(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return candidate,
                Err(observed) => last = observed,
            }
        }
    }

    /// The last TID handed out (all-zero before the first call).
    pub fn last(&self) -> TidWord {
        TidWord(self.last.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tids_are_monotonic_per_generator() {
        let g = TidGen::new();
        let a = g.next(1, TidWord::committed(1, 0));
        let b = g.next(1, TidWord::committed(1, 0));
        let c = g.next(2, TidWord::committed(1, 0));
        assert!(a.version() < b.version());
        assert!(b.version() < c.version());
        assert_eq!(c.epoch(), 2);
    }

    #[test]
    fn tid_exceeds_observed_version() {
        let g = TidGen::new();
        let observed = TidWord::committed(1, 500);
        let t = g.next(1, observed);
        assert!(t.version() > observed.version());
        assert_eq!(t.sequence(), 501);
    }

    #[test]
    fn later_observed_epoch_is_adopted() {
        let g = TidGen::new();
        let observed = TidWord::committed(3, 7);
        let t = g.next(2, observed);
        assert_eq!(t.epoch(), 3);
        assert!(t.version() > observed.version());
    }

    proptest! {
        #[test]
        fn prop_commit_tid_dominates_inputs(
            epoch in 1u64..100,
            obs_epoch in 0u64..100,
            obs_seq in 0u64..10_000,
        ) {
            let g = TidGen::new();
            let observed = TidWord::committed(obs_epoch, obs_seq);
            let prev = g.next(epoch, observed);
            let next = g.next(epoch, observed);
            prop_assert!(prev.version() > observed.version() || prev.epoch() > observed.epoch());
            prop_assert!(next.version() > prev.version());
        }
    }
}
