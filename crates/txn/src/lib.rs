//! Concurrency control for ReactDB-rs.
//!
//! ReactDB reuses Silo's optimistic concurrency control for transactions
//! inside a container and a two-phase commit protocol for transactions that
//! span containers (§3.2). This crate implements both:
//!
//! * [`EpochManager`] — the global epoch counter that bounds TID generation,
//! * [`TidGen`] — per-executor generator of commit TIDs satisfying Silo's
//!   three constraints (greater than every observed TID, greater than the
//!   worker's previous TID, within the current epoch),
//! * [`OccTxn`] — the per-container participant state of a transaction: read
//!   set, write set, and the transactional read/insert/update/delete/scan
//!   operations used by the reactor execution context,
//! * [`Coordinator`] — commit of a set of participants, running the Silo
//!   validation protocol locally and two-phase commit across containers,
//! * [`LogSink`]/[`RedoRecord`] — the commit-time durability hook: the
//!   coordinator renders the validated write set as redo records and hands
//!   them to a sink (implemented by `reactdb-wal`) for epoch-based group
//!   commit.

pub mod coordinator;
pub mod epoch;
pub mod logging;
pub mod occ;
pub mod tidgen;

pub use coordinator::{CommitOutcome, Coordinator};
pub use epoch::EpochManager;
pub use logging::{LogSink, NullSink, RedoPayload, RedoRecord, RowDelta};
pub use occ::{OccTxn, WriteKind};
pub use tidgen::TidGen;
