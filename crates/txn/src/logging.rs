//! The commit-time logging interface.
//!
//! Durability is layered *under* the concurrency control: when a transaction
//! passes Silo validation and installs its writes, the coordinator renders
//! the valided write set as [`RedoRecord`]s — one per written row, addressed
//! by (container, reactor, relation, primary key) — and hands the batch to a
//! [`LogSink`] together with the commit TID. The sink is expected to buffer;
//! group commit (fsync on epoch boundaries) is the sink implementation's
//! concern (see the `reactdb-wal` crate). Transactions that span containers
//! (2PC) produce records for every participating container in one batch, so
//! no participant's effects can be lost while another's survive.
//!
//! Keeping the trait here (and not in the WAL crate) means the concurrency
//! control layer has no dependency on any I/O machinery: tests and the
//! simulator can plug in in-memory sinks.

use reactdb_common::{ContainerId, Key, ReactorId};
use reactdb_storage::{TidWord, Tuple};

/// One logged row image: everything recovery needs to re-apply the write.
#[derive(Debug, Clone, PartialEq)]
pub struct RedoRecord {
    /// Container whose partition held the row (participant of the commit).
    pub container: ContainerId,
    /// Reactor whose state the row belongs to.
    pub reactor: ReactorId,
    /// Relation name within the reactor.
    pub relation: String,
    /// Primary key of the row.
    pub key: Key,
    /// Row image after the transaction; `None` records a deletion.
    pub image: Option<Tuple>,
}

/// Receiver of commit-time redo batches.
pub trait LogSink {
    /// Called once per committed transaction, after its writes were
    /// installed, with the commit TID and the redo records of every
    /// participating container. Implementations buffer; they must not block
    /// on I/O on this path.
    fn log_commit(&self, tid: TidWord, records: &[RedoRecord]);
}

/// A sink that drops everything (durability off).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl LogSink for NullSink {
    fn log_commit(&self, _tid: TidWord, _records: &[RedoRecord]) {}
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::sync::Mutex;

    /// Test sink collecting every batch it receives.
    #[derive(Debug, Default)]
    pub struct MemorySink {
        pub batches: Mutex<Vec<(TidWord, Vec<RedoRecord>)>>,
    }

    impl LogSink for MemorySink {
        fn log_commit(&self, tid: TidWord, records: &[RedoRecord]) {
            self.batches.lock().unwrap().push((tid, records.to_vec()));
        }
    }
}
