//! The commit-time logging interface.
//!
//! Durability is layered *under* the concurrency control: when a transaction
//! passes Silo validation and installs its writes, the coordinator renders
//! the valided write set as [`RedoRecord`]s — one per written row, addressed
//! by (container, reactor, relation, primary key) — and hands the batch to a
//! [`LogSink`] together with the commit TID. The sink is expected to buffer;
//! group commit (fsync on epoch boundaries) is the sink implementation's
//! concern (see the `reactdb-wal` crate). Transactions that span containers
//! (2PC) produce records for every participating container in one batch, so
//! no participant's effects can be lost while another's survive.
//!
//! A record's [`RedoPayload`] is either a full after-image, a deletion
//! tombstone, or — when the sink opted in via [`LogSink::wants_deltas`] — a
//! field-level [`TupleDelta`] against the image the update overwrote, so
//! update-heavy workloads pay log bandwidth proportional to what changed
//! rather than to row width. Delta records carry the base version OCC
//! validation pinned (the delta is exact, not heuristic) plus the full
//! after-image as commit-path transport, letting the sink *re-base* — fall
//! back to a full image — when the key has no full-image root in the
//! current log segment.
//!
//! Keeping the trait here (and not in the WAL crate) means the concurrency
//! control layer has no dependency on any I/O machinery: tests and the
//! simulator can plug in in-memory sinks.

use reactdb_common::{ContainerId, Key, ReactorId};
use reactdb_storage::{TidWord, Tuple, TupleDelta};

/// A field-level delta payload: everything replay needs to reconstruct the
/// after-image from the base image already in the slot.
#[derive(Debug, Clone)]
pub struct RowDelta {
    /// Version of the image the delta was computed against — the committed
    /// version this transaction overwrote (pinned by OCC read validation).
    pub base: TidWord,
    /// The changed fields.
    pub delta: TupleDelta,
    /// Full after-image, present only on the commit path: the log writer
    /// uses it to re-base (log a full image instead) when the key has no
    /// full-image root in its current segment. Decoded records carry
    /// `None` — the image is reconstructed at replay by applying `delta`.
    pub image: Option<Tuple>,
}

impl PartialEq for RowDelta {
    /// Compares the logged substance (base + delta) and ignores the
    /// commit-path-only `image` transport, so decoded records compare equal
    /// to what was encoded.
    fn eq(&self, other: &Self) -> bool {
        self.base == other.base && self.delta == other.delta
    }
}

/// What one redo record carries for its row.
#[derive(Debug, Clone, PartialEq)]
pub enum RedoPayload {
    /// Full row image after the transaction (inserts, first touch of a key
    /// per log segment, and updates whose delta would not be smaller).
    Full(Tuple),
    /// Field-level delta against the overwritten image (repeat updates).
    Delta(RowDelta),
    /// Deletion tombstone.
    Delete,
}

/// One logged row mutation: everything recovery needs to re-apply the write.
#[derive(Debug, Clone, PartialEq)]
pub struct RedoRecord {
    /// Container whose partition held the row (participant of the commit).
    pub container: ContainerId,
    /// Reactor whose state the row belongs to.
    pub reactor: ReactorId,
    /// Relation name within the reactor.
    pub relation: String,
    /// Primary key of the row.
    pub key: Key,
    /// The row mutation: full image, field delta, or tombstone.
    pub payload: RedoPayload,
}

impl RedoRecord {
    /// The full after-image, when the record carries one (`Full` always,
    /// `Delta` only on the commit path). `None` for tombstones and decoded
    /// delta records.
    pub fn image(&self) -> Option<&Tuple> {
        match &self.payload {
            RedoPayload::Full(tuple) => Some(tuple),
            RedoPayload::Delta(delta) => delta.image.as_ref(),
            RedoPayload::Delete => None,
        }
    }

    /// True for deletion tombstones.
    pub fn is_delete(&self) -> bool {
        matches!(self.payload, RedoPayload::Delete)
    }

    /// True for field-level delta records.
    pub fn is_delta(&self) -> bool {
        matches!(self.payload, RedoPayload::Delta(_))
    }
}

/// Receiver of commit-time redo batches.
pub trait LogSink {
    /// Called once per committed transaction, after its writes were
    /// installed, with the commit TID and the redo records of every
    /// participating container. Implementations buffer; they must not block
    /// on I/O on this path.
    fn log_commit(&self, tid: TidWord, records: &[RedoRecord]);

    /// True when the sink wants repeat updates rendered as
    /// [`RedoPayload::Delta`] records (the coordinator then diffs the
    /// before/after images at commit time). Sinks that return `false`
    /// receive full images only. Default: `false`.
    fn wants_deltas(&self) -> bool {
        false
    }
}

/// A sink that drops everything (durability off).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl LogSink for NullSink {
    fn log_commit(&self, _tid: TidWord, _records: &[RedoRecord]) {}
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::sync::Mutex;

    /// Test sink collecting every batch it receives.
    #[derive(Debug, Default)]
    pub struct MemorySink {
        pub batches: Mutex<Vec<(TidWord, Vec<RedoRecord>)>>,
        /// When set, the sink asks the coordinator for delta records.
        pub deltas: bool,
    }

    impl MemorySink {
        /// A sink that opts in to delta rendering.
        pub fn wanting_deltas() -> Self {
            Self {
                deltas: true,
                ..Self::default()
            }
        }
    }

    impl LogSink for MemorySink {
        fn log_commit(&self, tid: TidWord, records: &[RedoRecord]) {
            self.batches.lock().unwrap().push((tid, records.to_vec()));
        }

        fn wants_deltas(&self) -> bool {
            self.deltas
        }
    }
}
