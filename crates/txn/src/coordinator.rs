//! Commit of transactions: Silo validation locally, two-phase commit across
//! containers.
//!
//! A root transaction accumulates one [`OccTxn`] participant per container
//! it touched (directly or through nested sub-transactions, §3.2.2). The
//! [`Coordinator`] commits the set of participants:
//!
//! 1. **Lock phase** — all write-set records of all participants are locked
//!    in a single global deterministic order (by record address), which
//!    makes the protocol deadlock-free. With more than one participant this
//!    is the "prepare" phase of 2PC: a participant whose locks or
//!    validation fail votes no.
//! 2. **Membership fence** — before validating, every index node whose
//!    membership this commit will change is version-bumped: new secondary
//!    `(index key, PK)` pairs are physically installed *atomically with*
//!    their bump (readers that see the bumped version also see the
//!    provisional pair and resolve it through the locked row record);
//!    removals and primary appear/disappear are announced by bump and
//!    applied in the write phase. The transaction's own node set is
//!    refreshed for these bumps. Fencing *before* validation is what
//!    closes the write-skew window two concurrent scan-then-modify
//!    transactions would otherwise slip through: at least one of them sees
//!    the other's bump during validation. This spans all participants, so
//!    the 2PC path validates multi-reactor scans consistently. If the
//!    commit aborts, the provisional additions are rolled back.
//! 3. **Validation phase** — every read-set entry is checked (the record
//!    must still carry the observed version and must not be locked by
//!    another transaction), and every node-set entry is re-checked (the
//!    node must still carry the traversed version; a mismatch means the
//!    membership of a scanned range changed — a phantom — and the
//!    transaction aborts with [`TxnError::Phantom`]).
//! 4. **Write phase** — a commit TID is generated (greater than every
//!    observed version, the executor's previous TID, and within the current
//!    epoch) and all buffered writes are installed; stale secondary pairs
//!    of updates and deletes are retired (without re-bumping: the fence
//!    already announced those removals, and additions were installed by
//!    the fence itself). If any vote was no, all locks are released, the
//!    provisional additions are rolled back, and the transaction aborts
//!    everywhere — sub-transactions never commit partially (§2.2.3).

use std::collections::HashSet;
use std::sync::Arc;

use reactdb_common::{Result, TxnError};
use reactdb_obs::{CommitProbe, Phase};
use reactdb_storage::{TidWord, Tuple, TupleDelta};

use crate::epoch::EpochManager;
use crate::logging::{LogSink, RedoPayload, RedoRecord, RowDelta};
use crate::occ::{OccTxn, WriteKind};
use crate::tidgen::TidGen;

/// Outcome of a commit attempt, used by the engine for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The transaction committed with the given TID.
    Committed(TidWord),
    /// Validation failed (or a participant voted no) and the transaction
    /// was rolled back everywhere.
    Aborted,
}

impl CommitOutcome {
    /// True if the outcome is a commit.
    pub fn is_committed(&self) -> bool {
        matches!(self, CommitOutcome::Committed(_))
    }
}

/// Stateless commit coordinator (all state lives in the participants).
#[derive(Debug, Default, Clone, Copy)]
pub struct Coordinator;

impl Coordinator {
    /// The newest epoch a checkpoint can snapshot against: commits read the
    /// epoch at their serialization point and install their writes before
    /// releasing the durability gate, so once every in-flight commit has
    /// drained, all transactions with TID epochs `< current` are fully
    /// installed. The caller (the WAL's checkpointer) performs the drain
    /// via the commit gate and then walks table state knowing the returned
    /// epoch's prefix is stable: no commit of epoch `<= stable_epoch` can
    /// install a write the walk might miss.
    pub fn stable_epoch(epoch: &EpochManager) -> u64 {
        epoch.current().saturating_sub(1)
    }

    /// Attempts to commit the given participants atomically.
    ///
    /// Returns the commit TID on success. On failure every lock is released,
    /// no write is installed anywhere and [`TxnError::ValidationFailed`] is
    /// returned (the caller maps this to an abort of the root transaction).
    ///
    /// The epoch embedded in the returned TID is the transaction's
    /// durability fence: the engine threads it into the client's
    /// transaction handle, whose `wait_durable` acknowledgement blocks until
    /// the WAL's durable epoch covers it (the group commit for that epoch
    /// completed). `wait`-style acknowledgement at validation time remains
    /// available and precedes durability by at most one epoch.
    pub fn commit(
        participants: &mut [OccTxn],
        epoch: &EpochManager,
        tidgen: &TidGen,
    ) -> Result<TidWord> {
        Self::commit_logged(participants, epoch, tidgen, None)
    }

    /// Like [`Coordinator::commit`], but additionally renders the validated
    /// write set of every participant as [`RedoRecord`]s and hands the batch
    /// to `sink` once the writes are installed. Transactions spanning
    /// several containers (2PC) log the records of every participating
    /// container in the same batch, so recovery can never observe a
    /// partially persisted distributed transaction.
    pub fn commit_logged(
        participants: &mut [OccTxn],
        epoch: &EpochManager,
        tidgen: &TidGen,
        sink: Option<&dyn LogSink>,
    ) -> Result<TidWord> {
        Self::commit_observed(participants, epoch, tidgen, sink, None)
    }

    /// Like [`Coordinator::commit_logged`], but laps a [`CommitProbe`]
    /// across the protocol's phase boundaries (lock, fence, validate,
    /// write, log), feeding the engine's per-phase latency histograms and
    /// slow-transaction capture. With `probe == None` (tracing disabled)
    /// the commit path takes no timestamps at all. An aborting commit
    /// still records its lock, fence and validate laps — where rejected
    /// work spends its time is exactly what an abort investigation needs.
    pub fn commit_observed(
        participants: &mut [OccTxn],
        epoch: &EpochManager,
        tidgen: &TidGen,
        sink: Option<&dyn LogSink>,
        mut probe: Option<&mut CommitProbe>,
    ) -> Result<TidWord> {
        if let Some(p) = probe.as_deref_mut() {
            p.begin();
        }
        // ---- Phase 1: lock the union of the write sets in address order.
        let mut write_refs: Vec<(usize, usize)> = Vec::new(); // (participant, write idx)
        for (pi, p) in participants.iter().enumerate() {
            for wi in 0..p.writes().len() {
                write_refs.push((pi, wi));
            }
        }
        write_refs
            .sort_by_key(|(pi, wi)| Arc::as_ptr(&participants[*pi].writes()[*wi].record) as usize);

        let mut locked: Vec<(usize, usize)> = Vec::with_capacity(write_refs.len());
        let mut own_write_records: HashSet<usize> = HashSet::with_capacity(write_refs.len());
        let mut max_observed = TidWord::committed(0, 0);

        for (pi, wi) in &write_refs {
            let record = &participants[*pi].writes()[*wi].record;
            record.lock();
            locked.push((*pi, *wi));
            own_write_records.insert(Arc::as_ptr(record) as usize);
            let tid = record.tid();
            if tid.version() > max_observed.version() {
                max_observed = tid.unlocked();
            }
        }

        // ---- Serialization point: read the epoch after acquiring locks.
        let current_epoch = epoch.current();
        if let Some(p) = probe.as_deref_mut() {
            p.lap(Phase::Lock);
        }

        // ---- Phase 2: membership fence. For every index node whose
        // membership this commit changes: install new secondary pairs
        // (atomically with their bump — readers that see the bumped
        // version also see the provisional entry and resolve it through
        // the locked row record), announce removals and primary
        // appear/disappear with a bump, and remember the additions so an
        // abort can roll them back. Then refresh the transaction's own
        // node set so its own scans are not phantom-aborted by its own
        // writes (Silo's node-set refresh rule).
        // (participant, write idx, provisional additions of that write)
        type FenceAdditions = Vec<(usize, usize, Vec<(usize, reactdb_common::Key)>)>;
        let mut fence_bumps = Vec::new();
        let mut fence_added: FenceAdditions = Vec::new();
        for (pi, wi) in &locked {
            let w = &participants[*pi].writes()[*wi];
            let (before, after): (Option<&Tuple>, Option<&Tuple>) = match &w.kind {
                WriteKind::Insert(row) => (w.before.as_ref(), Some(row)),
                WriteKind::Update(row) => (w.before.as_ref(), Some(row)),
                WriteKind::Delete => (w.before.as_ref(), None),
            };
            let effect = w.table.membership_fence(&w.key, before, after);
            fence_bumps.extend(effect.bumps);
            if !effect.added.is_empty() {
                fence_added.push((*pi, *wi, effect.added));
            }
        }
        for p in participants.iter_mut() {
            for bump in &fence_bumps {
                p.refresh_node(bump);
            }
        }
        if let Some(p) = probe.as_deref_mut() {
            p.lap(Phase::Fence);
        }

        // ---- Phase 3: validate the read and node sets of every
        // participant.
        let mut valid = true;
        let mut phantom = false;
        'validation: for p in participants.iter() {
            if p.max_observed().version() > max_observed.version() {
                max_observed = p.max_observed();
            }
            for r in p.reads() {
                let now = r.record.tid();
                if now.version() != r.observed.version() {
                    valid = false;
                    break 'validation;
                }
                if now.is_locked()
                    && !own_write_records.contains(&(Arc::as_ptr(&r.record) as usize))
                {
                    valid = false;
                    break 'validation;
                }
            }
            for obs in p.nodes() {
                if !obs.is_current() {
                    valid = false;
                    phantom = true;
                    break 'validation;
                }
            }
        }

        if let Some(p) = probe.as_deref_mut() {
            p.lap(Phase::Validate);
        }

        if !valid {
            // Vote no: undo the provisional secondary additions, then
            // release every lock without touching record versions. The
            // fence bumps stay — they can only cause spurious (safe)
            // phantom aborts in concurrent scanners, never missed ones;
            // readers that saw a provisional pair resolve it through the
            // still-uncommitted record and filter it out.
            for (pi, wi, added) in &fence_added {
                let w = &participants[*pi].writes()[*wi];
                w.table.fence_rollback(&w.key, added);
            }
            for (pi, wi) in &locked {
                participants[*pi].writes()[*wi].record.unlock();
            }
            return Err(if phantom {
                TxnError::Phantom
            } else {
                TxnError::ValidationFailed
            });
        }

        // ---- Phase 4: generate the commit TID and install the writes.
        // Secondary-index additions are already in place from the fence;
        // what remains is retiring stale pairs of updates and deletes —
        // quietly, because the fence already announced those removals, so
        // re-bumping here would only double-invalidate scanners that
        // traversed between fence and install.
        let commit_tid = tidgen.next(current_epoch, max_observed);
        for (pi, wi) in &locked {
            let w = &participants[*pi].writes()[*wi];
            match &w.kind {
                WriteKind::Insert(row) => {
                    w.record.install(row.clone(), commit_tid);
                }
                WriteKind::Update(row) => {
                    w.record.install(row.clone(), commit_tid);
                    if let Some(before) = &w.before {
                        w.table.index_retire_fenced(&w.key, before, Some(row));
                    }
                }
                WriteKind::Delete => {
                    w.record.install_delete(commit_tid);
                    if let Some(before) = &w.before {
                        w.table.index_retire_fenced(&w.key, before, None);
                    }
                }
            }
        }
        if let Some(p) = probe.as_deref_mut() {
            p.lap(Phase::Write);
        }

        // ---- Durability hook: emit the redo batch for the whole commit.
        // Updates are rendered as field-level deltas when the sink opted in
        // (`wants_deltas`): the write entry kept the overwritten image and
        // its version, read validation just re-pinned both, so the diff is
        // exact. Inserts and deletes always carry full payloads; so do
        // updates whose arity changed (no field-level representation). The
        // after-image travels with every delta so the sink can re-base
        // (downgrade to a full image) for keys without a full-image root in
        // its current segment.
        if let Some(sink) = sink {
            let wants_deltas = sink.wants_deltas();
            let mut records = Vec::with_capacity(locked.len());
            for (pi, wi) in &locked {
                let p = &participants[*pi];
                let w = &p.writes()[*wi];
                let payload = match &w.kind {
                    WriteKind::Insert(row) => RedoPayload::Full(row.clone()),
                    WriteKind::Delete => RedoPayload::Delete,
                    WriteKind::Update(row) => {
                        let delta = if wants_deltas {
                            w.before
                                .as_ref()
                                .and_then(|before| TupleDelta::diff(before, row))
                        } else {
                            None
                        };
                        match delta {
                            Some(delta) => RedoPayload::Delta(RowDelta {
                                base: w.before_tid.unlocked(),
                                delta,
                                image: Some(row.clone()),
                            }),
                            None => RedoPayload::Full(row.clone()),
                        }
                    }
                };
                records.push(RedoRecord {
                    container: p.container(),
                    reactor: w.table.owner(),
                    relation: w.table.name().to_owned(),
                    key: w.key.clone(),
                    payload,
                });
            }
            if !records.is_empty() {
                sink.log_commit(commit_tid, &records);
            }
        }
        if let Some(p) = probe {
            p.lap(Phase::Log);
        }
        Ok(commit_tid)
    }

    /// Rolls back the participants without attempting to commit: nothing was
    /// installed (writes are buffered), so this is a no-op provided for
    /// symmetry and future durability hooks.
    pub fn abort(_participants: &mut [OccTxn]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_common::{ContainerId, Key, Value};
    use reactdb_storage::{ColumnType, Schema, Table};
    use std::ops::Bound;

    fn table(name: &str) -> Arc<Table> {
        let schema = Schema::of(&[("id", ColumnType::Int), ("v", ColumnType::Int)], &["id"]);
        let t = Arc::new(Table::new(name, schema));
        for i in 0..10i64 {
            t.load_row(Tuple::of([Value::Int(i), Value::Int(0)]))
                .unwrap();
        }
        t
    }

    fn env() -> (EpochManager, TidGen) {
        (EpochManager::new(), TidGen::new())
    }

    #[test]
    fn single_participant_commit_installs_writes() {
        let t = table("t");
        let (epoch, gen) = env();
        let mut p = OccTxn::new(ContainerId(0));
        p.update(&t, Tuple::of([Value::Int(1), Value::Int(42)]))
            .unwrap();
        p.insert(&t, Tuple::of([Value::Int(100), Value::Int(7)]))
            .unwrap();
        p.delete(&t, &Key::Int(2)).unwrap();
        let tid = Coordinator::commit(&mut [p], &epoch, &gen).unwrap();
        assert_eq!(tid.epoch(), 1);
        assert_eq!(
            t.get(&Key::Int(1)).unwrap().read_unguarded().at(1),
            &Value::Int(42)
        );
        assert!(t.get(&Key::Int(100)).unwrap().is_visible());
        assert!(!t.get(&Key::Int(2)).unwrap().is_visible());
        assert_eq!(t.visible_len(), 10); // 10 - 1 deleted + 1 inserted
    }

    #[test]
    fn stale_read_aborts() {
        let t = table("t");
        let (epoch, gen) = env();
        let mut p1 = OccTxn::new(ContainerId(0));
        p1.read(&t, &Key::Int(1)).unwrap();

        // A concurrent transaction commits an update to the same record.
        let mut p2 = OccTxn::new(ContainerId(0));
        p2.update(&t, Tuple::of([Value::Int(1), Value::Int(5)]))
            .unwrap();
        Coordinator::commit(&mut [p2], &epoch, &gen).unwrap();

        // p1 now writes something else but must fail validation on its read.
        p1.update(&t, Tuple::of([Value::Int(3), Value::Int(9)]))
            .unwrap();
        let err = Coordinator::commit(&mut [p1], &epoch, &gen).unwrap_err();
        assert_eq!(err, TxnError::ValidationFailed);
        // The failed transaction's write was not installed.
        assert_eq!(
            t.get(&Key::Int(3)).unwrap().read_unguarded().at(1),
            &Value::Int(0)
        );
    }

    #[test]
    fn read_own_write_record_does_not_self_conflict() {
        let t = table("t");
        let (epoch, gen) = env();
        let mut p = OccTxn::new(ContainerId(0));
        // Read and then update the same record: the record will be locked by
        // ourselves during validation and must not trigger an abort.
        p.read(&t, &Key::Int(4)).unwrap();
        p.update(&t, Tuple::of([Value::Int(4), Value::Int(44)]))
            .unwrap();
        Coordinator::commit(&mut [p], &epoch, &gen).unwrap();
        assert_eq!(
            t.get(&Key::Int(4)).unwrap().read_unguarded().at(1),
            &Value::Int(44)
        );
    }

    #[test]
    fn multi_participant_commit_is_atomic() {
        let t0 = table("t0");
        let t1 = table("t1");
        let (epoch, gen) = env();
        let mut p0 = OccTxn::new(ContainerId(0));
        let mut p1 = OccTxn::new(ContainerId(1));
        p0.update(&t0, Tuple::of([Value::Int(1), Value::Int(111)]))
            .unwrap();
        p1.update(&t1, Tuple::of([Value::Int(1), Value::Int(222)]))
            .unwrap();
        let tid = Coordinator::commit(&mut [p0, p1], &epoch, &gen).unwrap();
        assert_eq!(t0.get(&Key::Int(1)).unwrap().tid().version(), tid.version());
        assert_eq!(t1.get(&Key::Int(1)).unwrap().tid().version(), tid.version());
    }

    #[test]
    fn multi_participant_abort_rolls_back_everywhere() {
        let t0 = table("t0");
        let t1 = table("t1");
        let (epoch, gen) = env();

        // p reads from t1, then a concurrent commit invalidates that read.
        let mut p0 = OccTxn::new(ContainerId(0));
        let mut p1 = OccTxn::new(ContainerId(1));
        p0.update(&t0, Tuple::of([Value::Int(5), Value::Int(50)]))
            .unwrap();
        p1.read(&t1, &Key::Int(5)).unwrap();

        let mut other = OccTxn::new(ContainerId(1));
        other
            .update(&t1, Tuple::of([Value::Int(5), Value::Int(99)]))
            .unwrap();
        Coordinator::commit(&mut [other], &epoch, &gen).unwrap();

        let err = Coordinator::commit(&mut [p0, p1], &epoch, &gen).unwrap_err();
        assert_eq!(err, TxnError::ValidationFailed);
        // Neither container saw the aborted transaction's write.
        assert_eq!(
            t0.get(&Key::Int(5)).unwrap().read_unguarded().at(1),
            &Value::Int(0)
        );
        assert_eq!(
            t1.get(&Key::Int(5)).unwrap().read_unguarded().at(1),
            &Value::Int(99)
        );
        // Locks were released: a later transaction can commit.
        let mut retry = OccTxn::new(ContainerId(0));
        retry
            .update(&t0, Tuple::of([Value::Int(5), Value::Int(51)]))
            .unwrap();
        Coordinator::commit(&mut [retry], &epoch, &gen).unwrap();
    }

    #[test]
    fn read_only_transaction_commits_without_installing() {
        let t = table("t");
        let (epoch, gen) = env();
        let before = t.get(&Key::Int(1)).unwrap().tid();
        let mut p = OccTxn::new(ContainerId(0));
        p.read(&t, &Key::Int(1)).unwrap();
        p.scan(&t).unwrap();
        Coordinator::commit(&mut [p], &epoch, &gen).unwrap();
        assert_eq!(t.get(&Key::Int(1)).unwrap().tid(), before);
    }

    #[test]
    fn commit_tid_exceeds_all_observed_versions() {
        let t = table("t");
        let (epoch, gen) = env();
        // Raise one record to a large version.
        let rec = t.get(&Key::Int(7)).unwrap();
        rec.lock();
        rec.install(
            Tuple::of([Value::Int(7), Value::Int(7)]),
            TidWord::committed(1, 400),
        );

        let mut p = OccTxn::new(ContainerId(0));
        p.read(&t, &Key::Int(7)).unwrap();
        p.update(&t, Tuple::of([Value::Int(1), Value::Int(1)]))
            .unwrap();
        let tid = Coordinator::commit(&mut [p], &epoch, &gen).unwrap();
        assert!(tid.version() > TidWord::committed(1, 400).version());
    }

    #[test]
    fn multi_participant_commit_logs_every_container_atomically() {
        use crate::logging::test_support::MemorySink;
        let t0 = table("t0");
        let t1 = table("t1");
        let (epoch, gen) = env();
        let sink = MemorySink::default();
        let mut p0 = OccTxn::new(ContainerId(0));
        let mut p1 = OccTxn::new(ContainerId(1));
        p0.update(&t0, Tuple::of([Value::Int(1), Value::Int(11)]))
            .unwrap();
        p0.delete(&t0, &Key::Int(2)).unwrap();
        p1.insert(&t1, Tuple::of([Value::Int(100), Value::Int(22)]))
            .unwrap();
        let tid = Coordinator::commit_logged(&mut [p0, p1], &epoch, &gen, Some(&sink)).unwrap();

        let batches = sink.batches.lock().unwrap();
        assert_eq!(batches.len(), 1, "one batch per commit");
        let (logged_tid, records) = &batches[0];
        assert_eq!(*logged_tid, tid);
        assert_eq!(records.len(), 3);
        let containers: std::collections::HashSet<_> =
            records.iter().map(|r| r.container).collect();
        assert!(containers.contains(&ContainerId(0)) && containers.contains(&ContainerId(1)));
        let delete = records.iter().find(|r| r.key == Key::Int(2)).unwrap();
        assert!(delete.is_delete(), "deletes log a tombstone");
        let update = records.iter().find(|r| r.key == Key::Int(1)).unwrap();
        assert_eq!(update.image().unwrap().at(1), &Value::Int(11));
        assert!(
            !update.is_delta(),
            "updates stay full-image unless the sink asks for deltas"
        );
    }

    #[test]
    fn delta_wanting_sinks_get_exact_field_deltas_for_updates() {
        use crate::logging::test_support::MemorySink;
        let t = table("t");
        let (epoch, gen) = env();
        let sink = MemorySink::wanting_deltas();
        let base_tid = t.get(&Key::Int(3)).unwrap().tid();

        let mut p = OccTxn::new(ContainerId(0));
        p.update(&t, Tuple::of([Value::Int(3), Value::Int(33)]))
            .unwrap();
        p.insert(&t, Tuple::of([Value::Int(100), Value::Int(1)]))
            .unwrap();
        p.delete(&t, &Key::Int(4)).unwrap();
        Coordinator::commit_logged(&mut [p], &epoch, &gen, Some(&sink)).unwrap();

        let batches = sink.batches.lock().unwrap();
        let records = &batches[0].1;
        let update = records.iter().find(|r| r.key == Key::Int(3)).unwrap();
        let RedoPayload::Delta(row_delta) = &update.payload else {
            panic!("repeat update must render as a delta, got {update:?}");
        };
        assert_eq!(
            row_delta.base.version(),
            base_tid.version(),
            "the delta's base is the overwritten version"
        );
        assert_eq!(
            row_delta.delta.changes(),
            &[(1, Value::Int(33))],
            "only the changed field ships"
        );
        assert_eq!(
            row_delta.image.as_ref().unwrap().at(1),
            &Value::Int(33),
            "the after-image travels with the delta for writer re-basing"
        );
        // Inserts and deletes keep full payloads even for delta sinks.
        assert!(records
            .iter()
            .any(|r| r.key == Key::Int(100) && matches!(r.payload, RedoPayload::Full(_))));
        assert!(records
            .iter()
            .any(|r| r.key == Key::Int(4) && r.is_delete()));
    }

    #[test]
    fn update_of_own_insert_logs_a_full_image() {
        use crate::logging::test_support::MemorySink;
        let t = table("t");
        let (epoch, gen) = env();
        let sink = MemorySink::wanting_deltas();
        let mut p = OccTxn::new(ContainerId(0));
        p.insert(&t, Tuple::of([Value::Int(200), Value::Int(1)]))
            .unwrap();
        p.update(&t, Tuple::of([Value::Int(200), Value::Int(2)]))
            .unwrap();
        Coordinator::commit_logged(&mut [p], &epoch, &gen, Some(&sink)).unwrap();
        let batches = sink.batches.lock().unwrap();
        let record = &batches[0].1[0];
        assert!(
            matches!(record.payload, RedoPayload::Full(_)),
            "an insert updated in the same transaction has no committed base"
        );
    }

    #[test]
    fn aborted_and_read_only_commits_log_nothing() {
        use crate::logging::test_support::MemorySink;
        let t = table("t");
        let (epoch, gen) = env();
        let sink = MemorySink::default();

        // Read-only: no write set, nothing to log.
        let mut ro = OccTxn::new(ContainerId(0));
        ro.read(&t, &Key::Int(1)).unwrap();
        Coordinator::commit_logged(&mut [ro], &epoch, &gen, Some(&sink)).unwrap();
        assert!(sink.batches.lock().unwrap().is_empty());

        // Aborted: validation fails before the durability hook runs.
        let mut stale = OccTxn::new(ContainerId(0));
        stale.read(&t, &Key::Int(3)).unwrap();
        let mut other = OccTxn::new(ContainerId(0));
        other
            .update(&t, Tuple::of([Value::Int(3), Value::Int(9)]))
            .unwrap();
        Coordinator::commit(&mut [other], &epoch, &gen).unwrap();
        stale
            .update(&t, Tuple::of([Value::Int(4), Value::Int(4)]))
            .unwrap();
        let err = Coordinator::commit_logged(&mut [stale], &epoch, &gen, Some(&sink)).unwrap_err();
        assert_eq!(err, TxnError::ValidationFailed);
        assert!(
            sink.batches.lock().unwrap().is_empty(),
            "aborts must not reach the log"
        );
    }

    #[test]
    fn insert_into_scanned_range_is_a_phantom() {
        let t = table("t"); // keys 0..10
        let (epoch, gen) = env();
        // Scanner reads [0, 100] — rows 0..10 plus the empty tail of the
        // range — and records the traversed node versions.
        let mut scanner = OccTxn::new(ContainerId(0));
        let rows = scanner
            .scan_range(
                &t,
                Bound::Included(&Key::Int(0)),
                Bound::Included(&Key::Int(100)),
            )
            .unwrap();
        assert_eq!(rows.len(), 10);
        assert!(scanner.node_set_len() >= 1);

        // A concurrent transaction commits an insert of key 42 — inside the
        // scanned range, in its previously-empty part.
        let mut inserter = OccTxn::new(ContainerId(0));
        inserter
            .insert(&t, Tuple::of([Value::Int(42), Value::Int(0)]))
            .unwrap();
        Coordinator::commit(&mut [inserter], &epoch, &gen).unwrap();

        let err = Coordinator::commit(&mut [scanner], &epoch, &gen).unwrap_err();
        assert_eq!(err, TxnError::Phantom, "scanned-range insert is a phantom");
        assert!(err.is_phantom() && err.is_cc_abort());
    }

    #[test]
    fn non_overlapping_insert_does_not_abort_a_scanner() {
        let t = table("t");
        // Push the table past several splits so distinct ranges live on
        // distinct nodes.
        for i in 10..400i64 {
            t.load_row(Tuple::of([Value::Int(i), Value::Int(0)]))
                .unwrap();
        }
        let (epoch, gen) = env();
        let mut scanner = OccTxn::new(ContainerId(0));
        scanner
            .scan_range(
                &t,
                Bound::Included(&Key::Int(0)),
                Bound::Included(&Key::Int(50)),
            )
            .unwrap();
        // Concurrent insert far outside the scanned range.
        let mut inserter = OccTxn::new(ContainerId(0));
        inserter
            .insert(&t, Tuple::of([Value::Int(10_000), Value::Int(0)]))
            .unwrap();
        Coordinator::commit(&mut [inserter], &epoch, &gen).unwrap();
        // The scanner still commits: the insert hit a different node.
        Coordinator::commit(&mut [scanner], &epoch, &gen).unwrap();
    }

    #[test]
    fn own_insert_into_scanned_range_does_not_self_abort() {
        let t = table("t");
        let (epoch, gen) = env();
        // Scan-then-insert within one transaction: the classic
        // next-free-key pattern must not phantom-abort itself.
        let mut p = OccTxn::new(ContainerId(0));
        let rows = p.scan(&t).unwrap();
        let next = rows.len() as i64;
        p.insert(&t, Tuple::of([Value::Int(next), Value::Int(0)]))
            .unwrap();
        Coordinator::commit(&mut [p], &epoch, &gen).unwrap();
        assert!(t.get(&Key::Int(next)).unwrap().is_visible());
    }

    #[test]
    fn absent_point_read_is_phantom_protected() {
        let t = table("t");
        let (epoch, gen) = env();
        // Reader observes that key 77 does not exist, then writes elsewhere.
        let mut reader = OccTxn::new(ContainerId(0));
        assert!(reader.read(&t, &Key::Int(77)).unwrap().is_none());
        reader
            .update(&t, Tuple::of([Value::Int(1), Value::Int(9)]))
            .unwrap();
        // A concurrent insert of exactly that key commits first.
        let mut inserter = OccTxn::new(ContainerId(0));
        inserter
            .insert(&t, Tuple::of([Value::Int(77), Value::Int(1)]))
            .unwrap();
        Coordinator::commit(&mut [inserter], &epoch, &gen).unwrap();
        let err = Coordinator::commit(&mut [reader], &epoch, &gen).unwrap_err();
        assert!(err.is_phantom(), "read-of-absence must be repeatable");
    }

    #[test]
    fn delete_shrinking_a_scanned_range_aborts_the_scanner() {
        let t = table("t");
        let (epoch, gen) = env();
        let mut scanner = OccTxn::new(ContainerId(0));
        let rows = scanner.scan(&t).unwrap();
        assert_eq!(rows.len(), 10);
        let mut deleter = OccTxn::new(ContainerId(0));
        deleter.delete(&t, &Key::Int(5)).unwrap();
        Coordinator::commit(&mut [deleter], &epoch, &gen).unwrap();
        // The scanned row's version changed (read set) and the membership
        // fence bumped the node; either way the scanner must abort.
        let err = Coordinator::commit(&mut [scanner], &epoch, &gen).unwrap_err();
        assert!(err.is_cc_abort());
    }

    #[test]
    fn secondary_membership_change_aborts_concurrent_lookup() {
        let schema = Schema::of(
            &[
                ("id", ColumnType::Int),
                ("grp", ColumnType::Int),
                ("v", ColumnType::Int),
            ],
            &["id"],
        );
        let t = Arc::new(Table::with_indexes("t", schema, &[vec!["grp".to_owned()]]));
        for i in 0..10i64 {
            t.load_row(Tuple::of([Value::Int(i), Value::Int(i % 2), Value::Int(0)]))
                .unwrap();
        }
        let (epoch, gen) = env();
        // Lookup of group 0, then a concurrent commit moves a row from
        // group 1 into group 0 — changing the membership the lookup
        // depends on without touching any row the lookup read.
        let mut looker = OccTxn::new(ContainerId(0));
        let hits = looker.secondary_lookup(&t, 0, &Key::Int(0)).unwrap();
        assert_eq!(hits.len(), 5);
        looker
            .update(&t, Tuple::of([Value::Int(0), Value::Int(0), Value::Int(7)]))
            .unwrap();

        let mut mover = OccTxn::new(ContainerId(0));
        mover
            .update(&t, Tuple::of([Value::Int(1), Value::Int(0), Value::Int(0)]))
            .unwrap();
        Coordinator::commit(&mut [mover], &epoch, &gen).unwrap();

        let err = Coordinator::commit(&mut [looker], &epoch, &gen).unwrap_err();
        assert!(err.is_phantom(), "index-key membership change is a phantom");

        // A retry sees the new membership and succeeds.
        let mut retry = OccTxn::new(ContainerId(0));
        let hits = retry.secondary_lookup(&t, 0, &Key::Int(0)).unwrap();
        assert_eq!(hits.len(), 6);
        retry
            .update(&t, Tuple::of([Value::Int(0), Value::Int(0), Value::Int(7)]))
            .unwrap();
        Coordinator::commit(&mut [retry], &epoch, &gen).unwrap();
    }

    #[test]
    fn aborted_commit_rolls_back_provisional_index_additions() {
        let schema = Schema::of(
            &[
                ("id", ColumnType::Int),
                ("grp", ColumnType::Int),
                ("v", ColumnType::Int),
            ],
            &["id"],
        );
        let t = Arc::new(Table::with_indexes("t", schema, &[vec!["grp".to_owned()]]));
        for i in 0..4i64 {
            t.load_row(Tuple::of([Value::Int(i), Value::Int(0), Value::Int(0)]))
                .unwrap();
        }
        let (epoch, gen) = env();
        // A transaction that will fail validation: it reads row 2, a
        // concurrent commit changes it, and it tries to move row 1 into
        // group 5 — whose provisional index entry must not survive.
        let mut doomed = OccTxn::new(ContainerId(0));
        doomed.read(&t, &Key::Int(2)).unwrap();
        doomed
            .update(&t, Tuple::of([Value::Int(1), Value::Int(5), Value::Int(0)]))
            .unwrap();
        let mut other = OccTxn::new(ContainerId(0));
        other
            .update(&t, Tuple::of([Value::Int(2), Value::Int(0), Value::Int(7)]))
            .unwrap();
        Coordinator::commit(&mut [other], &epoch, &gen).unwrap();

        let err = Coordinator::commit(&mut [doomed], &epoch, &gen).unwrap_err();
        assert!(err.is_cc_abort());
        assert!(
            t.secondary_lookup(0, &Key::Int(5)).is_empty(),
            "the aborted move's provisional index entry was rolled back"
        );
        assert_eq!(
            t.secondary_lookup(0, &Key::Int(0)).len(),
            4,
            "the old membership is intact"
        );
        // Row 1's record is unlocked and unchanged.
        assert_eq!(
            t.get(&Key::Int(1)).unwrap().read_unguarded().at(1),
            &Value::Int(0)
        );
    }

    #[test]
    fn two_phase_commit_validates_node_sets_of_every_participant() {
        let t0 = table("t0");
        let t1 = table("t1");
        let (epoch, gen) = env();
        // A root transaction scans t1 through participant 1 and writes t0
        // through participant 0; a concurrent insert into t1's scanned
        // range must abort the whole distributed commit.
        let mut p0 = OccTxn::new(ContainerId(0));
        let mut p1 = OccTxn::new(ContainerId(1));
        p0.update(&t0, Tuple::of([Value::Int(1), Value::Int(1)]))
            .unwrap();
        p1.scan(&t1).unwrap();

        let mut other = OccTxn::new(ContainerId(1));
        other
            .insert(&t1, Tuple::of([Value::Int(500), Value::Int(0)]))
            .unwrap();
        Coordinator::commit(&mut [other], &epoch, &gen).unwrap();

        let err = Coordinator::commit(&mut [p0, p1], &epoch, &gen).unwrap_err();
        assert!(err.is_phantom());
        // The write participant's buffered update was not installed.
        assert_eq!(
            t0.get(&Key::Int(1)).unwrap().read_unguarded().at(1),
            &Value::Int(0)
        );
    }

    #[test]
    fn commit_observed_laps_every_commit_phase() {
        use reactdb_common::TracingConfig;
        use reactdb_obs::Metrics;
        let t = table("t");
        let (epoch, gen) = env();
        let metrics = Metrics::new(1, &TracingConfig::default());

        let mut p = OccTxn::new(ContainerId(0));
        p.update(&t, Tuple::of([Value::Int(1), Value::Int(5)]))
            .unwrap();
        let mut probe = metrics.commit_probe(0).unwrap();
        Coordinator::commit_observed(&mut [p], &epoch, &gen, None, Some(&mut probe)).unwrap();
        for phase in Phase::COMMIT {
            assert_eq!(
                metrics.phase_count(phase),
                1,
                "{} not recorded",
                phase.name()
            );
        }
        assert_eq!(probe.phase_durs().len(), 5);

        // An aborting commit records only lock/fence/validate laps.
        let mut stale = OccTxn::new(ContainerId(0));
        stale.read(&t, &Key::Int(3)).unwrap();
        let mut other = OccTxn::new(ContainerId(0));
        other
            .update(&t, Tuple::of([Value::Int(3), Value::Int(9)]))
            .unwrap();
        Coordinator::commit(&mut [other], &epoch, &gen).unwrap();
        stale
            .update(&t, Tuple::of([Value::Int(4), Value::Int(4)]))
            .unwrap();
        let mut probe = metrics.commit_probe(0).unwrap();
        Coordinator::commit_observed(&mut [stale], &epoch, &gen, None, Some(&mut probe))
            .unwrap_err();
        assert_eq!(metrics.phase_count(Phase::Validate), 2);
        assert_eq!(metrics.phase_count(Phase::Write), 1, "abort stops laps");
        assert_eq!(metrics.phase_count(Phase::Log), 1);
    }

    #[test]
    fn concurrent_counter_increments_do_not_lose_updates() {
        use std::thread;
        let t = table("t");
        let epoch = Arc::new(EpochManager::new());
        let total_committed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                let epoch = Arc::clone(&epoch);
                let total_committed = Arc::clone(&total_committed);
                thread::spawn(move || {
                    let gen = TidGen::new();
                    let mut commits = 0u64;
                    while commits < 100 {
                        let mut p = OccTxn::new(ContainerId(0));
                        let row = p.read_expected(&t, &Key::Int(0)).unwrap();
                        let v = row.at(1).as_int();
                        p.update(&t, Tuple::of([Value::Int(0), Value::Int(v + 1)]))
                            .unwrap();
                        if Coordinator::commit(&mut [p], &epoch, &gen).is_ok() {
                            commits += 1;
                        }
                    }
                    total_committed.fetch_add(commits, std::sync::atomic::Ordering::Relaxed);
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let final_v = t.get(&Key::Int(0)).unwrap().read_unguarded().at(1).as_int();
        assert_eq!(
            final_v as u64,
            total_committed.load(std::sync::atomic::Ordering::Relaxed)
        );
        assert_eq!(final_v, 400);
    }
}
