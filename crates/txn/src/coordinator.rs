//! Commit of transactions: Silo validation locally, two-phase commit across
//! containers.
//!
//! A root transaction accumulates one [`OccTxn`] participant per container
//! it touched (directly or through nested sub-transactions, §3.2.2). The
//! [`Coordinator`] commits the set of participants:
//!
//! 1. **Lock phase** — all write-set records of all participants are locked
//!    in a single global deterministic order (by record address), which
//!    makes the protocol deadlock-free. With more than one participant this
//!    is the "prepare" phase of 2PC: a participant whose locks or
//!    validation fail votes no.
//! 2. **Validation phase** — every read-set entry is checked: the record
//!    must still carry the observed version and must not be locked by
//!    another transaction.
//! 3. **Write phase** — a commit TID is generated (greater than every
//!    observed version, the executor's previous TID, and within the current
//!    epoch) and all buffered writes are installed; secondary indexes are
//!    maintained. If any vote was no, all locks are released and the
//!    transaction aborts everywhere — sub-transactions never commit
//!    partially (§2.2.3).

use std::collections::HashSet;
use std::sync::Arc;

use reactdb_common::{Result, TxnError};
use reactdb_storage::TidWord;

use crate::epoch::EpochManager;
use crate::logging::{LogSink, RedoRecord};
use crate::occ::{OccTxn, WriteKind};
use crate::tidgen::TidGen;

/// Outcome of a commit attempt, used by the engine for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The transaction committed with the given TID.
    Committed(TidWord),
    /// Validation failed (or a participant voted no) and the transaction
    /// was rolled back everywhere.
    Aborted,
}

impl CommitOutcome {
    /// True if the outcome is a commit.
    pub fn is_committed(&self) -> bool {
        matches!(self, CommitOutcome::Committed(_))
    }
}

/// Stateless commit coordinator (all state lives in the participants).
#[derive(Debug, Default, Clone, Copy)]
pub struct Coordinator;

impl Coordinator {
    /// Attempts to commit the given participants atomically.
    ///
    /// Returns the commit TID on success. On failure every lock is released,
    /// no write is installed anywhere and [`TxnError::ValidationFailed`] is
    /// returned (the caller maps this to an abort of the root transaction).
    ///
    /// The epoch embedded in the returned TID is the transaction's
    /// durability fence: the engine threads it into the client's
    /// transaction handle, whose `wait_durable` acknowledgement blocks until
    /// the WAL's durable epoch covers it (the group commit for that epoch
    /// completed). `wait`-style acknowledgement at validation time remains
    /// available and precedes durability by at most one epoch.
    pub fn commit(
        participants: &mut [OccTxn],
        epoch: &EpochManager,
        tidgen: &TidGen,
    ) -> Result<TidWord> {
        Self::commit_logged(participants, epoch, tidgen, None)
    }

    /// Like [`Coordinator::commit`], but additionally renders the validated
    /// write set of every participant as [`RedoRecord`]s and hands the batch
    /// to `sink` once the writes are installed. Transactions spanning
    /// several containers (2PC) log the records of every participating
    /// container in the same batch, so recovery can never observe a
    /// partially persisted distributed transaction.
    pub fn commit_logged(
        participants: &mut [OccTxn],
        epoch: &EpochManager,
        tidgen: &TidGen,
        sink: Option<&dyn LogSink>,
    ) -> Result<TidWord> {
        // ---- Phase 1: lock the union of the write sets in address order.
        let mut write_refs: Vec<(usize, usize)> = Vec::new(); // (participant, write idx)
        for (pi, p) in participants.iter().enumerate() {
            for wi in 0..p.writes().len() {
                write_refs.push((pi, wi));
            }
        }
        write_refs
            .sort_by_key(|(pi, wi)| Arc::as_ptr(&participants[*pi].writes()[*wi].record) as usize);

        let mut locked: Vec<(usize, usize)> = Vec::with_capacity(write_refs.len());
        let mut own_write_records: HashSet<usize> = HashSet::with_capacity(write_refs.len());
        let mut max_observed = TidWord::committed(0, 0);

        for (pi, wi) in &write_refs {
            let record = &participants[*pi].writes()[*wi].record;
            record.lock();
            locked.push((*pi, *wi));
            own_write_records.insert(Arc::as_ptr(record) as usize);
            let tid = record.tid();
            if tid.version() > max_observed.version() {
                max_observed = tid.unlocked();
            }
        }

        // ---- Serialization point: read the epoch after acquiring locks.
        let current_epoch = epoch.current();

        // ---- Phase 2: validate the read sets of every participant.
        let mut valid = true;
        'validation: for p in participants.iter() {
            if p.max_observed().version() > max_observed.version() {
                max_observed = p.max_observed();
            }
            for r in p.reads() {
                let now = r.record.tid();
                if now.version() != r.observed.version() {
                    valid = false;
                    break 'validation;
                }
                if now.is_locked()
                    && !own_write_records.contains(&(Arc::as_ptr(&r.record) as usize))
                {
                    valid = false;
                    break 'validation;
                }
            }
        }

        if !valid {
            // Vote no: release every lock without touching versions.
            for (pi, wi) in &locked {
                participants[*pi].writes()[*wi].record.unlock();
            }
            return Err(TxnError::ValidationFailed);
        }

        // ---- Phase 3: generate the commit TID and install the writes.
        let commit_tid = tidgen.next(current_epoch, max_observed);
        for (pi, wi) in &locked {
            let w = &participants[*pi].writes()[*wi];
            match &w.kind {
                WriteKind::Insert(row) => {
                    w.record.install(row.clone(), commit_tid);
                    w.table.index_insert(&w.key, row);
                }
                WriteKind::Update(row) => {
                    w.record.install(row.clone(), commit_tid);
                    if let Some(before) = &w.before {
                        w.table.index_update(&w.key, before, row);
                    } else {
                        w.table.index_insert(&w.key, row);
                    }
                }
                WriteKind::Delete => {
                    w.record.install_delete(commit_tid);
                    if let Some(before) = &w.before {
                        w.table.index_remove(&w.key, before);
                    }
                }
            }
        }

        // ---- Durability hook: emit the redo batch for the whole commit.
        if let Some(sink) = sink {
            let mut records = Vec::with_capacity(locked.len());
            for (pi, wi) in &locked {
                let p = &participants[*pi];
                let w = &p.writes()[*wi];
                records.push(RedoRecord {
                    container: p.container(),
                    reactor: w.table.owner(),
                    relation: w.table.name().to_owned(),
                    key: w.key.clone(),
                    image: match &w.kind {
                        WriteKind::Insert(row) | WriteKind::Update(row) => Some(row.clone()),
                        WriteKind::Delete => None,
                    },
                });
            }
            if !records.is_empty() {
                sink.log_commit(commit_tid, &records);
            }
        }
        Ok(commit_tid)
    }

    /// Rolls back the participants without attempting to commit: nothing was
    /// installed (writes are buffered), so this is a no-op provided for
    /// symmetry and future durability hooks.
    pub fn abort(_participants: &mut [OccTxn]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_common::{ContainerId, Key, Value};
    use reactdb_storage::{ColumnType, Schema, Table, Tuple};

    fn table(name: &str) -> Arc<Table> {
        let schema = Schema::of(&[("id", ColumnType::Int), ("v", ColumnType::Int)], &["id"]);
        let t = Arc::new(Table::new(name, schema));
        for i in 0..10i64 {
            t.load_row(Tuple::of([Value::Int(i), Value::Int(0)]))
                .unwrap();
        }
        t
    }

    fn env() -> (EpochManager, TidGen) {
        (EpochManager::new(), TidGen::new())
    }

    #[test]
    fn single_participant_commit_installs_writes() {
        let t = table("t");
        let (epoch, gen) = env();
        let mut p = OccTxn::new(ContainerId(0));
        p.update(&t, Tuple::of([Value::Int(1), Value::Int(42)]))
            .unwrap();
        p.insert(&t, Tuple::of([Value::Int(100), Value::Int(7)]))
            .unwrap();
        p.delete(&t, &Key::Int(2)).unwrap();
        let tid = Coordinator::commit(&mut [p], &epoch, &gen).unwrap();
        assert_eq!(tid.epoch(), 1);
        assert_eq!(
            t.get(&Key::Int(1)).unwrap().read_unguarded().at(1),
            &Value::Int(42)
        );
        assert!(t.get(&Key::Int(100)).unwrap().is_visible());
        assert!(!t.get(&Key::Int(2)).unwrap().is_visible());
        assert_eq!(t.visible_len(), 10); // 10 - 1 deleted + 1 inserted
    }

    #[test]
    fn stale_read_aborts() {
        let t = table("t");
        let (epoch, gen) = env();
        let mut p1 = OccTxn::new(ContainerId(0));
        p1.read(&t, &Key::Int(1)).unwrap();

        // A concurrent transaction commits an update to the same record.
        let mut p2 = OccTxn::new(ContainerId(0));
        p2.update(&t, Tuple::of([Value::Int(1), Value::Int(5)]))
            .unwrap();
        Coordinator::commit(&mut [p2], &epoch, &gen).unwrap();

        // p1 now writes something else but must fail validation on its read.
        p1.update(&t, Tuple::of([Value::Int(3), Value::Int(9)]))
            .unwrap();
        let err = Coordinator::commit(&mut [p1], &epoch, &gen).unwrap_err();
        assert_eq!(err, TxnError::ValidationFailed);
        // The failed transaction's write was not installed.
        assert_eq!(
            t.get(&Key::Int(3)).unwrap().read_unguarded().at(1),
            &Value::Int(0)
        );
    }

    #[test]
    fn read_own_write_record_does_not_self_conflict() {
        let t = table("t");
        let (epoch, gen) = env();
        let mut p = OccTxn::new(ContainerId(0));
        // Read and then update the same record: the record will be locked by
        // ourselves during validation and must not trigger an abort.
        p.read(&t, &Key::Int(4)).unwrap();
        p.update(&t, Tuple::of([Value::Int(4), Value::Int(44)]))
            .unwrap();
        Coordinator::commit(&mut [p], &epoch, &gen).unwrap();
        assert_eq!(
            t.get(&Key::Int(4)).unwrap().read_unguarded().at(1),
            &Value::Int(44)
        );
    }

    #[test]
    fn multi_participant_commit_is_atomic() {
        let t0 = table("t0");
        let t1 = table("t1");
        let (epoch, gen) = env();
        let mut p0 = OccTxn::new(ContainerId(0));
        let mut p1 = OccTxn::new(ContainerId(1));
        p0.update(&t0, Tuple::of([Value::Int(1), Value::Int(111)]))
            .unwrap();
        p1.update(&t1, Tuple::of([Value::Int(1), Value::Int(222)]))
            .unwrap();
        let tid = Coordinator::commit(&mut [p0, p1], &epoch, &gen).unwrap();
        assert_eq!(t0.get(&Key::Int(1)).unwrap().tid().version(), tid.version());
        assert_eq!(t1.get(&Key::Int(1)).unwrap().tid().version(), tid.version());
    }

    #[test]
    fn multi_participant_abort_rolls_back_everywhere() {
        let t0 = table("t0");
        let t1 = table("t1");
        let (epoch, gen) = env();

        // p reads from t1, then a concurrent commit invalidates that read.
        let mut p0 = OccTxn::new(ContainerId(0));
        let mut p1 = OccTxn::new(ContainerId(1));
        p0.update(&t0, Tuple::of([Value::Int(5), Value::Int(50)]))
            .unwrap();
        p1.read(&t1, &Key::Int(5)).unwrap();

        let mut other = OccTxn::new(ContainerId(1));
        other
            .update(&t1, Tuple::of([Value::Int(5), Value::Int(99)]))
            .unwrap();
        Coordinator::commit(&mut [other], &epoch, &gen).unwrap();

        let err = Coordinator::commit(&mut [p0, p1], &epoch, &gen).unwrap_err();
        assert_eq!(err, TxnError::ValidationFailed);
        // Neither container saw the aborted transaction's write.
        assert_eq!(
            t0.get(&Key::Int(5)).unwrap().read_unguarded().at(1),
            &Value::Int(0)
        );
        assert_eq!(
            t1.get(&Key::Int(5)).unwrap().read_unguarded().at(1),
            &Value::Int(99)
        );
        // Locks were released: a later transaction can commit.
        let mut retry = OccTxn::new(ContainerId(0));
        retry
            .update(&t0, Tuple::of([Value::Int(5), Value::Int(51)]))
            .unwrap();
        Coordinator::commit(&mut [retry], &epoch, &gen).unwrap();
    }

    #[test]
    fn read_only_transaction_commits_without_installing() {
        let t = table("t");
        let (epoch, gen) = env();
        let before = t.get(&Key::Int(1)).unwrap().tid();
        let mut p = OccTxn::new(ContainerId(0));
        p.read(&t, &Key::Int(1)).unwrap();
        p.scan(&t).unwrap();
        Coordinator::commit(&mut [p], &epoch, &gen).unwrap();
        assert_eq!(t.get(&Key::Int(1)).unwrap().tid(), before);
    }

    #[test]
    fn commit_tid_exceeds_all_observed_versions() {
        let t = table("t");
        let (epoch, gen) = env();
        // Raise one record to a large version.
        let rec = t.get(&Key::Int(7)).unwrap();
        rec.lock();
        rec.install(
            Tuple::of([Value::Int(7), Value::Int(7)]),
            TidWord::committed(1, 400),
        );

        let mut p = OccTxn::new(ContainerId(0));
        p.read(&t, &Key::Int(7)).unwrap();
        p.update(&t, Tuple::of([Value::Int(1), Value::Int(1)]))
            .unwrap();
        let tid = Coordinator::commit(&mut [p], &epoch, &gen).unwrap();
        assert!(tid.version() > TidWord::committed(1, 400).version());
    }

    #[test]
    fn multi_participant_commit_logs_every_container_atomically() {
        use crate::logging::test_support::MemorySink;
        let t0 = table("t0");
        let t1 = table("t1");
        let (epoch, gen) = env();
        let sink = MemorySink::default();
        let mut p0 = OccTxn::new(ContainerId(0));
        let mut p1 = OccTxn::new(ContainerId(1));
        p0.update(&t0, Tuple::of([Value::Int(1), Value::Int(11)]))
            .unwrap();
        p0.delete(&t0, &Key::Int(2)).unwrap();
        p1.insert(&t1, Tuple::of([Value::Int(100), Value::Int(22)]))
            .unwrap();
        let tid = Coordinator::commit_logged(&mut [p0, p1], &epoch, &gen, Some(&sink)).unwrap();

        let batches = sink.batches.lock().unwrap();
        assert_eq!(batches.len(), 1, "one batch per commit");
        let (logged_tid, records) = &batches[0];
        assert_eq!(*logged_tid, tid);
        assert_eq!(records.len(), 3);
        let containers: std::collections::HashSet<_> =
            records.iter().map(|r| r.container).collect();
        assert!(containers.contains(&ContainerId(0)) && containers.contains(&ContainerId(1)));
        let delete = records.iter().find(|r| r.key == Key::Int(2)).unwrap();
        assert!(delete.image.is_none(), "deletes log a tombstone");
        let update = records.iter().find(|r| r.key == Key::Int(1)).unwrap();
        assert_eq!(update.image.as_ref().unwrap().at(1), &Value::Int(11));
    }

    #[test]
    fn aborted_and_read_only_commits_log_nothing() {
        use crate::logging::test_support::MemorySink;
        let t = table("t");
        let (epoch, gen) = env();
        let sink = MemorySink::default();

        // Read-only: no write set, nothing to log.
        let mut ro = OccTxn::new(ContainerId(0));
        ro.read(&t, &Key::Int(1)).unwrap();
        Coordinator::commit_logged(&mut [ro], &epoch, &gen, Some(&sink)).unwrap();
        assert!(sink.batches.lock().unwrap().is_empty());

        // Aborted: validation fails before the durability hook runs.
        let mut stale = OccTxn::new(ContainerId(0));
        stale.read(&t, &Key::Int(3)).unwrap();
        let mut other = OccTxn::new(ContainerId(0));
        other
            .update(&t, Tuple::of([Value::Int(3), Value::Int(9)]))
            .unwrap();
        Coordinator::commit(&mut [other], &epoch, &gen).unwrap();
        stale
            .update(&t, Tuple::of([Value::Int(4), Value::Int(4)]))
            .unwrap();
        let err = Coordinator::commit_logged(&mut [stale], &epoch, &gen, Some(&sink)).unwrap_err();
        assert_eq!(err, TxnError::ValidationFailed);
        assert!(
            sink.batches.lock().unwrap().is_empty(),
            "aborts must not reach the log"
        );
    }

    #[test]
    fn concurrent_counter_increments_do_not_lose_updates() {
        use std::thread;
        let t = table("t");
        let epoch = Arc::new(EpochManager::new());
        let total_committed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                let epoch = Arc::clone(&epoch);
                let total_committed = Arc::clone(&total_committed);
                thread::spawn(move || {
                    let gen = TidGen::new();
                    let mut commits = 0u64;
                    while commits < 100 {
                        let mut p = OccTxn::new(ContainerId(0));
                        let row = p.read_expected(&t, &Key::Int(0)).unwrap();
                        let v = row.at(1).as_int();
                        p.update(&t, Tuple::of([Value::Int(0), Value::Int(v + 1)]))
                            .unwrap();
                        if Coordinator::commit(&mut [p], &epoch, &gen).is_ok() {
                            commits += 1;
                        }
                    }
                    total_committed.fetch_add(commits, std::sync::atomic::Ordering::Relaxed);
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let final_v = t.get(&Key::Int(0)).unwrap().read_unguarded().at(1).as_int();
        assert_eq!(
            final_v as u64,
            total_committed.load(std::sync::atomic::Ordering::Relaxed)
        );
        assert_eq!(final_v, 400);
    }
}
