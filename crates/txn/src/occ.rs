//! Per-container transaction participant state (Silo-style OCC).
//!
//! An [`OccTxn`] tracks everything a (sub-)transaction did inside one
//! container: the record versions it read (read set), the writes it
//! buffered (write set), and the index-node versions its scans traversed
//! (node set — the Masstree/Silo device that makes range scans
//! phantom-safe). The reactor execution context performs all its relational
//! operations through this type, so that serializability follows from the
//! Silo validation protocol run at commit (see [`crate::coordinator`]):
//! read-set validation catches changes to rows that were read, node-set
//! validation catches changes to the *membership* of ranges that were
//! scanned and keys whose absence was observed.

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

use reactdb_common::{ContainerId, Key, Result, TxnError};
use reactdb_storage::{NodeBump, NodeObservation, RecordRef, Table, TidWord, Tuple};

/// True when `key` falls within owned `bounds`.
fn bounds_contain(bounds: &(Bound<Key>, Bound<Key>), key: &Key) -> bool {
    use std::ops::RangeBounds;
    (bounds.0.as_ref(), bounds.1.as_ref()).contains(key)
}

/// The kind of buffered write.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteKind {
    /// Insert of a new row (the slot was absent when the transaction wrote).
    Insert(Tuple),
    /// Update of an existing row to a new image.
    Update(Tuple),
    /// Deletion of an existing row.
    Delete,
}

/// One entry of the read set: the record handle and the version observed.
#[derive(Debug, Clone)]
pub(crate) struct ReadEntry {
    pub record: RecordRef,
    pub observed: TidWord,
}

/// One entry of the write set.
#[derive(Debug, Clone)]
pub(crate) struct WriteEntry {
    pub table: Arc<Table>,
    pub key: Key,
    pub record: RecordRef,
    /// Image of the row before this transaction (None when inserting into a
    /// previously absent slot); needed for secondary-index maintenance.
    pub before: Option<Tuple>,
    /// Version carrying `before` when it was captured. Read validation pins
    /// it (the record must still hold this version at commit), which is
    /// what makes it a sound base for delta redo records.
    pub before_tid: TidWord,
    pub kind: WriteKind,
}

/// The participant state of a transaction within one container.
#[derive(Debug)]
pub struct OccTxn {
    container: ContainerId,
    reads: Vec<ReadEntry>,
    read_index: HashMap<usize, usize>,
    writes: Vec<WriteEntry>,
    /// The node set: index-node versions observed by scans and absent point
    /// reads, re-checked by commit validation (phantom protection).
    nodes: Vec<NodeObservation>,
    node_index: HashMap<usize, usize>,
    /// Largest committed version observed by any read or overwritten record.
    max_observed: TidWord,
    /// Count of record-level operations, used by the engine's profiler to
    /// attribute processing cost.
    ops: u64,
    /// Count of scan operations (range scans, full scans, secondary
    /// lookups/ranges), surfaced in engine statistics.
    scans: u64,
}

impl OccTxn {
    /// Creates an empty participant for `container`.
    pub fn new(container: ContainerId) -> Self {
        Self {
            container,
            reads: Vec::new(),
            read_index: HashMap::new(),
            writes: Vec::new(),
            nodes: Vec::new(),
            node_index: HashMap::new(),
            max_observed: TidWord::committed(0, 0),
            ops: 0,
            scans: 0,
        }
    }

    /// Container this participant belongs to.
    pub fn container(&self) -> ContainerId {
        self.container
    }

    /// Number of entries in the read set.
    pub fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of entries in the write set.
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Number of distinct index nodes in the node set.
    pub fn node_set_len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of record operations performed so far.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Number of scan operations (range/full scans, secondary lookups)
    /// performed so far.
    pub fn scan_count(&self) -> u64 {
        self.scans
    }

    /// Largest committed record version this participant observed.
    pub fn max_observed(&self) -> TidWord {
        self.max_observed
    }

    fn record_ptr(record: &RecordRef) -> usize {
        Arc::as_ptr(record) as usize
    }

    fn track_read(&mut self, record: &RecordRef, observed: TidWord) {
        if observed.version() > self.max_observed.version() {
            self.max_observed = observed;
        }
        let ptr = Self::record_ptr(record);
        if self.read_index.contains_key(&ptr) {
            return;
        }
        self.read_index.insert(ptr, self.reads.len());
        self.reads.push(ReadEntry {
            record: Arc::clone(record),
            observed,
        });
    }

    /// Records a node observation in the node set. The **first** observation
    /// of a node wins: if a later traversal sees a different version, the
    /// two traversals are mutually inconsistent and validation must fail,
    /// which keeping the older version guarantees.
    fn track_node(&mut self, obs: NodeObservation) {
        let ptr = obs.node_ptr();
        if self.node_index.contains_key(&ptr) {
            return;
        }
        self.node_index.insert(ptr, self.nodes.len());
        self.nodes.push(obs);
    }

    /// Refreshes the node set after a structural change made *by this
    /// transaction itself* (Silo's rule: an insert must not phantom-abort
    /// its own earlier scans). The recorded version advances only when it
    /// matches the pre-bump version — if it does not, a concurrent
    /// structural change interleaved and validation must decide.
    pub(crate) fn refresh_node(&mut self, bump: &NodeBump) {
        let ptr = Arc::as_ptr(&bump.node) as usize;
        if let Some(&i) = self.node_index.get(&ptr) {
            if self.nodes[i].version == bump.before {
                self.nodes[i].version = bump.after;
            }
        }
    }

    fn find_write(&self, table: &Arc<Table>, key: &Key) -> Option<usize> {
        self.writes
            .iter()
            .position(|w| Arc::ptr_eq(&w.table, table) && &w.key == key)
    }

    /// Transactional point read of `key` in `table`. Returns the row visible
    /// to this transaction (its own writes first, then the committed state),
    /// or `None` if the row does not exist.
    pub fn read(&mut self, table: &Arc<Table>, key: &Key) -> Result<Option<Tuple>> {
        self.ops += 1;
        // Read-your-writes.
        if let Some(idx) = self.find_write(table, key) {
            return Ok(match &self.writes[idx].kind {
                WriteKind::Insert(t) | WriteKind::Update(t) => Some(t.clone()),
                WriteKind::Delete => None,
            });
        }
        match table.get_observed(key) {
            (None, obs) => {
                // The key has no slot: observe its covering index node so a
                // concurrent insert of this key (a point phantom) fails
                // node-set validation.
                self.track_node(obs);
                Ok(None)
            }
            (Some(record), _) => {
                let (tid, data) = record.read_stable();
                self.track_read(&record, tid);
                if tid.is_absent() {
                    Ok(None)
                } else {
                    Ok(Some(data))
                }
            }
        }
    }

    /// Like [`OccTxn::read`] but returns an error if the row is missing.
    pub fn read_expected(&mut self, table: &Arc<Table>, key: &Key) -> Result<Tuple> {
        self.read(table, key)?.ok_or_else(|| TxnError::NotFound {
            relation: table.name().to_owned(),
            key: key.to_string(),
        })
    }

    /// Transactional insert. Fails with [`TxnError::DuplicateKey`] if the row
    /// already exists (either committed or inserted earlier by this
    /// transaction).
    pub fn insert(&mut self, table: &Arc<Table>, row: Tuple) -> Result<()> {
        self.ops += 1;
        table.schema().validate(table.name(), row.values())?;
        let key = row.primary_key(table.schema());
        if let Some(idx) = self.find_write(table, &key) {
            match &self.writes[idx].kind {
                WriteKind::Delete => {
                    // Delete-then-insert within one transaction becomes an
                    // update of the existing slot.
                    let before = self.writes[idx].before.clone();
                    let before_tid = self.writes[idx].before_tid;
                    self.writes[idx] = WriteEntry {
                        table: Arc::clone(table),
                        key,
                        record: Arc::clone(&self.writes[idx].record),
                        before,
                        before_tid,
                        kind: WriteKind::Update(row),
                    };
                    return Ok(());
                }
                _ => {
                    return Err(TxnError::DuplicateKey {
                        relation: table.name().to_owned(),
                        key: key.to_string(),
                    })
                }
            }
        }
        let (record, structural) = table.get_or_create(key.clone(), row.clone());
        if let Some(bump) = &structural {
            // Our own slot creation bumped the covering node; refresh our
            // node set so our earlier scans of the range stay valid.
            self.refresh_node(bump);
        }
        let (tid, before) = record.read_stable();
        self.track_read(&record, tid);
        if !tid.is_absent() {
            return Err(TxnError::DuplicateKey {
                relation: table.name().to_owned(),
                key: key.to_string(),
            });
        }
        let _ = before;
        self.writes.push(WriteEntry {
            table: Arc::clone(table),
            key,
            record,
            before: None,
            before_tid: tid,
            kind: WriteKind::Insert(row),
        });
        Ok(())
    }

    /// Transactional full-row update. Fails with [`TxnError::NotFound`] if
    /// the row does not exist.
    pub fn update(&mut self, table: &Arc<Table>, row: Tuple) -> Result<()> {
        self.ops += 1;
        table.schema().validate(table.name(), row.values())?;
        let key = row.primary_key(table.schema());
        if let Some(idx) = self.find_write(table, &key) {
            match self.writes[idx].kind.clone() {
                WriteKind::Delete => {
                    return Err(TxnError::NotFound {
                        relation: table.name().to_owned(),
                        key: key.to_string(),
                    })
                }
                WriteKind::Insert(_) => {
                    self.writes[idx].kind = WriteKind::Insert(row);
                    return Ok(());
                }
                WriteKind::Update(_) => {
                    self.writes[idx].kind = WriteKind::Update(row);
                    return Ok(());
                }
            }
        }
        let record = table.get(&key).ok_or_else(|| TxnError::NotFound {
            relation: table.name().to_owned(),
            key: key.to_string(),
        })?;
        let (tid, before) = record.read_stable();
        self.track_read(&record, tid);
        if tid.is_absent() {
            return Err(TxnError::NotFound {
                relation: table.name().to_owned(),
                key: key.to_string(),
            });
        }
        self.writes.push(WriteEntry {
            table: Arc::clone(table),
            key,
            record,
            before: Some(before),
            before_tid: tid,
            kind: WriteKind::Update(row),
        });
        Ok(())
    }

    /// Reads a row, applies `f` to it and buffers the modified image as an
    /// update — the common read-modify-write shape of the benchmarks.
    pub fn update_with<F>(&mut self, table: &Arc<Table>, key: &Key, f: F) -> Result<Tuple>
    where
        F: FnOnce(&mut Tuple),
    {
        let mut row = self.read_expected(table, key)?;
        f(&mut row);
        self.update(table, row.clone())?;
        Ok(row)
    }

    /// Transactional delete. Fails with [`TxnError::NotFound`] if the row
    /// does not exist.
    pub fn delete(&mut self, table: &Arc<Table>, key: &Key) -> Result<()> {
        self.ops += 1;
        if let Some(idx) = self.find_write(table, &key.clone()) {
            match self.writes[idx].kind.clone() {
                WriteKind::Delete => {
                    return Err(TxnError::NotFound {
                        relation: table.name().to_owned(),
                        key: key.to_string(),
                    })
                }
                WriteKind::Insert(_) => {
                    // Insert-then-delete cancels out; keep the slot absent.
                    self.writes.remove(idx);
                    return Ok(());
                }
                WriteKind::Update(_) => {
                    self.writes[idx].kind = WriteKind::Delete;
                    return Ok(());
                }
            }
        }
        let record = table.get(key).ok_or_else(|| TxnError::NotFound {
            relation: table.name().to_owned(),
            key: key.to_string(),
        })?;
        let (tid, before) = record.read_stable();
        self.track_read(&record, tid);
        if tid.is_absent() {
            return Err(TxnError::NotFound {
                relation: table.name().to_owned(),
                key: key.to_string(),
            });
        }
        self.writes.push(WriteEntry {
            table: Arc::clone(table),
            key: key.clone(),
            record,
            before: Some(before),
            before_tid: tid,
            kind: WriteKind::Delete,
        });
        Ok(())
    }

    /// Transactional range scan over the primary key. Returns visible rows
    /// (committed rows merged with this transaction's own writes) in key
    /// order. Every committed row touched is added to the read set, and the
    /// index nodes the traversal covered — including empty sub-ranges — are
    /// added to the node set.
    ///
    /// The scan is phantom-safe: a concurrent insert or delete that changes
    /// the membership of the scanned range bumps a traversed node's
    /// version, and commit validation re-checks the node set after write
    /// locks are acquired, aborting with [`TxnError::Phantom`] on mismatch
    /// (the Masstree/Silo node-set protocol; supersedes the seed's
    /// "phantom protection is not implemented" design note).
    pub fn scan_range(
        &mut self,
        table: &Arc<Table>,
        low: Bound<&Key>,
        high: Bound<&Key>,
    ) -> Result<Vec<(Key, Tuple)>> {
        self.ops += 1;
        self.scans += 1;
        let (slots, observations) = table.range_observed(low, high);
        for obs in observations {
            self.track_node(obs);
        }
        let mut out: Vec<(Key, Tuple)> = Vec::new();
        for (key, record) in slots {
            if let Some(idx) = self.find_write(table, &key) {
                match &self.writes[idx].kind {
                    WriteKind::Insert(t) | WriteKind::Update(t) => out.push((key, t.clone())),
                    WriteKind::Delete => {}
                }
                continue;
            }
            let (tid, data) = record.read_stable();
            self.track_read(&record, tid);
            if !tid.is_absent() {
                out.push((key, data));
            }
        }
        // Inserts buffered by this transaction whose slot was created by us
        // are already present in `table.range` (the slot physically exists),
        // so no extra merge step is needed.
        Ok(out)
    }

    /// Full-table scan (range with no bounds).
    pub fn scan(&mut self, table: &Arc<Table>) -> Result<Vec<(Key, Tuple)>> {
        self.scan_range(table, Bound::Unbounded, Bound::Unbounded)
    }

    /// Secondary-index equality lookup: returns the matching visible rows.
    /// The node covering the index key is observed, so a commit that adds
    /// or removes a matching `(index key, primary key)` pair — membership
    /// this lookup's result depends on — fails node-set validation.
    ///
    /// Fetched rows are re-checked against the index key: an index entry
    /// can be provisional (a concurrent commit's fence installed it before
    /// the row image) or superseded by this transaction's own buffered
    /// update, and the row's actual index key decides. Own buffered writes
    /// whose index key matches but which are not yet in the index are
    /// merged in, so read-your-writes holds for index lookups too.
    pub fn secondary_lookup(
        &mut self,
        table: &Arc<Table>,
        index_id: usize,
        index_key: &Key,
    ) -> Result<Vec<(Key, Tuple)>> {
        self.ops += 1;
        self.scans += 1;
        let positions = table.secondary_positions(index_id);
        let (pks, obs) = table.secondary_lookup_observed(index_id, index_key);
        self.track_node(obs);
        let mut out = Vec::new();
        for pk in pks {
            if let Some(row) = self.read(table, &pk)? {
                if row.index_key(&positions).as_ref() == Some(index_key) {
                    out.push((pk, row));
                }
            }
        }
        self.merge_own_index_writes(table, &positions, &mut out, |ik| ik == index_key);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Secondary-index range scan: visible rows whose index key falls in
    /// the bounds, in index order, with the traversed index nodes observed
    /// (same phantom protection and own-write merging as
    /// [`OccTxn::secondary_lookup`]).
    pub fn secondary_scan(
        &mut self,
        table: &Arc<Table>,
        index_id: usize,
        low: Bound<&Key>,
        high: Bound<&Key>,
    ) -> Result<Vec<(Key, Tuple)>> {
        self.ops += 1;
        self.scans += 1;
        let positions = table.secondary_positions(index_id);
        let bounds = (low.cloned(), high.cloned());
        let (pairs, observations) = table.secondary_range_observed(index_id, low, high);
        for obs in observations {
            self.track_node(obs);
        }
        let mut out = Vec::new();
        for (_ik, pk) in pairs {
            if let Some(row) = self.read(table, &pk)? {
                let in_bounds = row
                    .index_key(&positions)
                    .map(|ik| bounds_contain(&bounds, &ik))
                    .unwrap_or(false);
                if in_bounds {
                    out.push((pk, row));
                }
            }
        }
        self.merge_own_index_writes(table, &positions, &mut out, |ik| {
            bounds_contain(&bounds, ik)
        });
        // Order by (index key, primary key), the order of the index itself.
        out.sort_by_cached_key(|(pk, row)| (row.index_key(&positions), pk.clone()));
        Ok(out)
    }

    /// Appends this transaction's buffered inserts/updates on `table`
    /// whose index key (per `positions`) satisfies `matches` and whose
    /// primary key is not already present in `out`. Buffered writes are
    /// not in the secondary index until commit, so index reads must merge
    /// them explicitly.
    fn merge_own_index_writes(
        &self,
        table: &Arc<Table>,
        positions: &[usize],
        out: &mut Vec<(Key, Tuple)>,
        matches: impl Fn(&Key) -> bool,
    ) {
        for w in &self.writes {
            if !Arc::ptr_eq(&w.table, table) {
                continue;
            }
            let row = match &w.kind {
                WriteKind::Insert(row) | WriteKind::Update(row) => row,
                WriteKind::Delete => continue,
            };
            let Some(ik) = row.index_key(positions) else {
                continue;
            };
            if matches(&ik) && !out.iter().any(|(pk, _)| pk == &w.key) {
                out.push((w.key.clone(), row.clone()));
            }
        }
    }

    /// Internal accessors for the commit coordinator.
    pub(crate) fn reads(&self) -> &[ReadEntry] {
        &self.reads
    }

    /// The node set, validated by the commit coordinator.
    pub(crate) fn nodes(&self) -> &[NodeObservation] {
        &self.nodes
    }

    pub(crate) fn writes(&self) -> &[WriteEntry] {
        &self.writes
    }

    /// True if this participant wrote nothing (read-only participants skip
    /// the write phase but still validate their reads).
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_common::Value;
    use reactdb_storage::{ColumnType, Schema};

    fn table() -> Arc<Table> {
        let schema = Schema::of(
            &[("id", ColumnType::Int), ("val", ColumnType::Int)],
            &["id"],
        );
        let t = Arc::new(Table::new("t", schema));
        for i in 0..5i64 {
            t.load_row(Tuple::of([Value::Int(i), Value::Int(i * 10)]))
                .unwrap();
        }
        t
    }

    #[test]
    fn read_tracks_read_set_and_dedupes() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        assert_eq!(
            txn.read(&t, &Key::Int(1)).unwrap().unwrap().at(1),
            &Value::Int(10)
        );
        txn.read(&t, &Key::Int(1)).unwrap();
        txn.read(&t, &Key::Int(2)).unwrap();
        assert_eq!(txn.read_set_len(), 2);
        assert!(txn.read(&t, &Key::Int(77)).unwrap().is_none());
        assert_eq!(txn.op_count(), 4);
    }

    #[test]
    fn read_your_writes() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        txn.update(&t, Tuple::of([Value::Int(1), Value::Int(999)]))
            .unwrap();
        assert_eq!(
            txn.read(&t, &Key::Int(1)).unwrap().unwrap().at(1),
            &Value::Int(999)
        );
        // The committed state is untouched before commit.
        let committed = t.get(&Key::Int(1)).unwrap().read_unguarded();
        assert_eq!(committed.at(1), &Value::Int(10));
    }

    #[test]
    fn insert_duplicate_detection() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        let err = txn
            .insert(&t, Tuple::of([Value::Int(1), Value::Int(0)]))
            .unwrap_err();
        assert!(matches!(err, TxnError::DuplicateKey { .. }));
        txn.insert(&t, Tuple::of([Value::Int(100), Value::Int(0)]))
            .unwrap();
        let err = txn
            .insert(&t, Tuple::of([Value::Int(100), Value::Int(0)]))
            .unwrap_err();
        assert!(matches!(err, TxnError::DuplicateKey { .. }));
        // The new row is visible to this transaction but not committed.
        assert!(txn.read(&t, &Key::Int(100)).unwrap().is_some());
        assert_eq!(t.visible_len(), 5);
    }

    #[test]
    fn update_and_delete_of_missing_rows_fail() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        assert!(matches!(
            txn.update(&t, Tuple::of([Value::Int(50), Value::Int(1)]))
                .unwrap_err(),
            TxnError::NotFound { .. }
        ));
        assert!(matches!(
            txn.delete(&t, &Key::Int(50)).unwrap_err(),
            TxnError::NotFound { .. }
        ));
    }

    #[test]
    fn delete_then_read_sees_nothing() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        txn.delete(&t, &Key::Int(1)).unwrap();
        assert!(txn.read(&t, &Key::Int(1)).unwrap().is_none());
        // delete then insert becomes an update
        txn.insert(&t, Tuple::of([Value::Int(1), Value::Int(5)]))
            .unwrap();
        assert_eq!(
            txn.read(&t, &Key::Int(1)).unwrap().unwrap().at(1),
            &Value::Int(5)
        );
    }

    #[test]
    fn insert_then_delete_cancels() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        txn.insert(&t, Tuple::of([Value::Int(200), Value::Int(5)]))
            .unwrap();
        txn.delete(&t, &Key::Int(200)).unwrap();
        assert!(txn.read(&t, &Key::Int(200)).unwrap().is_none());
        assert_eq!(txn.write_set_len(), 0);
    }

    #[test]
    fn scan_merges_own_writes() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        txn.update(&t, Tuple::of([Value::Int(0), Value::Int(-1)]))
            .unwrap();
        txn.delete(&t, &Key::Int(4)).unwrap();
        txn.insert(&t, Tuple::of([Value::Int(10), Value::Int(100)]))
            .unwrap();
        let rows = txn.scan(&t).unwrap();
        assert_eq!(rows.len(), 5); // 5 committed - 1 deleted + 1 inserted
        assert_eq!(rows[0].1.at(1), &Value::Int(-1));
        assert_eq!(rows.last().unwrap().0, Key::Int(10));
        assert!(!rows.iter().any(|(k, _)| *k == Key::Int(4)));
    }

    #[test]
    fn scan_range_respects_bounds() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        let rows = txn
            .scan_range(
                &t,
                Bound::Included(&Key::Int(1)),
                Bound::Excluded(&Key::Int(3)),
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn update_with_applies_mutation() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        let row = txn
            .update_with(&t, &Key::Int(2), |r| {
                let v = r.at(1).as_int();
                r.values_mut()[1] = Value::Int(v + 1);
            })
            .unwrap();
        assert_eq!(row.at(1), &Value::Int(21));
        assert_eq!(
            txn.read(&t, &Key::Int(2)).unwrap().unwrap().at(1),
            &Value::Int(21)
        );
    }

    #[test]
    fn scans_build_a_node_set_and_count_scan_ops() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        assert_eq!(txn.node_set_len(), 0);
        txn.scan(&t).unwrap();
        assert!(txn.node_set_len() >= 1, "scan observes traversed nodes");
        let after_first = txn.node_set_len();
        txn.scan(&t).unwrap();
        assert_eq!(txn.node_set_len(), after_first, "observations dedupe");
        assert_eq!(txn.scan_count(), 2);
        // Point reads of present rows do not grow the node set...
        txn.read(&t, &Key::Int(1)).unwrap();
        assert_eq!(txn.node_set_len(), after_first);
        // ...but reads of absent keys observe their covering node.
        let mut absent = OccTxn::new(ContainerId(0));
        absent.read(&t, &Key::Int(999)).unwrap();
        assert_eq!(absent.node_set_len(), 1);
        assert_eq!(absent.scan_count(), 0);
    }

    #[test]
    fn secondary_reads_respect_own_buffered_writes() {
        use reactdb_storage::Table;
        let schema = Schema::of(
            &[
                ("id", ColumnType::Int),
                ("grp", ColumnType::Int),
                ("v", ColumnType::Int),
            ],
            &["id"],
        );
        let t = Arc::new(Table::with_indexes("t", schema, &[vec!["grp".to_owned()]]));
        for i in 0..4i64 {
            t.load_row(Tuple::of([Value::Int(i), Value::Int(0), Value::Int(0)]))
                .unwrap();
        }
        let mut txn = OccTxn::new(ContainerId(0));
        // Move row 1 out of group 0 and insert a fresh row 10 into it —
        // both buffered, neither reflected in the physical index yet.
        txn.update(&t, Tuple::of([Value::Int(1), Value::Int(9), Value::Int(0)]))
            .unwrap();
        txn.insert(
            &t,
            Tuple::of([Value::Int(10), Value::Int(0), Value::Int(0)]),
        )
        .unwrap();
        txn.delete(&t, &Key::Int(3)).unwrap();

        let hits = txn.secondary_lookup(&t, 0, &Key::Int(0)).unwrap();
        let pks: Vec<_> = hits.iter().map(|(pk, _)| pk.clone()).collect();
        assert_eq!(
            pks,
            vec![Key::Int(0), Key::Int(2), Key::Int(10)],
            "own update leaves grp 0, own insert joins it, own delete drops out"
        );
        // The moved row shows up under its new group.
        let hits = txn.secondary_lookup(&t, 0, &Key::Int(9)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, Key::Int(1));
        // Range scans over the index merge the same way.
        let hits = txn
            .secondary_scan(
                &t,
                0,
                Bound::Included(&Key::Int(0)),
                Bound::Included(&Key::Int(9)),
            )
            .unwrap();
        assert_eq!(hits.len(), 4, "grp 0 members plus the moved row");
    }

    #[test]
    fn max_observed_tracks_largest_version() {
        let t = table();
        // Bump one record to a higher version.
        let rec = t.get(&Key::Int(3)).unwrap();
        rec.lock();
        rec.install(
            Tuple::of([Value::Int(3), Value::Int(30)]),
            TidWord::committed(2, 9),
        );
        let mut txn = OccTxn::new(ContainerId(0));
        txn.read(&t, &Key::Int(1)).unwrap();
        txn.read(&t, &Key::Int(3)).unwrap();
        assert_eq!(txn.max_observed().epoch(), 2);
        assert_eq!(txn.max_observed().sequence(), 9);
    }
}
