//! Per-container transaction participant state (Silo-style OCC).
//!
//! An [`OccTxn`] tracks everything a (sub-)transaction did inside one
//! container: the versions it read and the writes it buffered. The reactor
//! execution context performs all its relational operations through this
//! type, so that serializability follows from the Silo validation protocol
//! run at commit (see [`crate::coordinator`]).

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

use reactdb_common::{ContainerId, Key, Result, TxnError};
use reactdb_storage::{RecordRef, Table, TidWord, Tuple};

/// The kind of buffered write.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteKind {
    /// Insert of a new row (the slot was absent when the transaction wrote).
    Insert(Tuple),
    /// Update of an existing row to a new image.
    Update(Tuple),
    /// Deletion of an existing row.
    Delete,
}

/// One entry of the read set: the record handle and the version observed.
#[derive(Debug, Clone)]
pub(crate) struct ReadEntry {
    pub record: RecordRef,
    pub observed: TidWord,
}

/// One entry of the write set.
#[derive(Debug, Clone)]
pub(crate) struct WriteEntry {
    pub table: Arc<Table>,
    pub key: Key,
    pub record: RecordRef,
    /// Image of the row before this transaction (None when inserting into a
    /// previously absent slot); needed for secondary-index maintenance.
    pub before: Option<Tuple>,
    pub kind: WriteKind,
}

/// The participant state of a transaction within one container.
#[derive(Debug)]
pub struct OccTxn {
    container: ContainerId,
    reads: Vec<ReadEntry>,
    read_index: HashMap<usize, usize>,
    writes: Vec<WriteEntry>,
    /// Largest committed version observed by any read or overwritten record.
    max_observed: TidWord,
    /// Count of record-level operations, used by the engine's profiler to
    /// attribute processing cost.
    ops: u64,
}

impl OccTxn {
    /// Creates an empty participant for `container`.
    pub fn new(container: ContainerId) -> Self {
        Self {
            container,
            reads: Vec::new(),
            read_index: HashMap::new(),
            writes: Vec::new(),
            max_observed: TidWord::committed(0, 0),
            ops: 0,
        }
    }

    /// Container this participant belongs to.
    pub fn container(&self) -> ContainerId {
        self.container
    }

    /// Number of entries in the read set.
    pub fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of entries in the write set.
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Number of record operations performed so far.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Largest committed record version this participant observed.
    pub fn max_observed(&self) -> TidWord {
        self.max_observed
    }

    fn record_ptr(record: &RecordRef) -> usize {
        Arc::as_ptr(record) as usize
    }

    fn track_read(&mut self, record: &RecordRef, observed: TidWord) {
        if observed.version() > self.max_observed.version() {
            self.max_observed = observed;
        }
        let ptr = Self::record_ptr(record);
        if self.read_index.contains_key(&ptr) {
            return;
        }
        self.read_index.insert(ptr, self.reads.len());
        self.reads.push(ReadEntry {
            record: Arc::clone(record),
            observed,
        });
    }

    fn find_write(&self, table: &Arc<Table>, key: &Key) -> Option<usize> {
        self.writes
            .iter()
            .position(|w| Arc::ptr_eq(&w.table, table) && &w.key == key)
    }

    /// Transactional point read of `key` in `table`. Returns the row visible
    /// to this transaction (its own writes first, then the committed state),
    /// or `None` if the row does not exist.
    pub fn read(&mut self, table: &Arc<Table>, key: &Key) -> Result<Option<Tuple>> {
        self.ops += 1;
        // Read-your-writes.
        if let Some(idx) = self.find_write(table, key) {
            return Ok(match &self.writes[idx].kind {
                WriteKind::Insert(t) | WriteKind::Update(t) => Some(t.clone()),
                WriteKind::Delete => None,
            });
        }
        match table.get(key) {
            None => Ok(None),
            Some(record) => {
                let (tid, data) = record.read_stable();
                self.track_read(&record, tid);
                if tid.is_absent() {
                    Ok(None)
                } else {
                    Ok(Some(data))
                }
            }
        }
    }

    /// Like [`OccTxn::read`] but returns an error if the row is missing.
    pub fn read_expected(&mut self, table: &Arc<Table>, key: &Key) -> Result<Tuple> {
        self.read(table, key)?.ok_or_else(|| TxnError::NotFound {
            relation: table.name().to_owned(),
            key: key.to_string(),
        })
    }

    /// Transactional insert. Fails with [`TxnError::DuplicateKey`] if the row
    /// already exists (either committed or inserted earlier by this
    /// transaction).
    pub fn insert(&mut self, table: &Arc<Table>, row: Tuple) -> Result<()> {
        self.ops += 1;
        table.schema().validate(table.name(), row.values())?;
        let key = row.primary_key(table.schema());
        if let Some(idx) = self.find_write(table, &key) {
            match &self.writes[idx].kind {
                WriteKind::Delete => {
                    // Delete-then-insert within one transaction becomes an
                    // update of the existing slot.
                    let before = self.writes[idx].before.clone();
                    self.writes[idx] = WriteEntry {
                        table: Arc::clone(table),
                        key,
                        record: Arc::clone(&self.writes[idx].record),
                        before,
                        kind: WriteKind::Update(row),
                    };
                    return Ok(());
                }
                _ => {
                    return Err(TxnError::DuplicateKey {
                        relation: table.name().to_owned(),
                        key: key.to_string(),
                    })
                }
            }
        }
        let (record, _created) = table.get_or_create(key.clone(), row.clone());
        let (tid, before) = record.read_stable();
        self.track_read(&record, tid);
        if !tid.is_absent() {
            return Err(TxnError::DuplicateKey {
                relation: table.name().to_owned(),
                key: key.to_string(),
            });
        }
        let _ = before;
        self.writes.push(WriteEntry {
            table: Arc::clone(table),
            key,
            record,
            before: None,
            kind: WriteKind::Insert(row),
        });
        Ok(())
    }

    /// Transactional full-row update. Fails with [`TxnError::NotFound`] if
    /// the row does not exist.
    pub fn update(&mut self, table: &Arc<Table>, row: Tuple) -> Result<()> {
        self.ops += 1;
        table.schema().validate(table.name(), row.values())?;
        let key = row.primary_key(table.schema());
        if let Some(idx) = self.find_write(table, &key) {
            match self.writes[idx].kind.clone() {
                WriteKind::Delete => {
                    return Err(TxnError::NotFound {
                        relation: table.name().to_owned(),
                        key: key.to_string(),
                    })
                }
                WriteKind::Insert(_) => {
                    self.writes[idx].kind = WriteKind::Insert(row);
                    return Ok(());
                }
                WriteKind::Update(_) => {
                    self.writes[idx].kind = WriteKind::Update(row);
                    return Ok(());
                }
            }
        }
        let record = table.get(&key).ok_or_else(|| TxnError::NotFound {
            relation: table.name().to_owned(),
            key: key.to_string(),
        })?;
        let (tid, before) = record.read_stable();
        self.track_read(&record, tid);
        if tid.is_absent() {
            return Err(TxnError::NotFound {
                relation: table.name().to_owned(),
                key: key.to_string(),
            });
        }
        self.writes.push(WriteEntry {
            table: Arc::clone(table),
            key,
            record,
            before: Some(before),
            kind: WriteKind::Update(row),
        });
        Ok(())
    }

    /// Reads a row, applies `f` to it and buffers the modified image as an
    /// update — the common read-modify-write shape of the benchmarks.
    pub fn update_with<F>(&mut self, table: &Arc<Table>, key: &Key, f: F) -> Result<Tuple>
    where
        F: FnOnce(&mut Tuple),
    {
        let mut row = self.read_expected(table, key)?;
        f(&mut row);
        self.update(table, row.clone())?;
        Ok(row)
    }

    /// Transactional delete. Fails with [`TxnError::NotFound`] if the row
    /// does not exist.
    pub fn delete(&mut self, table: &Arc<Table>, key: &Key) -> Result<()> {
        self.ops += 1;
        if let Some(idx) = self.find_write(table, &key.clone()) {
            match self.writes[idx].kind.clone() {
                WriteKind::Delete => {
                    return Err(TxnError::NotFound {
                        relation: table.name().to_owned(),
                        key: key.to_string(),
                    })
                }
                WriteKind::Insert(_) => {
                    // Insert-then-delete cancels out; keep the slot absent.
                    self.writes.remove(idx);
                    return Ok(());
                }
                WriteKind::Update(_) => {
                    self.writes[idx].kind = WriteKind::Delete;
                    return Ok(());
                }
            }
        }
        let record = table.get(key).ok_or_else(|| TxnError::NotFound {
            relation: table.name().to_owned(),
            key: key.to_string(),
        })?;
        let (tid, before) = record.read_stable();
        self.track_read(&record, tid);
        if tid.is_absent() {
            return Err(TxnError::NotFound {
                relation: table.name().to_owned(),
                key: key.to_string(),
            });
        }
        self.writes.push(WriteEntry {
            table: Arc::clone(table),
            key: key.clone(),
            record,
            before: Some(before),
            kind: WriteKind::Delete,
        });
        Ok(())
    }

    /// Transactional range scan over the primary key. Returns visible rows
    /// (committed rows merged with this transaction's own writes) in key
    /// order. Every committed row touched is added to the read set.
    ///
    /// Phantom protection is not implemented (see DESIGN.md §4.2): a
    /// concurrent insert into the scanned range that commits first is not
    /// detected by validation. The OLTP benchmarks of the paper do not rely
    /// on phantom-free scans.
    pub fn scan_range(
        &mut self,
        table: &Arc<Table>,
        low: Bound<&Key>,
        high: Bound<&Key>,
    ) -> Result<Vec<(Key, Tuple)>> {
        self.ops += 1;
        let mut out: Vec<(Key, Tuple)> = Vec::new();
        for (key, record) in table.range(low, high) {
            if let Some(idx) = self.find_write(table, &key) {
                match &self.writes[idx].kind {
                    WriteKind::Insert(t) | WriteKind::Update(t) => out.push((key, t.clone())),
                    WriteKind::Delete => {}
                }
                continue;
            }
            let (tid, data) = record.read_stable();
            self.track_read(&record, tid);
            if !tid.is_absent() {
                out.push((key, data));
            }
        }
        // Inserts buffered by this transaction whose slot was created by us
        // are already present in `table.range` (the slot physically exists),
        // so no extra merge step is needed.
        Ok(out)
    }

    /// Full-table scan (range with no bounds).
    pub fn scan(&mut self, table: &Arc<Table>) -> Result<Vec<(Key, Tuple)>> {
        self.scan_range(table, Bound::Unbounded, Bound::Unbounded)
    }

    /// Secondary-index equality lookup: returns the matching visible rows.
    pub fn secondary_lookup(
        &mut self,
        table: &Arc<Table>,
        index_id: usize,
        index_key: &Key,
    ) -> Result<Vec<(Key, Tuple)>> {
        self.ops += 1;
        let mut out = Vec::new();
        for pk in table.secondary_lookup(index_id, index_key) {
            if let Some(row) = self.read(table, &pk)? {
                out.push((pk, row));
            }
        }
        Ok(out)
    }

    /// Internal accessors for the commit coordinator.
    pub(crate) fn reads(&self) -> &[ReadEntry] {
        &self.reads
    }

    pub(crate) fn writes(&self) -> &[WriteEntry] {
        &self.writes
    }

    /// True if this participant wrote nothing (read-only participants skip
    /// the write phase but still validate their reads).
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_common::Value;
    use reactdb_storage::{ColumnType, Schema};

    fn table() -> Arc<Table> {
        let schema = Schema::of(
            &[("id", ColumnType::Int), ("val", ColumnType::Int)],
            &["id"],
        );
        let t = Arc::new(Table::new("t", schema));
        for i in 0..5i64 {
            t.load_row(Tuple::of([Value::Int(i), Value::Int(i * 10)]))
                .unwrap();
        }
        t
    }

    #[test]
    fn read_tracks_read_set_and_dedupes() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        assert_eq!(
            txn.read(&t, &Key::Int(1)).unwrap().unwrap().at(1),
            &Value::Int(10)
        );
        txn.read(&t, &Key::Int(1)).unwrap();
        txn.read(&t, &Key::Int(2)).unwrap();
        assert_eq!(txn.read_set_len(), 2);
        assert!(txn.read(&t, &Key::Int(77)).unwrap().is_none());
        assert_eq!(txn.op_count(), 4);
    }

    #[test]
    fn read_your_writes() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        txn.update(&t, Tuple::of([Value::Int(1), Value::Int(999)]))
            .unwrap();
        assert_eq!(
            txn.read(&t, &Key::Int(1)).unwrap().unwrap().at(1),
            &Value::Int(999)
        );
        // The committed state is untouched before commit.
        let committed = t.get(&Key::Int(1)).unwrap().read_unguarded();
        assert_eq!(committed.at(1), &Value::Int(10));
    }

    #[test]
    fn insert_duplicate_detection() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        let err = txn
            .insert(&t, Tuple::of([Value::Int(1), Value::Int(0)]))
            .unwrap_err();
        assert!(matches!(err, TxnError::DuplicateKey { .. }));
        txn.insert(&t, Tuple::of([Value::Int(100), Value::Int(0)]))
            .unwrap();
        let err = txn
            .insert(&t, Tuple::of([Value::Int(100), Value::Int(0)]))
            .unwrap_err();
        assert!(matches!(err, TxnError::DuplicateKey { .. }));
        // The new row is visible to this transaction but not committed.
        assert!(txn.read(&t, &Key::Int(100)).unwrap().is_some());
        assert_eq!(t.visible_len(), 5);
    }

    #[test]
    fn update_and_delete_of_missing_rows_fail() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        assert!(matches!(
            txn.update(&t, Tuple::of([Value::Int(50), Value::Int(1)]))
                .unwrap_err(),
            TxnError::NotFound { .. }
        ));
        assert!(matches!(
            txn.delete(&t, &Key::Int(50)).unwrap_err(),
            TxnError::NotFound { .. }
        ));
    }

    #[test]
    fn delete_then_read_sees_nothing() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        txn.delete(&t, &Key::Int(1)).unwrap();
        assert!(txn.read(&t, &Key::Int(1)).unwrap().is_none());
        // delete then insert becomes an update
        txn.insert(&t, Tuple::of([Value::Int(1), Value::Int(5)]))
            .unwrap();
        assert_eq!(
            txn.read(&t, &Key::Int(1)).unwrap().unwrap().at(1),
            &Value::Int(5)
        );
    }

    #[test]
    fn insert_then_delete_cancels() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        txn.insert(&t, Tuple::of([Value::Int(200), Value::Int(5)]))
            .unwrap();
        txn.delete(&t, &Key::Int(200)).unwrap();
        assert!(txn.read(&t, &Key::Int(200)).unwrap().is_none());
        assert_eq!(txn.write_set_len(), 0);
    }

    #[test]
    fn scan_merges_own_writes() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        txn.update(&t, Tuple::of([Value::Int(0), Value::Int(-1)]))
            .unwrap();
        txn.delete(&t, &Key::Int(4)).unwrap();
        txn.insert(&t, Tuple::of([Value::Int(10), Value::Int(100)]))
            .unwrap();
        let rows = txn.scan(&t).unwrap();
        assert_eq!(rows.len(), 5); // 5 committed - 1 deleted + 1 inserted
        assert_eq!(rows[0].1.at(1), &Value::Int(-1));
        assert_eq!(rows.last().unwrap().0, Key::Int(10));
        assert!(!rows.iter().any(|(k, _)| *k == Key::Int(4)));
    }

    #[test]
    fn scan_range_respects_bounds() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        let rows = txn
            .scan_range(
                &t,
                Bound::Included(&Key::Int(1)),
                Bound::Excluded(&Key::Int(3)),
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn update_with_applies_mutation() {
        let t = table();
        let mut txn = OccTxn::new(ContainerId(0));
        let row = txn
            .update_with(&t, &Key::Int(2), |r| {
                let v = r.at(1).as_int();
                r.values_mut()[1] = Value::Int(v + 1);
            })
            .unwrap();
        assert_eq!(row.at(1), &Value::Int(21));
        assert_eq!(
            txn.read(&t, &Key::Int(2)).unwrap().unwrap().at(1),
            &Value::Int(21)
        );
    }

    #[test]
    fn max_observed_tracks_largest_version() {
        let t = table();
        // Bump one record to a higher version.
        let rec = t.get(&Key::Int(3)).unwrap();
        rec.lock();
        rec.install(
            Tuple::of([Value::Int(3), Value::Int(30)]),
            TidWord::committed(2, 9),
        );
        let mut txn = OccTxn::new(ContainerId(0));
        txn.read(&t, &Key::Int(1)).unwrap();
        txn.read(&t, &Key::Int(3)).unwrap();
        assert_eq!(txn.max_observed().epoch(), 2);
        assert_eq!(txn.max_observed().sequence(), 9);
    }
}
