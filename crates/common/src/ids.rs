//! Identifiers for the entities of the reactor model and the ReactDB runtime.
//!
//! Reactors are purely logical entities addressed by *declared names* for the
//! lifetime of the application (§2.2.1). Internally the runtime assigns each
//! name a dense numeric [`ReactorId`] used by the deployment mapping
//! (reactor → container → executor). Transactions and sub-transactions carry
//! [`TxnId`]/[`SubTxnId`] so the intra-transaction safety condition (§2.2.4)
//! and the history formalism (§2.3) can refer to them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// The application-visible name of a reactor (e.g. `"warehouse-3"`,
/// `"MC_US"`). Names are stable for the lifetime of the reactor database.
pub type ReactorName = String;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric value.
            pub fn raw(self) -> u64 {
                self.0
            }
            /// Returns the id as a usize, convenient for indexing vectors.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u64)
            }
        }
        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// Dense internal identifier of a reactor within a reactor database.
    ReactorId
);
id_type!(
    /// Identifier of a database container (an isolated shared-memory region
    /// with its own concurrency control, §3.1).
    ContainerId
);
id_type!(
    /// Identifier of a transaction executor (thread pool + request queue
    /// pinned to a core, §3.1).
    ExecutorId
);
id_type!(
    /// Identifier of a root transaction.
    TxnId
);
id_type!(
    /// Identifier of a sub-transaction within a root transaction.
    SubTxnId
);

/// Monotonic generator for root transaction identifiers.
///
/// The generator is shared by all client workers of a database instance; ids
/// are unique but carry no ordering semantics beyond uniqueness (commit order
/// is decided by the OCC layer, not by `TxnId`).
#[derive(Debug, Default)]
pub struct TxnIdGen {
    next: AtomicU64,
}

impl TxnIdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }

    /// Allocates the next transaction id.
    pub fn next(&self) -> TxnId {
        TxnId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_conversions() {
        let r: ReactorId = 7usize.into();
        assert_eq!(r.raw(), 7);
        assert_eq!(r.index(), 7);
        assert_eq!(format!("{r}"), "ReactorId(7)");
    }

    #[test]
    fn txn_id_generator_is_monotonic_and_unique() {
        let gen = TxnIdGen::new();
        let a = gen.next();
        let b = gen.next();
        let c = gen.next();
        assert!(a < b && b < c);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ContainerId(1));
        set.insert(ContainerId(1));
        set.insert(ContainerId(2));
        assert_eq!(set.len(), 2);
        assert!(ExecutorId(0) < ExecutorId(1));
    }
}
