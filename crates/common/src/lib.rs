//! Common foundation types for ReactDB-rs.
//!
//! This crate contains the vocabulary shared by every other crate in the
//! workspace: relational [`Value`]s and keys, identifiers for reactors,
//! containers, executors and transactions, the error taxonomy, the
//! deployment configuration model (the paper's "configuration file" that
//! virtualizes database architecture, §3.3), random-distribution helpers used
//! by the workloads, and small statistics utilities used by the benchmark
//! harness.
//!
//! Nothing in this crate depends on the storage engine, the concurrency
//! control layer or the runtime; it is the bottom of the dependency stack.

pub mod ack;
pub mod config;
pub mod error;
pub mod ids;
pub mod stats;
pub mod value;
pub mod zipf;

pub use ack::AckLevel;
pub use config::{
    CheckpointConfig, DeploymentConfig, DeploymentStrategy, DurabilityConfig, DurabilityMode,
    ExecutorConfig, ReplicationConfig, RouterPolicy, TracingConfig,
};
pub use error::{Result, TxnError};
pub use ids::{ContainerId, ExecutorId, ReactorId, ReactorName, SubTxnId, TxnId};
pub use value::{Key, Value};
