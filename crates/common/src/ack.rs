//! The unified acknowledgement-level enum shared by every layer.
//!
//! ReactDB acknowledges a committed transaction at one of three points in
//! its lifecycle, each strictly stronger than the previous:
//!
//! * [`AckLevel::Validated`] — OCC validation succeeded and the commit is
//!   installed in memory. The result is correct but volatile: a crash
//!   before the next group commit loses it.
//! * [`AckLevel::Durable`] — the commit's epoch is covered by the WAL's
//!   durable-epoch marker (Silo-style group commit): the transaction
//!   survives a crash of this node.
//! * [`AckLevel::Replicated`] — additionally, at least one follower has
//!   durably applied the commit's epoch: the transaction survives the
//!   *loss* of this node (a follower promoted after a primary failure
//!   serves it).
//!
//! Historically the engine grew a method per level (`submit` vs
//! `submit_durable`) and the wire protocol carried its own `AckMode`;
//! this enum replaces both so a third level lands in one place instead
//! of four.

use serde::{Deserialize, Serialize};

/// When a transaction submission is acknowledged to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AckLevel {
    /// Acknowledge at OCC validation: installed in memory, volatile.
    Validated,
    /// Acknowledge once the commit epoch is group-commit durable on this
    /// node.
    Durable,
    /// Acknowledge once at least one follower has durably applied the
    /// commit epoch (implies [`AckLevel::Durable`] on the primary).
    Replicated,
}

impl AckLevel {
    /// Every level, weakest first.
    pub const ALL: [AckLevel; 3] = [AckLevel::Validated, AckLevel::Durable, AckLevel::Replicated];

    /// Stable lower-case name (flag values, metrics labels).
    pub fn as_str(self) -> &'static str {
        match self {
            AckLevel::Validated => "validated",
            AckLevel::Durable => "durable",
            AckLevel::Replicated => "replicated",
        }
    }

    /// Parses the stable name produced by [`AckLevel::as_str`].
    pub fn parse(s: &str) -> Option<AckLevel> {
        match s {
            "validated" => Some(AckLevel::Validated),
            "durable" => Some(AckLevel::Durable),
            "replicated" => Some(AckLevel::Replicated),
            _ => None,
        }
    }

    /// Wire-protocol tag (stable across protocol revisions: `Validated`
    /// and `Durable` keep the byte values of the old `AckMode`).
    pub fn wire_tag(self) -> u8 {
        match self {
            AckLevel::Validated => 0,
            AckLevel::Durable => 1,
            AckLevel::Replicated => 2,
        }
    }

    /// Decodes a wire tag written by [`AckLevel::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<AckLevel> {
        match tag {
            0 => Some(AckLevel::Validated),
            1 => Some(AckLevel::Durable),
            2 => Some(AckLevel::Replicated),
            _ => None,
        }
    }

    /// True when acknowledging at this level must wait for the WAL's
    /// durable-epoch marker to cover the commit epoch.
    pub fn requires_durable(self) -> bool {
        self >= AckLevel::Durable
    }

    /// True when acknowledging at this level must additionally wait for a
    /// follower to durably apply the commit epoch.
    pub fn requires_replicated(self) -> bool {
        self == AckLevel::Replicated
    }
}

impl std::fmt::Display for AckLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for level in AckLevel::ALL {
            assert_eq!(AckLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(AckLevel::parse("bogus"), None);
    }

    #[test]
    fn wire_tags_are_stable_and_roundtrip() {
        // Validated/Durable keep the byte values the protocol-v1 AckMode
        // used, so a v2 decoder reads old captures correctly.
        assert_eq!(AckLevel::Validated.wire_tag(), 0);
        assert_eq!(AckLevel::Durable.wire_tag(), 1);
        assert_eq!(AckLevel::Replicated.wire_tag(), 2);
        for level in AckLevel::ALL {
            assert_eq!(AckLevel::from_wire_tag(level.wire_tag()), Some(level));
        }
        assert_eq!(AckLevel::from_wire_tag(3), None);
    }

    #[test]
    fn levels_are_ordered_by_strength() {
        assert!(AckLevel::Validated < AckLevel::Durable);
        assert!(AckLevel::Durable < AckLevel::Replicated);
        assert!(!AckLevel::Validated.requires_durable());
        assert!(AckLevel::Durable.requires_durable());
        assert!(AckLevel::Replicated.requires_durable());
        assert!(AckLevel::Replicated.requires_replicated());
        assert!(!AckLevel::Durable.requires_replicated());
    }
}
