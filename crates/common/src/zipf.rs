//! Random-distribution helpers used by workload generators.
//!
//! * [`Zipfian`] — the classic Zipf/zeta sampler used by YCSB (Appendix C
//!   varies the zipfian constant from 0.01 to 5.0 to control skew).
//! * [`NonUniform`] — TPC-C's `NURand(A, x, y)` non-uniform distribution.
//! * [`uniform_in`] — inclusive uniform helper used everywhere else.

use rand::Rng;

/// A Zipfian sampler over `0..n` with exponent `theta` (the "zipfian
/// constant"). Uses the Gray et al. rejection-free method, precomputing the
/// normalisation constants, which keeps per-sample cost O(1).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Creates a sampler over the item space `0..n` with skew `theta`.
    /// `theta == 0.0` degenerates to the uniform distribution; the paper's
    /// Appendix C uses values between 0.01 and 5.0.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian item space must be non-empty");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = if n > 1 {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        } else {
            0.0
        };
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // For very skewed or very large spaces the partial harmonic sum is
        // still cheap at workload-generation scale (n <= a few hundred
        // thousand in the paper's setups).
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items in the sampled space.
    pub fn item_count(&self) -> u64 {
        self.n
    }

    /// Skew parameter of this sampler.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws the next item in `0..n` (0 is the most popular item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

/// TPC-C's non-uniform random distribution `NURand(A, x, y)`.
#[derive(Debug, Clone, Copy)]
pub struct NonUniform {
    a: u64,
    c: u64,
    x: u64,
    y: u64,
}

impl NonUniform {
    /// Creates a `NURand(A, x, y)` generator with constant offset `c`.
    pub fn new(a: u64, c: u64, x: u64, y: u64) -> Self {
        assert!(x <= y, "NURand requires x <= y");
        Self { a, c, x, y }
    }

    /// Standard generator for customer ids (`NURand(1023, 1, 3000)`).
    pub fn customer_id() -> Self {
        Self::new(1023, 259, 1, 3000)
    }

    /// Standard generator for item ids (`NURand(8191, 1, 100000)`).
    pub fn item_id() -> Self {
        Self::new(8191, 7911, 1, 100_000)
    }

    /// Draws the next value in `x..=y`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lead = rng.gen_range(0..=self.a);
        let follow = rng.gen_range(self.x..=self.y);
        (((lead | follow) + self.c) % (self.y - self.x + 1)) + self.x
    }
}

/// Draws a uniform value in the inclusive range `[lo, hi]`.
pub fn uniform_in<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipfian_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let z = Zipfian::new(100, 0.99);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipfian_high_skew_concentrates_on_head() {
        let mut rng = StdRng::seed_from_u64(2);
        let z = Zipfian::new(1000, 2.0);
        let hits_head = (0..10_000).filter(|_| z.sample(&mut rng) < 10).count();
        assert!(
            hits_head > 8_000,
            "expected >80% of draws in the head, got {hits_head}"
        );
    }

    #[test]
    fn zipfian_low_skew_is_spread_out() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipfian::new(1000, 0.01);
        let hits_head = (0..10_000).filter(|_| z.sample(&mut rng) < 10).count();
        assert!(
            hits_head < 1_000,
            "low skew should not concentrate, got {hits_head}"
        );
    }

    #[test]
    fn zipfian_single_item_space() {
        let mut rng = StdRng::seed_from_u64(4);
        let z = Zipfian::new(1, 0.99);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn nurand_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = NonUniform::customer_id();
        for _ in 0..10_000 {
            let v = n.sample(&mut rng);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn uniform_in_is_inclusive() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = uniform_in(&mut rng, 3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }
}
