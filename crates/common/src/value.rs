//! Relational values and keys.
//!
//! Reactors encapsulate state "abstracted using relations" (§2.1 of the
//! paper). The storage layer stores tuples of [`Value`]s; primary and
//! secondary indexes are ordered on [`Key`]s, a totally ordered subset of
//! values (floats are excluded from keys so that ordering is total and
//! hashing well-defined).

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single relational value stored inside a tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 floating point (monetary amounts, risk figures, ...).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean flag (e.g. the `settled` column of the exchange example).
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Returns the integer stored in this value.
    ///
    /// # Panics
    /// Panics if the value is not an [`Value::Int`]. Workload procedures use
    /// this accessor on columns whose type is fixed by the schema, so a
    /// mismatch is a programming error, not a runtime condition.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, found {other:?}"),
        }
    }

    /// Returns the float stored in this value, widening integers.
    ///
    /// # Panics
    /// Panics if the value is neither a float nor an integer.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            Value::Int(v) => *v as f64,
            other => panic!("expected Float, found {other:?}"),
        }
    }

    /// Returns the string stored in this value.
    ///
    /// # Panics
    /// Panics if the value is not a string.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(v) => v,
            other => panic!("expected Str, found {other:?}"),
        }
    }

    /// Returns the boolean stored in this value.
    ///
    /// # Panics
    /// Panics if the value is not a boolean.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected Bool, found {other:?}"),
        }
    }

    /// True if this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Converts the value into a [`Key`] if it belongs to the orderable
    /// subset (integers, strings, booleans). Returns `None` for floats and
    /// NULL.
    pub fn to_key(&self) -> Option<Key> {
        match self {
            Value::Int(v) => Some(Key::Int(*v)),
            Value::Str(v) => Some(Key::Str(v.clone())),
            Value::Bool(v) => Some(Key::Bool(*v)),
            Value::Float(_) | Value::Null => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A totally ordered, hashable key value used by primary and secondary
/// indexes and by the OCC layer's deterministic lock ordering.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Key {
    /// Boolean key component.
    Bool(bool),
    /// Integer key component.
    Int(i64),
    /// String key component.
    Str(String),
    /// Composite key made of multiple components (e.g. TPC-C order lines are
    /// keyed by `(o_id, ol_number)`).
    Composite(Vec<Key>),
}

impl Key {
    /// Builds a composite key from parts.
    pub fn composite<I: IntoIterator<Item = Key>>(parts: I) -> Key {
        Key::Composite(parts.into_iter().collect())
    }

    /// Converts the key back into a plain value (composites are not
    /// representable as a single value and return NULL).
    pub fn to_value(&self) -> Value {
        match self {
            Key::Int(v) => Value::Int(*v),
            Key::Str(v) => Value::Str(v.clone()),
            Key::Bool(v) => Value::Bool(*v),
            Key::Composite(_) => Value::Null,
        }
    }
}

impl From<i64> for Key {
    fn from(v: i64) -> Self {
        Key::Int(v)
    }
}
impl From<i32> for Key {
    fn from(v: i32) -> Self {
        Key::Int(v as i64)
    }
}
impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key::Int(v as i64)
    }
}
impl From<usize> for Key {
    fn from(v: usize) -> Self {
        Key::Int(v as i64)
    }
}
impl From<&str> for Key {
    fn from(v: &str) -> Self {
        Key::Str(v.to_owned())
    }
}
impl From<String> for Key {
    fn from(v: String) -> Self {
        Key::Str(v)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Int(v) => write!(f, "{v}"),
            Key::Str(v) => write!(f, "{v}"),
            Key::Bool(v) => write!(f, "{v}"),
            Key::Composite(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Orders two values for predicate evaluation (`ORDER BY`, range filters on
/// non-key columns). NULL sorts first; mixed-type comparisons order by type
/// tag, mirroring the behaviour of the key ordering.
pub fn compare_values(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Null, Value::Null) => Ordering::Equal,
        _ => rank(a).cmp(&rank(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_and_accessors() {
        let v = Value::from(42i64);
        assert_eq!(v.as_int(), 42);
        assert_eq!(v.as_float(), 42.0);
        assert_eq!(v.to_key(), Some(Key::Int(42)));
    }

    #[test]
    fn string_and_bool_accessors() {
        assert_eq!(Value::from("abc").as_str(), "abc");
        assert!(Value::from(true).as_bool());
        assert!(Value::Null.is_null());
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_type_mismatch() {
        Value::from("oops").as_int();
    }

    #[test]
    fn float_has_no_key_representation() {
        assert_eq!(Value::Float(1.5).to_key(), None);
        assert_eq!(Value::Null.to_key(), None);
    }

    #[test]
    fn key_ordering_is_total_within_type() {
        assert!(Key::Int(1) < Key::Int(2));
        assert!(Key::Str("a".into()) < Key::Str("b".into()));
        let c1 = Key::composite([Key::Int(1), Key::Int(5)]);
        let c2 = Key::composite([Key::Int(1), Key::Int(9)]);
        assert!(c1 < c2);
    }

    #[test]
    fn key_to_value_roundtrip() {
        assert_eq!(Key::Int(7).to_value(), Value::Int(7));
        assert_eq!(Key::Str("x".into()).to_value(), Value::Str("x".into()));
        assert_eq!(Key::Bool(true).to_value(), Value::Bool(true));
    }

    #[test]
    fn compare_values_handles_mixed_numeric() {
        assert_eq!(
            compare_values(&Value::Int(2), &Value::Float(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            compare_values(&Value::Int(1), &Value::Float(1.5)),
            Ordering::Less
        );
        assert_eq!(compare_values(&Value::Null, &Value::Int(0)), Ordering::Less);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(
            Key::composite([Key::Int(1), Key::Str("a".into())]).to_string(),
            "(1,a)"
        );
    }
}
