//! Error taxonomy for transactions in the reactor model.
//!
//! Every condition that leads to an abort of a sub-transaction leads to the
//! abort of the corresponding root transaction (§2.2.3); the variants below
//! distinguish *why* a transaction aborted, because the evaluation reports
//! abort rates separately for concurrency-control conflicts and
//! application-defined aborts (e.g. the exchange's exposure limit).

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, TxnError>;

/// Reasons a transaction or sub-transaction can abort or fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The application logic requested an abort (user-defined abort
    /// condition, e.g. insufficient funds or exceeded exposure).
    UserAbort(String),
    /// OCC validation failed: a record read by this transaction was modified
    /// or locked by a concurrent transaction before commit.
    ValidationFailed,
    /// Node-set validation failed: the membership of a range this
    /// transaction scanned (or a key whose absence it observed) changed
    /// before commit — a phantom. Distinguished from
    /// [`TxnError::ValidationFailed`] so workload reports can separate
    /// phantom aborts from ordinary read-set conflicts; like them, it is a
    /// transient concurrency-control abort a client driver retries.
    Phantom,
    /// Two-phase commit aborted because one of the participating containers
    /// voted no.
    CommitAborted,
    /// The dynamic intra-transaction safety condition of §2.2.4 was violated:
    /// two concurrent sub-transactions of the same root transaction were
    /// scheduled on the same reactor.
    DangerousStructure {
        /// The reactor on which the conflicting sub-transaction was detected.
        reactor: String,
    },
    /// A procedure referenced a reactor name that is not declared in the
    /// reactor database.
    UnknownReactor(String),
    /// A procedure referenced a procedure name not registered for the target
    /// reactor's type.
    UnknownProcedure {
        /// The reactor type on which lookup was attempted.
        reactor_type: String,
        /// The missing procedure name.
        procedure: String,
    },
    /// A query referenced a relation that does not exist in the reactor's
    /// encapsulated schema.
    UnknownRelation(String),
    /// A query referenced a column that does not exist in the relation.
    UnknownColumn {
        /// Relation that was queried.
        relation: String,
        /// The missing column name.
        column: String,
    },
    /// A primary-key insert collided with an existing row.
    DuplicateKey {
        /// Relation into which the insert was attempted.
        relation: String,
        /// The offending key rendered as text.
        key: String,
    },
    /// A read, update or delete referenced a primary key that does not exist.
    NotFound {
        /// Relation that was accessed.
        relation: String,
        /// The missing key rendered as text.
        key: String,
    },
    /// The runtime rejected the request (executor shut down, queue closed).
    Runtime(String),
    /// Wrong number or type of arguments passed to a registered procedure.
    BadArguments(String),
}

impl TxnError {
    /// True when the error is a concurrency-control abort that a client
    /// driver would ordinarily retry (validation failure or distributed
    /// commit abort).
    pub fn is_cc_abort(&self) -> bool {
        matches!(
            self,
            TxnError::ValidationFailed | TxnError::Phantom | TxnError::CommitAborted
        )
    }

    /// True when the abort came from node-set (phantom) validation: a
    /// scanned range's membership changed before commit.
    pub fn is_phantom(&self) -> bool {
        matches!(self, TxnError::Phantom)
    }

    /// True when the abort was requested by application logic.
    pub fn is_user_abort(&self) -> bool {
        matches!(self, TxnError::UserAbort(_))
    }

    /// True when the abort was caused by the intra-transaction safety
    /// condition (a dangerous call structure, §2.2.4).
    pub fn is_dangerous_structure(&self) -> bool {
        matches!(self, TxnError::DangerousStructure { .. })
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::UserAbort(msg) => write!(f, "user abort: {msg}"),
            TxnError::ValidationFailed => write!(f, "OCC validation failed"),
            TxnError::Phantom => {
                write!(f, "phantom detected: a scanned range changed before commit")
            }
            TxnError::CommitAborted => write!(f, "distributed commit aborted"),
            TxnError::DangerousStructure { reactor } => {
                write!(f, "dangerous call structure on reactor {reactor}")
            }
            TxnError::UnknownReactor(name) => write!(f, "unknown reactor {name}"),
            TxnError::UnknownProcedure {
                reactor_type,
                procedure,
            } => {
                write!(
                    f,
                    "unknown procedure {procedure} on reactor type {reactor_type}"
                )
            }
            TxnError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            TxnError::UnknownColumn { relation, column } => {
                write!(f, "unknown column {column} in relation {relation}")
            }
            TxnError::DuplicateKey { relation, key } => {
                write!(f, "duplicate key {key} in relation {relation}")
            }
            TxnError::NotFound { relation, key } => {
                write!(f, "key {key} not found in relation {relation}")
            }
            TxnError::Runtime(msg) => write!(f, "runtime error: {msg}"),
            TxnError::BadArguments(msg) => write!(f, "bad arguments: {msg}"),
        }
    }
}

impl std::error::Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(TxnError::ValidationFailed.is_cc_abort());
        assert!(TxnError::CommitAborted.is_cc_abort());
        assert!(TxnError::Phantom.is_cc_abort(), "phantoms are retryable");
        assert!(TxnError::Phantom.is_phantom());
        assert!(!TxnError::ValidationFailed.is_phantom());
        assert!(!TxnError::UserAbort("x".into()).is_cc_abort());
        assert!(TxnError::UserAbort("x".into()).is_user_abort());
        assert!(TxnError::DangerousStructure {
            reactor: "r".into()
        }
        .is_dangerous_structure());
    }

    #[test]
    fn display_is_human_readable() {
        let e = TxnError::NotFound {
            relation: "orders".into(),
            key: "42".into(),
        };
        assert_eq!(e.to_string(), "key 42 not found in relation orders");
        let e = TxnError::UnknownProcedure {
            reactor_type: "Provider".into(),
            procedure: "calc_risk".into(),
        };
        assert!(e.to_string().contains("calc_risk"));
    }
}
