//! Measurement utilities used by the benchmark harness.
//!
//! The paper uses an epoch-based measurement methodology similar to
//! OLTP-Bench (§4.1.2): latency and throughput are averaged over 50 epochs
//! and the standard deviation is reported as error bars. [`EpochStats`]
//! implements exactly that aggregation; [`LatencyRecorder`] collects raw
//! per-transaction samples within one epoch.

use serde::{Deserialize, Serialize};

/// Collects individual latency samples (in microseconds) and abort counts
/// within a single measurement epoch.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples_us: Vec<f64>,
    committed: u64,
    aborted: u64,
    user_aborted: u64,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a committed transaction with the given latency.
    pub fn record_commit(&mut self, latency_us: f64) {
        self.samples_us.push(latency_us);
        self.committed += 1;
    }

    /// Records a transaction aborted by concurrency control.
    pub fn record_abort(&mut self) {
        self.aborted += 1;
    }

    /// Records a transaction aborted by application logic.
    pub fn record_user_abort(&mut self) {
        self.user_aborted += 1;
    }

    /// Number of committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Number of concurrency-control aborts.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Number of user aborts.
    pub fn user_aborted(&self) -> u64 {
        self.user_aborted
    }

    /// Average latency in microseconds over the committed transactions;
    /// zero if no transaction committed.
    pub fn avg_latency_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            0.0
        } else {
            self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64
        }
    }

    /// p-th percentile latency (0.0..=1.0) over committed transactions.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Abort rate: cc aborts / (commits + cc aborts).
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }

    /// Merges another recorder (e.g. from another worker thread) into this
    /// one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_us.extend_from_slice(&other.samples_us);
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.user_aborted += other.user_aborted;
    }
}

/// One aggregated data point reported by the harness: the mean and standard
/// deviation of a metric over measurement epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Mean over epochs.
    pub mean: f64,
    /// Standard deviation over epochs.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean and standard deviation of the given samples.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                mean: 0.0,
                std: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        Self {
            mean,
            std: var.sqrt(),
        }
    }
}

/// Aggregates per-epoch throughput and latency in the style of §4.1.2.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct EpochStats {
    /// Throughput of each epoch in transactions per second.
    pub epoch_throughput_tps: Vec<f64>,
    /// Average latency of each epoch in microseconds.
    pub epoch_latency_us: Vec<f64>,
    /// Abort rate of each epoch.
    pub epoch_abort_rate: Vec<f64>,
}

impl EpochStats {
    /// Creates an empty aggregation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one epoch's results: the recorder holding that epoch's samples
    /// and the epoch duration in seconds.
    pub fn push_epoch(&mut self, recorder: &LatencyRecorder, epoch_seconds: f64) {
        let tps = if epoch_seconds > 0.0 {
            recorder.committed() as f64 / epoch_seconds
        } else {
            0.0
        };
        self.epoch_throughput_tps.push(tps);
        self.epoch_latency_us.push(recorder.avg_latency_us());
        self.epoch_abort_rate.push(recorder.abort_rate());
    }

    /// Number of epochs aggregated so far.
    pub fn epochs(&self) -> usize {
        self.epoch_throughput_tps.len()
    }

    /// Mean/std of throughput across epochs (txn/sec).
    pub fn throughput(&self) -> MeanStd {
        MeanStd::of(&self.epoch_throughput_tps)
    }

    /// Mean/std of average latency across epochs (µs).
    pub fn latency_us(&self) -> MeanStd {
        MeanStd::of(&self.epoch_latency_us)
    }

    /// Mean abort rate across epochs.
    pub fn abort_rate(&self) -> f64 {
        MeanStd::of(&self.epoch_abort_rate).mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_basic_accounting() {
        let mut r = LatencyRecorder::new();
        r.record_commit(10.0);
        r.record_commit(20.0);
        r.record_abort();
        r.record_user_abort();
        assert_eq!(r.committed(), 2);
        assert_eq!(r.aborted(), 1);
        assert_eq!(r.user_aborted(), 1);
        assert!((r.avg_latency_us() - 15.0).abs() < 1e-9);
        assert!((r.abort_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn recorder_percentiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100 {
            r.record_commit(i as f64);
        }
        assert_eq!(r.percentile_us(0.0), 1.0);
        assert_eq!(r.percentile_us(1.0), 100.0);
        assert!((r.percentile_us(0.5) - 50.0).abs() <= 1.0);
    }

    #[test]
    fn recorder_merge() {
        let mut a = LatencyRecorder::new();
        a.record_commit(10.0);
        let mut b = LatencyRecorder::new();
        b.record_commit(30.0);
        b.record_abort();
        a.merge(&b);
        assert_eq!(a.committed(), 2);
        assert_eq!(a.aborted(), 1);
        assert!((a.avg_latency_us() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_recorder_is_safe() {
        let r = LatencyRecorder::new();
        assert_eq!(r.avg_latency_us(), 0.0);
        assert_eq!(r.percentile_us(0.5), 0.0);
        assert_eq!(r.abort_rate(), 0.0);
    }

    #[test]
    fn mean_std_of_constant_series_has_zero_std() {
        let m = MeanStd::of(&[5.0, 5.0, 5.0]);
        assert_eq!(m.mean, 5.0);
        assert_eq!(m.std, 0.0);
    }

    #[test]
    fn epoch_stats_aggregation() {
        let mut stats = EpochStats::new();
        for _ in 0..3 {
            let mut r = LatencyRecorder::new();
            r.record_commit(100.0);
            r.record_commit(200.0);
            stats.push_epoch(&r, 1.0);
        }
        assert_eq!(stats.epochs(), 3);
        assert!((stats.throughput().mean - 2.0).abs() < 1e-9);
        assert!((stats.latency_us().mean - 150.0).abs() < 1e-9);
        assert_eq!(stats.abort_rate(), 0.0);
    }
}
