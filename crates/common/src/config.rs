//! Deployment configuration: the paper's "configuration file".
//!
//! ReactDB decomposes and virtualizes database architecture into
//! *containers* (isolated memory regions with their own concurrency control)
//! and *transaction executors* (compute resources that own or share
//! reactors). §3.3 shows that by editing only this configuration — never the
//! application code — an infrastructure engineer can deploy the same reactor
//! database as a shared-everything engine, an affinity-based
//! shared-everything engine, or a shared-nothing engine.
//!
//! [`DeploymentConfig`] is that configuration, expressed as a serde-friendly
//! value so it can be read from a JSON file or constructed programmatically.

use serde::{Deserialize, Serialize};

use crate::ids::{ContainerId, ExecutorId};

/// How a transaction router picks the executor that will run a root
/// transaction (§3.1, "transaction routers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Load-balance root transactions over the container's executors in
    /// round-robin order, ignoring which reactor they target (strategy S1).
    RoundRobin,
    /// Route every transaction for a given reactor to the same executor
    /// (strategies S2 and S3), maximising memory-access affinity.
    Affinity,
}

/// Configuration of one transaction executor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Identifier of the executor, unique across the deployment.
    pub id: ExecutorId,
    /// Container this executor belongs to.
    pub container: ContainerId,
    /// Multi-programming level: how many (sub-)transactions the executor may
    /// process concurrently (§3.2.3). Shared-everything-with-affinity runs
    /// with an MPL of 1; asynchronous shared-nothing deployments need a
    /// higher MPL so that an executor blocked on a remote future can keep
    /// draining its request queue.
    pub mpl: usize,
}

/// The three deployment strategies evaluated in the paper (§3.3), plus a
/// fully custom mapping for other flexible deployments ("similar to [44]").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeploymentStrategy {
    /// S1: a single container; every executor can run transactions on behalf
    /// of any reactor; round-robin routing.
    SharedEverythingWithoutAffinity {
        /// Number of transaction executors in the single container.
        executors: usize,
    },
    /// S2: a single container; an affinity router sends all transactions of a
    /// reactor to the same executor; sub-transactions are inlined (no
    /// migration of control).
    SharedEverythingWithAffinity {
        /// Number of transaction executors in the single container.
        executors: usize,
    },
    /// S3: as many containers as executors; every reactor is mapped to
    /// exactly one executor; cross-container sub-transactions migrate
    /// control to the owning executor.
    SharedNothing {
        /// Number of containers (= executors).
        executors: usize,
    },
    /// Arbitrary explicit mapping: `container_of[r]` gives the container of
    /// reactor `r` (by dense reactor id) and `executors` lists the executor
    /// configuration. Used by tests and by deployments that group several
    /// reactors per container (e.g. the Smallbank deployment with 1000
    /// reactors per container, §4.1.3).
    Custom {
        /// Router policy applied inside each container.
        router: RouterPolicy,
        /// Executor configuration (ids must be dense starting at 0).
        executors: Vec<ExecutorConfig>,
        /// For every reactor (dense id order), the container hosting it.
        container_of: Vec<ContainerId>,
    },
}

/// Durability policy of a deployment. ReactDB reuses Silo's epoch-based
/// group commit: redo records are buffered per executor and the log is
/// synchronized on epoch boundaries, so the logging fast path never issues a
/// synchronous disk write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurabilityMode {
    /// No logging: every commit is volatile (the seed behaviour).
    Off,
    /// Redo records are buffered and written to the log files opportunistically
    /// (on buffer pressure and clean shutdown) without fsync and without a
    /// durable-epoch marker. Recovery replays every intact record.
    Buffered,
    /// Full epoch-based group commit: a daemon flushes and fsyncs all log
    /// writers on epoch boundaries and advances the durable-epoch marker.
    /// Recovery replays exactly the transactions of fully synced epochs.
    EpochSync,
}

/// Durability section of a [`DeploymentConfig`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityConfig {
    /// Logging / group-commit policy.
    pub mode: DurabilityMode,
    /// Directory holding the log segments and the durable-epoch marker.
    /// Required unless `mode` is [`DurabilityMode::Off`].
    pub log_dir: Option<String>,
    /// Period of the group-commit daemon in milliseconds. `0` disables the
    /// background daemon; syncs then happen only on explicit request (used
    /// by deterministic tests) and on clean shutdown.
    pub group_commit_interval_ms: u64,
    /// Delta redo logging: repeat updates of a row ship only the changed
    /// fields (a field-level delta against the overwritten image) instead of
    /// the full row image. Inserts, deletes and the first touch of a key
    /// since the writer's segment rotation stay full-image, so every delta
    /// chain in a surviving segment generation is rooted in a full image
    /// (or in a checkpoint row). Only effective under
    /// [`DurabilityMode::EpochSync`]: buffered-mode flushes are per-writer
    /// and could persist a delta without its cross-writer base.
    #[serde(default)]
    pub delta_logging: bool,
    /// Record-level compression of redo frame bodies (RLE / zero
    /// suppression). Applied to full images and delta bodies alike, only
    /// when the compressed form is actually smaller.
    #[serde(default)]
    pub compress_records: bool,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            mode: DurabilityMode::Off,
            log_dir: None,
            group_commit_interval_ms: 10,
            delta_logging: false,
            compress_records: false,
        }
    }
}

impl DurabilityConfig {
    /// Durability disabled (volatile commits).
    pub fn off() -> Self {
        Self::default()
    }

    /// Buffered logging into `log_dir` without epoch-boundary fsyncs.
    pub fn buffered(log_dir: impl Into<String>) -> Self {
        Self {
            mode: DurabilityMode::Buffered,
            log_dir: Some(log_dir.into()),
            group_commit_interval_ms: 0,
            ..Self::default()
        }
    }

    /// Epoch-based group commit into `log_dir` with the default daemon
    /// period.
    pub fn epoch_sync(log_dir: impl Into<String>) -> Self {
        Self {
            mode: DurabilityMode::EpochSync,
            log_dir: Some(log_dir.into()),
            group_commit_interval_ms: 10,
            ..Self::default()
        }
    }

    /// Sets the group-commit daemon period (`0` = manual syncs only).
    pub fn with_interval_ms(mut self, ms: u64) -> Self {
        self.group_commit_interval_ms = ms;
        self
    }

    /// Enables or disables field-level delta redo logging (see
    /// [`DurabilityConfig::delta_logging`]).
    pub fn with_delta_logging(mut self, on: bool) -> Self {
        self.delta_logging = on;
        self
    }

    /// Enables or disables record-level RLE compression of redo frame
    /// bodies (see [`DurabilityConfig::compress_records`]).
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compress_records = on;
        self
    }

    /// True when logging is enabled.
    pub fn is_enabled(&self) -> bool {
        self.mode != DurabilityMode::Off
    }

    /// Resolves the configured log directory, reporting a consistent error
    /// when durability is enabled without one.
    pub fn log_dir_path(&self) -> std::io::Result<std::path::PathBuf> {
        self.log_dir
            .as_deref()
            .map(std::path::PathBuf::from)
            .ok_or_else(|| std::io::Error::other("durability enabled but log_dir is unset"))
    }
}

/// Background-checkpointing section of a [`DeploymentConfig`]. Only
/// meaningful when durability is enabled: a checkpoint bounds recovery time
/// by the snapshot size plus the log tail written since it, instead of the
/// whole log history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Take a background checkpoint every this many epochs. `0` disables the
    /// background checkpointer; checkpoints then happen only on explicit
    /// `ReactDB::checkpoint_now` calls.
    pub interval_epochs: u64,
    /// Keys captured per table read-section during the snapshot walk. Larger
    /// chunks checkpoint faster; smaller chunks bound how long a chunk
    /// collection can delay concurrent commits.
    pub chunk_size: usize,
    /// Size-based trigger: also take a background checkpoint whenever this
    /// many redo-log bytes have been appended since the last completed one,
    /// so log-heavy workloads checkpoint by volume, not wall clock. `0`
    /// disables the size trigger.
    #[serde(default)]
    pub max_log_bytes: u64,
    /// Parallel-capture writer threads: the table walk is partitioned
    /// across this many part-file writers. `0` means one per available
    /// core (capped by the table count).
    #[serde(default)]
    pub workers: usize,
    /// Recovery replay workers: log records fan out to this many threads
    /// keyed by reactor (same-reactor records stay ordered within one
    /// worker). `0` means one per available core.
    #[serde(default)]
    pub replay_workers: usize,
    /// Delta-checkpoint chain length: every `full_every`-th checkpoint is a
    /// full snapshot (the chain root); the ones in between capture only
    /// rows dirtied since the previous checkpoint. `0` or `1` makes every
    /// checkpoint full (deltas disabled).
    #[serde(default)]
    pub full_every: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self {
            interval_epochs: 0,
            chunk_size: 256,
            max_log_bytes: 0,
            workers: 0,
            replay_workers: 0,
            full_every: 0,
        }
    }
}

impl CheckpointConfig {
    /// Background checkpoints disabled (manual `checkpoint_now` only).
    pub fn manual() -> Self {
        Self::default()
    }

    /// Background checkpoint every `epochs` epochs.
    pub fn every_epochs(epochs: u64) -> Self {
        Self {
            interval_epochs: epochs,
            ..Self::default()
        }
    }

    /// Sets the snapshot chunk size (clamped to at least 1).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Sets the bytes-logged checkpoint trigger (`0` disables it).
    pub fn with_max_log_bytes(mut self, bytes: u64) -> Self {
        self.max_log_bytes = bytes;
        self
    }

    /// Sets the parallel-capture writer count (`0` = one per core).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the recovery replay-worker count (`0` = one per core).
    pub fn with_replay_workers(mut self, workers: usize) -> Self {
        self.replay_workers = workers;
        self
    }

    /// Enables delta checkpoints: a full chain root every `full_every`
    /// checkpoints, dirty-rows-only captures in between (`0` or `1`
    /// disables deltas).
    pub fn with_full_every(mut self, full_every: u64) -> Self {
        self.full_every = full_every;
        self
    }

    /// True when delta checkpoints are enabled.
    pub fn delta_checkpoints(&self) -> bool {
        self.full_every >= 2
    }

    /// True when the background checkpoint daemon should run (an epoch
    /// interval or a bytes-logged trigger is configured).
    pub fn is_periodic(&self) -> bool {
        self.interval_epochs > 0 || self.max_log_bytes > 0
    }
}

/// Replication section of a [`DeploymentConfig`]: log-shipping knobs used
/// by the server's replication stream (primary side) and the follower's
/// apply loop. Only meaningful when durability is enabled — the shipped
/// stream *is* the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// Largest file chunk (bytes) shipped per replication frame. Clamped
    /// well under the wire protocol's 1 MiB frame cap.
    pub chunk_bytes: usize,
    /// Primary-side poll period (milliseconds) for new durable log bytes
    /// when the shipping cursor has caught up.
    pub poll_interval_ms: u64,
    /// Replication quorum: how many followers must durably apply a commit
    /// epoch before the primary acknowledges it at
    /// `AckLevel::Replicated` — so a replicated ack means "durable on at
    /// least `quorum + 1` nodes". `0` (the value a pre-quorum config file
    /// deserializes to) is read as 1; see
    /// [`ReplicationConfig::effective_quorum`].
    #[serde(default)]
    pub quorum: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            chunk_bytes: 256 * 1024,
            poll_interval_ms: 2,
            quorum: 1,
        }
    }
}

impl ReplicationConfig {
    /// Sets the per-frame shipping chunk size (clamped to at least 4 KiB).
    pub fn with_chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes.max(4 * 1024);
        self
    }

    /// Sets the caught-up poll period in milliseconds.
    pub fn with_poll_interval_ms(mut self, ms: u64) -> Self {
        self.poll_interval_ms = ms;
        self
    }

    /// Sets the replicated-ack quorum (clamped to at least 1).
    pub fn with_quorum(mut self, quorum: usize) -> Self {
        self.quorum = quorum.max(1);
        self
    }

    /// The quorum consumers must honour: at least 1, treating the
    /// serde-default `0` of an old config file as the historical
    /// single-follower behaviour.
    pub fn effective_quorum(&self) -> usize {
        self.quorum.max(1)
    }
}

/// Observability section of a [`DeploymentConfig`]: per-phase latency
/// histograms and ring-buffer event tracing. On by default — the hot-path
/// cost is a clock read and a relaxed atomic add per phase — and reducible
/// to a single branch with [`TracingConfig::off`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracingConfig {
    /// Master switch. When off, no timestamps are taken, no histograms are
    /// recorded and no trace events are buffered.
    pub enabled: bool,
    /// Trace-event slots per ring (one ring per executor plus one shared
    /// ring for daemons and client threads), rounded up to a power of two.
    pub ring_capacity: usize,
    /// Committed root transactions slower than this (execute + commit, in
    /// microseconds) additionally emit a slow-transaction trace event with
    /// a per-phase breakdown. `0` captures every commit.
    pub slow_txn_threshold_us: u64,
}

impl Default for TracingConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            ring_capacity: 1024,
            slow_txn_threshold_us: 1_000,
        }
    }
}

impl TracingConfig {
    /// Tracing disabled: every observability entry point reduces to a
    /// branch on a `bool`.
    pub fn off() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Sets the per-ring trace-event capacity.
    pub fn with_ring_capacity(mut self, slots: usize) -> Self {
        self.ring_capacity = slots;
        self
    }

    /// Sets the slow-transaction capture threshold in microseconds.
    pub fn with_slow_txn_threshold_us(mut self, us: u64) -> Self {
        self.slow_txn_threshold_us = us;
        self
    }
}

/// A complete deployment: strategy plus knobs shared by all strategies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// The architecture strategy.
    pub strategy: DeploymentStrategy,
    /// Default multi-programming level per executor for the non-custom
    /// strategies.
    pub default_mpl: usize,
    /// Durability policy (off by default, matching the paper's in-memory
    /// evaluation).
    pub durability: DurabilityConfig,
    /// Background checkpointing policy (off by default; requires
    /// durability).
    pub checkpoint: CheckpointConfig,
    /// Observability policy (tracing on by default).
    #[serde(default)]
    pub tracing: TracingConfig,
    /// Log-shipping replication knobs (defaults are fine for most
    /// deployments; only consulted when a replication stream is running).
    #[serde(default)]
    pub replication: ReplicationConfig,
}

impl DeploymentConfig {
    /// Shared-everything deployment without affinity (S1).
    pub fn shared_everything_without_affinity(executors: usize) -> Self {
        Self {
            strategy: DeploymentStrategy::SharedEverythingWithoutAffinity { executors },
            default_mpl: 1,
            durability: DurabilityConfig::default(),
            checkpoint: CheckpointConfig::default(),
            tracing: TracingConfig::default(),
            replication: ReplicationConfig::default(),
        }
    }

    /// Shared-everything deployment with affinity routing (S2).
    pub fn shared_everything_with_affinity(executors: usize) -> Self {
        Self {
            strategy: DeploymentStrategy::SharedEverythingWithAffinity { executors },
            default_mpl: 1,
            durability: DurabilityConfig::default(),
            checkpoint: CheckpointConfig::default(),
            tracing: TracingConfig::default(),
            replication: ReplicationConfig::default(),
        }
    }

    /// Shared-nothing deployment (S3); whether programs run `sync` or `async`
    /// is a property of the application programs, not of the deployment.
    pub fn shared_nothing(executors: usize) -> Self {
        Self {
            strategy: DeploymentStrategy::SharedNothing { executors },
            default_mpl: 4,
            durability: DurabilityConfig::default(),
            checkpoint: CheckpointConfig::default(),
            tracing: TracingConfig::default(),
            replication: ReplicationConfig::default(),
        }
    }

    /// Sets the default multi-programming level.
    pub fn with_mpl(mut self, mpl: usize) -> Self {
        self.default_mpl = mpl.max(1);
        self
    }

    /// Sets the durability policy.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = durability;
        self
    }

    /// Sets the background-checkpointing policy.
    pub fn with_checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = checkpoint;
        self
    }

    /// Sets the observability policy.
    pub fn with_tracing(mut self, tracing: TracingConfig) -> Self {
        self.tracing = tracing;
        self
    }

    /// Sets the replication knobs.
    pub fn with_replication(mut self, replication: ReplicationConfig) -> Self {
        self.replication = replication;
        self
    }

    /// Number of transaction executors in this deployment.
    pub fn executor_count(&self) -> usize {
        match &self.strategy {
            DeploymentStrategy::SharedEverythingWithoutAffinity { executors }
            | DeploymentStrategy::SharedEverythingWithAffinity { executors }
            | DeploymentStrategy::SharedNothing { executors } => *executors,
            DeploymentStrategy::Custom { executors, .. } => executors.len(),
        }
    }

    /// Number of containers in this deployment.
    pub fn container_count(&self) -> usize {
        match &self.strategy {
            DeploymentStrategy::SharedEverythingWithoutAffinity { .. }
            | DeploymentStrategy::SharedEverythingWithAffinity { .. } => 1,
            DeploymentStrategy::SharedNothing { executors } => *executors,
            DeploymentStrategy::Custom { executors, .. } => executors
                .iter()
                .map(|e| e.container.raw() + 1)
                .max()
                .unwrap_or(0) as usize,
        }
    }

    /// Router policy of this deployment.
    pub fn router_policy(&self) -> RouterPolicy {
        match &self.strategy {
            DeploymentStrategy::SharedEverythingWithoutAffinity { .. } => RouterPolicy::RoundRobin,
            DeploymentStrategy::SharedEverythingWithAffinity { .. }
            | DeploymentStrategy::SharedNothing { .. } => RouterPolicy::Affinity,
            DeploymentStrategy::Custom { router, .. } => *router,
        }
    }

    /// Maps a reactor (by dense id) to the container that hosts it, given the
    /// total number of reactors in the database. Non-custom strategies use
    /// the paper's range/affinity mapping: shared-everything puts everything
    /// in container 0; shared-nothing assigns reactor `r` to container
    /// `r % executors` so that reactors spread evenly.
    pub fn container_of_reactor(&self, reactor_idx: usize, _total_reactors: usize) -> ContainerId {
        match &self.strategy {
            DeploymentStrategy::SharedEverythingWithoutAffinity { .. }
            | DeploymentStrategy::SharedEverythingWithAffinity { .. } => ContainerId(0),
            DeploymentStrategy::SharedNothing { executors } => {
                ContainerId((reactor_idx % executors.max(&1)) as u64)
            }
            DeploymentStrategy::Custom { container_of, .. } => container_of
                .get(reactor_idx)
                .copied()
                .unwrap_or(ContainerId(
                    (reactor_idx % container_of.len().max(1)) as u64,
                )),
        }
    }

    /// Expands the deployment into the per-executor configuration list.
    pub fn executor_configs(&self) -> Vec<ExecutorConfig> {
        match &self.strategy {
            DeploymentStrategy::SharedEverythingWithoutAffinity { executors }
            | DeploymentStrategy::SharedEverythingWithAffinity { executors } => (0..*executors)
                .map(|i| ExecutorConfig {
                    id: ExecutorId(i as u64),
                    container: ContainerId(0),
                    mpl: self.default_mpl,
                })
                .collect(),
            DeploymentStrategy::SharedNothing { executors } => (0..*executors)
                .map(|i| ExecutorConfig {
                    id: ExecutorId(i as u64),
                    container: ContainerId(i as u64),
                    mpl: self.default_mpl,
                })
                .collect(),
            DeploymentStrategy::Custom { executors, .. } => executors.clone(),
        }
    }

    /// Serializes this deployment to a JSON configuration file string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("deployment config serializes")
    }

    /// Parses a deployment from a JSON configuration file string.
    pub fn from_json(text: &str) -> std::result::Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_shapes() {
        let s1 = DeploymentConfig::shared_everything_without_affinity(4);
        assert_eq!(s1.executor_count(), 4);
        assert_eq!(s1.container_count(), 1);
        assert_eq!(s1.router_policy(), RouterPolicy::RoundRobin);

        let s2 = DeploymentConfig::shared_everything_with_affinity(8);
        assert_eq!(s2.container_count(), 1);
        assert_eq!(s2.router_policy(), RouterPolicy::Affinity);

        let s3 = DeploymentConfig::shared_nothing(8);
        assert_eq!(s3.container_count(), 8);
        assert_eq!(s3.executor_count(), 8);
        assert_eq!(s3.router_policy(), RouterPolicy::Affinity);
    }

    #[test]
    fn reactor_to_container_mapping() {
        let s3 = DeploymentConfig::shared_nothing(4);
        assert_eq!(s3.container_of_reactor(0, 8), ContainerId(0));
        assert_eq!(s3.container_of_reactor(5, 8), ContainerId(1));
        let s2 = DeploymentConfig::shared_everything_with_affinity(4);
        assert_eq!(s2.container_of_reactor(5, 8), ContainerId(0));
    }

    #[test]
    fn executor_configs_are_dense() {
        let cfg = DeploymentConfig::shared_nothing(3).with_mpl(2);
        let execs = cfg.executor_configs();
        assert_eq!(execs.len(), 3);
        assert_eq!(execs[2].id, ExecutorId(2));
        assert_eq!(execs[2].container, ContainerId(2));
        assert_eq!(execs[2].mpl, 2);
    }

    #[test]
    fn json_roundtrip_preserves_config() {
        let cfg = DeploymentConfig::shared_nothing(7)
            .with_mpl(3)
            .with_checkpoint(CheckpointConfig::every_epochs(64).with_chunk_size(128));
        let text = cfg.to_json();
        let back = DeploymentConfig::from_json(&text).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn checkpoint_config_defaults_and_builders() {
        let off = CheckpointConfig::default();
        assert!(!off.is_periodic());
        assert_eq!(off, CheckpointConfig::manual());
        let periodic = CheckpointConfig::every_epochs(16).with_chunk_size(0);
        assert!(periodic.is_periodic());
        assert_eq!(periodic.interval_epochs, 16);
        assert_eq!(periodic.chunk_size, 1, "chunk size clamps to at least 1");
        let sized = CheckpointConfig::manual().with_max_log_bytes(1 << 20);
        assert!(
            sized.is_periodic(),
            "the bytes-logged trigger alone warrants a daemon"
        );
        assert!(!CheckpointConfig::default().delta_checkpoints());
        assert!(!CheckpointConfig::manual()
            .with_full_every(1)
            .delta_checkpoints());
        let parallel = CheckpointConfig::manual()
            .with_workers(4)
            .with_replay_workers(2)
            .with_full_every(8);
        assert_eq!(parallel.workers, 4);
        assert_eq!(parallel.replay_workers, 2);
        assert!(parallel.delta_checkpoints());
        assert_eq!(
            DeploymentConfig::shared_nothing(2).checkpoint,
            CheckpointConfig::default(),
            "checkpointing is off unless configured"
        );
    }

    #[test]
    fn custom_mapping_is_respected() {
        let cfg = DeploymentConfig {
            strategy: DeploymentStrategy::Custom {
                router: RouterPolicy::Affinity,
                executors: vec![
                    ExecutorConfig {
                        id: ExecutorId(0),
                        container: ContainerId(0),
                        mpl: 1,
                    },
                    ExecutorConfig {
                        id: ExecutorId(1),
                        container: ContainerId(1),
                        mpl: 1,
                    },
                ],
                container_of: vec![ContainerId(0), ContainerId(0), ContainerId(1)],
            },
            default_mpl: 1,
            durability: DurabilityConfig::default(),
            checkpoint: CheckpointConfig::default(),
            tracing: TracingConfig::default(),
            replication: ReplicationConfig::default(),
        };
        assert_eq!(cfg.container_count(), 2);
        assert_eq!(cfg.container_of_reactor(2, 3), ContainerId(1));
        assert_eq!(cfg.container_of_reactor(1, 3), ContainerId(0));
    }

    #[test]
    fn durability_delta_and_compression_builders_roundtrip() {
        let durability = DurabilityConfig::epoch_sync("/tmp/x")
            .with_delta_logging(true)
            .with_compression(true);
        assert!(durability.delta_logging && durability.compress_records);
        assert!(
            !DurabilityConfig::off().delta_logging && !DurabilityConfig::off().compress_records,
            "delta logging and compression are opt-in"
        );
        let cfg = DeploymentConfig::shared_nothing(2).with_durability(durability);
        let back = DeploymentConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn config_json_written_before_the_delta_knobs_still_parses() {
        // Serialize, then strip the new fields as an old config file would
        // lack them: `#[serde(default)]` must fill them in as off.
        let cfg = DeploymentConfig::shared_nothing(2)
            .with_durability(DurabilityConfig::epoch_sync("/tmp/x"));
        let json = cfg.to_json();
        let kept: Vec<&str> = json
            .lines()
            .filter(|l| !l.contains("delta_logging") && !l.contains("compress_records"))
            .collect();
        // Stripping the last fields of an object leaves a trailing comma;
        // drop it where the next kept line closes the object.
        let old_json: String = kept
            .iter()
            .enumerate()
            .map(|(i, line)| {
                let closes_next = kept
                    .get(i + 1)
                    .is_some_and(|next| next.trim_start().starts_with('}'));
                if closes_next {
                    line.trim_end().trim_end_matches(',').to_owned()
                } else {
                    (*line).to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back = DeploymentConfig::from_json(&old_json).unwrap();
        assert_eq!(back, cfg, "missing knobs default to off");
    }

    #[test]
    fn config_json_written_before_the_parallel_checkpoint_knobs_still_parses() {
        // Same exercise for the parallel/delta checkpoint fields: a config
        // file from before they existed must parse with them defaulted off.
        let cfg = DeploymentConfig::shared_nothing(2)
            .with_checkpoint(CheckpointConfig::every_epochs(8).with_chunk_size(64));
        let json = cfg.to_json();
        let kept: Vec<&str> = json
            .lines()
            .filter(|l| {
                !l.contains("max_log_bytes")
                    && !l.contains("\"workers\"")
                    && !l.contains("replay_workers")
                    && !l.contains("full_every")
            })
            .collect();
        let old_json: String = kept
            .iter()
            .enumerate()
            .map(|(i, line)| {
                let closes_next = kept
                    .get(i + 1)
                    .is_some_and(|next| next.trim_start().starts_with('}'));
                if closes_next {
                    line.trim_end().trim_end_matches(',').to_owned()
                } else {
                    (*line).to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back = DeploymentConfig::from_json(&old_json).unwrap();
        assert_eq!(back, cfg, "missing checkpoint knobs default to off");
    }

    #[test]
    fn tracing_config_defaults_and_builders() {
        let on = TracingConfig::default();
        assert!(on.enabled);
        assert_eq!(on.ring_capacity, 1024);
        assert_eq!(on.slow_txn_threshold_us, 1_000);
        let off = TracingConfig::off();
        assert!(!off.enabled);
        let tuned = TracingConfig::default()
            .with_ring_capacity(64)
            .with_slow_txn_threshold_us(0);
        assert_eq!(tuned.ring_capacity, 64);
        assert_eq!(tuned.slow_txn_threshold_us, 0);
        let cfg = DeploymentConfig::shared_nothing(2).with_tracing(off);
        let back = DeploymentConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn config_json_written_before_the_tracing_section_still_parses() {
        // Serialize, then excise the whole `tracing` object as an old
        // config file would lack it: `#[serde(default)]` must fill it in.
        let cfg = DeploymentConfig::shared_nothing(2)
            .with_durability(DurabilityConfig::epoch_sync("/tmp/x"));
        let json = cfg.to_json();
        let lines: Vec<&str> = json.lines().collect();
        let start = lines
            .iter()
            .position(|l| l.contains("\"tracing\""))
            .expect("tracing section serialized");
        // The tracing object nests nothing, so its first closing brace at
        // or after `start` ends it.
        let end = (start..lines.len())
            .find(|i| *i > start && lines[*i].trim_start().starts_with('}'))
            .unwrap();
        let kept: Vec<&str> = lines[..start]
            .iter()
            .chain(lines[end + 1..].iter())
            .copied()
            .collect();
        let old_json: String = kept
            .iter()
            .enumerate()
            .map(|(i, line)| {
                let closes_next = kept
                    .get(i + 1)
                    .is_some_and(|next| next.trim_start().starts_with('}'));
                if closes_next {
                    line.trim_end().trim_end_matches(',').to_owned()
                } else {
                    (*line).to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!old_json.contains("tracing"));
        let back = DeploymentConfig::from_json(&old_json).unwrap();
        assert_eq!(back, cfg, "missing tracing section defaults to on");
    }

    #[test]
    fn config_json_written_before_the_replication_section_still_parses() {
        // Same excision exercise for the `replication` object: a config
        // file from before log shipping existed must parse with defaults.
        let cfg = DeploymentConfig::shared_nothing(2)
            .with_durability(DurabilityConfig::epoch_sync("/tmp/x"));
        let json = cfg.to_json();
        let lines: Vec<&str> = json.lines().collect();
        let start = lines
            .iter()
            .position(|l| l.contains("\"replication\""))
            .expect("replication section serialized");
        let end = (start..lines.len())
            .find(|i| *i > start && lines[*i].trim_start().starts_with('}'))
            .unwrap();
        let kept: Vec<&str> = lines[..start]
            .iter()
            .chain(lines[end + 1..].iter())
            .copied()
            .collect();
        let old_json: String = kept
            .iter()
            .enumerate()
            .map(|(i, line)| {
                let closes_next = kept
                    .get(i + 1)
                    .is_some_and(|next| next.trim_start().starts_with('}'));
                if closes_next {
                    line.trim_end().trim_end_matches(',').to_owned()
                } else {
                    (*line).to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!old_json.contains("replication"));
        let back = DeploymentConfig::from_json(&old_json).unwrap();
        assert_eq!(back, cfg, "missing replication section defaults");
        let tuned = ReplicationConfig::default()
            .with_chunk_bytes(1024)
            .with_poll_interval_ms(7);
        assert_eq!(tuned.chunk_bytes, 4 * 1024, "chunk size clamps to 4 KiB");
        assert_eq!(tuned.poll_interval_ms, 7);
        let cfg2 = DeploymentConfig::shared_nothing(2).with_replication(tuned);
        let back2 = DeploymentConfig::from_json(&cfg2.to_json()).unwrap();
        assert_eq!(cfg2, back2);
    }

    #[test]
    fn config_json_written_before_the_quorum_knob_still_parses() {
        // A config file from before quorum acks has a replication section
        // without the `quorum` field: serde defaults it to 0, which every
        // consumer reads as 1 (the historical any-one-follower gate).
        let cfg = DeploymentConfig::shared_nothing(2)
            .with_replication(ReplicationConfig::default().with_chunk_bytes(8 * 1024));
        let json = cfg.to_json();
        let kept: Vec<&str> = json.lines().filter(|l| !l.contains("quorum")).collect();
        let old_json: String = kept
            .iter()
            .enumerate()
            .map(|(i, line)| {
                let closes_next = kept
                    .get(i + 1)
                    .is_some_and(|next| next.trim_start().starts_with('}'));
                if closes_next {
                    line.trim_end().trim_end_matches(',').to_owned()
                } else {
                    (*line).to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back = DeploymentConfig::from_json(&old_json).unwrap();
        assert_eq!(back.replication.quorum, 0, "missing knob deserializes to 0");
        assert_eq!(back.replication.effective_quorum(), 1, "and is read as 1");
        assert_eq!(back.replication.chunk_bytes, cfg.replication.chunk_bytes);

        let tuned = ReplicationConfig::default().with_quorum(0);
        assert_eq!(tuned.quorum, 1, "builder clamps to at least 1");
        let two = ReplicationConfig::default().with_quorum(2);
        assert_eq!(two.effective_quorum(), 2);
        let cfg2 = DeploymentConfig::shared_nothing(2).with_replication(two);
        assert_eq!(DeploymentConfig::from_json(&cfg2.to_json()).unwrap(), cfg2);
    }

    #[test]
    fn mpl_is_clamped_to_at_least_one() {
        let cfg = DeploymentConfig::shared_nothing(2).with_mpl(0);
        assert_eq!(cfg.default_mpl, 1);
    }
}
