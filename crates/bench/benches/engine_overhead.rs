//! Engine-level benchmarks on the real runtime (Appendix F.3's
//! containerization-overhead measurement and a Smallbank multi-transfer on
//! the live engine). Absolute numbers depend on the host; the interesting
//! quantity is the per-invocation overhead of an (almost) empty transaction.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use reactdb_common::{DeploymentConfig, TracingConfig, Value};
use reactdb_core::{ReactorDatabaseSpec, ReactorType};
use reactdb_engine::{Client, ReactDB};
use reactdb_workloads::smallbank;

fn empty_txn_db() -> ReactDB {
    let ty = ReactorType::new("Empty").with_procedure("noop", |_ctx, _args| Ok(Value::Null));
    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(ty);
    spec.add_reactor("empty-0", "Empty");
    ReactDB::boot(spec, DeploymentConfig::shared_everything_with_affinity(1))
}

fn bench_engine(c: &mut Criterion) {
    // Appendix F.3: overhead of an empty transaction invocation through the
    // full container/executor/commit path (client session API).
    let db = empty_txn_db();
    let client = db.client();
    c.bench_function("engine/empty_transaction_overhead", |b| {
        b.iter(|| client.invoke("empty-0", "noop", vec![]).unwrap())
    });

    // A size-3 multi-transfer (opt formulation) on the live engine under a
    // shared-nothing deployment.
    let customers = 16;
    let bank = ReactDB::boot(
        smallbank::spec(customers),
        DeploymentConfig::shared_nothing(4),
    );
    smallbank::load(&bank, customers).unwrap();
    let bank_client = bank.client();
    c.bench_function("engine/smallbank_multi_transfer_opt_size3", |b| {
        b.iter(|| {
            bank_client
                .invoke(
                    &smallbank::customer_name(0),
                    "multi_transfer_opt",
                    smallbank::multi_transfer_invocation(0, &[1, 2, 3], 0.01),
                )
                .unwrap()
        })
    });
}

/// Transactions per timed sample of the tracing-overhead measurement.
const OVERHEAD_BATCH: usize = 400;
/// Interleaved samples per variant; the minimum over these is compared.
const OVERHEAD_ROUNDS: usize = 7;
/// Hard ceiling on the tracing-on / tracing-off time ratio (the <5%
/// overhead guard of the observability layer).
const OVERHEAD_LIMIT: f64 = 1.05;

fn smallbank_db(tracing: TracingConfig) -> (ReactDB, Client) {
    let customers = 16;
    let db = ReactDB::boot(
        smallbank::spec(customers),
        DeploymentConfig::shared_nothing(4).with_tracing(tracing),
    );
    smallbank::load(&db, customers).unwrap();
    let client = db.client();
    (db, client)
}

/// Seconds for one batch of size-3 multi-transfers through the full
/// client/executor/commit path.
fn overhead_batch_secs(client: &Client) -> f64 {
    let started = Instant::now();
    for _ in 0..OVERHEAD_BATCH {
        client
            .invoke(
                &smallbank::customer_name(0),
                "multi_transfer_opt",
                smallbank::multi_transfer_invocation(0, &[1, 2, 3], 0.01),
            )
            .unwrap();
    }
    started.elapsed().as_secs_f64()
}

/// The observability overhead guard: the same Smallbank multi-transfer
/// workload on two identically deployed databases, one with tracing on
/// (the default) and one with `TracingConfig::off()`. Samples interleave
/// round-robin so CPU-frequency drift hits both variants equally, and the
/// best (minimum) sample per variant is compared — minimum time is the
/// standard low-noise estimator for this kind of A/B gate. Panics (failing
/// the bench job) when tracing costs more than 5%.
fn bench_tracing_overhead(c: &mut Criterion) {
    let (db_on, client_on) = smallbank_db(TracingConfig::default());
    let (_db_off, client_off) = smallbank_db(TracingConfig::off());

    // Warm both paths (thread spawn, table touch, allocator) before timing.
    overhead_batch_secs(&client_on);
    overhead_batch_secs(&client_off);

    let mut best_on = f64::MAX;
    let mut best_off = f64::MAX;
    for _ in 0..OVERHEAD_ROUNDS {
        best_off = best_off.min(overhead_batch_secs(&client_off));
        best_on = best_on.min(overhead_batch_secs(&client_on));
    }
    let ratio = best_on / best_off;
    println!(
        "engine/tracing_overhead: on {:.1}µs/txn, off {:.1}µs/txn, ratio {ratio:.4}",
        best_on / OVERHEAD_BATCH as f64 * 1e6,
        best_off / OVERHEAD_BATCH as f64 * 1e6,
    );
    assert!(
        ratio < OVERHEAD_LIMIT,
        "tracing hot path costs {:.1}% (limit {:.0}%)",
        (ratio - 1.0) * 100.0,
        (OVERHEAD_LIMIT - 1.0) * 100.0
    );

    // First datapoint of the commit-path latency trajectory: the
    // client-observed end-to-end percentiles from the tracing-on run
    // (single-threaded submission, so queueing is nil and session-wait is
    // the commit path).
    let snapshot = db_on.metrics();
    if let Some(h) = snapshot.histogram("phase_session_wait_ns") {
        emit_metric("engine/commit_path_p50_ns", h.p50_ns as f64, h.count);
        emit_metric("engine/commit_path_p99_ns", h.p99_ns as f64, h.count);
    }
    // As a percentage: the shim's writer keeps one decimal, which would
    // flatten a ratio like 1.013 to 1.0.
    emit_metric(
        "engine/tracing_overhead_pct",
        (ratio - 1.0) * 100.0,
        (OVERHEAD_BATCH * OVERHEAD_ROUNDS) as u64,
    );

    // Registered as a criterion benchmark too, so the ratio's inputs show
    // up alongside the other engine numbers in BENCH_results.json.
    c.bench_function("engine/multi_transfer_opt_tracing_on", |b| {
        b.iter(|| {
            client_on
                .invoke(
                    &smallbank::customer_name(0),
                    "multi_transfer_opt",
                    smallbank::multi_transfer_invocation(0, &[1, 2, 3], 0.01),
                )
                .unwrap()
        })
    });
}

/// Appends a machine-readable result line through the criterion shim's
/// JSON-lines writer (value carried in `ns_per_iter`), so CI's
/// `BENCH_results.json` records the commit-path percentiles and the
/// overhead ratio per commit.
fn emit_metric(name: &str, value: f64, iterations: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    criterion::append_json_line(&path, name, value, iterations);
}

criterion_group!(benches, bench_engine, bench_tracing_overhead);
criterion_main!(benches);
