//! Engine-level benchmarks on the real runtime (Appendix F.3's
//! containerization-overhead measurement and a Smallbank multi-transfer on
//! the live engine). Absolute numbers depend on the host; the interesting
//! quantity is the per-invocation overhead of an (almost) empty transaction.

use criterion::{criterion_group, criterion_main, Criterion};
use reactdb_common::{DeploymentConfig, Value};
use reactdb_core::{ReactorDatabaseSpec, ReactorType};
use reactdb_engine::ReactDB;
use reactdb_workloads::smallbank;

fn empty_txn_db() -> ReactDB {
    let ty = ReactorType::new("Empty").with_procedure("noop", |_ctx, _args| Ok(Value::Null));
    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(ty);
    spec.add_reactor("empty-0", "Empty");
    ReactDB::boot(spec, DeploymentConfig::shared_everything_with_affinity(1))
}

fn bench_engine(c: &mut Criterion) {
    // Appendix F.3: overhead of an empty transaction invocation through the
    // full container/executor/commit path (client session API).
    let db = empty_txn_db();
    let client = db.client();
    c.bench_function("engine/empty_transaction_overhead", |b| {
        b.iter(|| client.invoke("empty-0", "noop", vec![]).unwrap())
    });

    // A size-3 multi-transfer (opt formulation) on the live engine under a
    // shared-nothing deployment.
    let customers = 16;
    let bank = ReactDB::boot(
        smallbank::spec(customers),
        DeploymentConfig::shared_nothing(4),
    );
    smallbank::load(&bank, customers).unwrap();
    let bank_client = bank.client();
    c.bench_function("engine/smallbank_multi_transfer_opt_size3", |b| {
        b.iter(|| {
            bank_client
                .invoke(
                    &smallbank::customer_name(0),
                    "multi_transfer_opt",
                    smallbank::multi_transfer_invocation(0, &[1, 2, 3], 0.01),
                )
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
