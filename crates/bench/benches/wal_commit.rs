//! Durability-cost micro-benchmark: the same single-reactor deposit
//! workload on the live engine with durability off, buffered logging, and
//! epoch-based group commit. The interesting quantity is the overhead the
//! logging fast path (render redo records + buffered append under the
//! writer mutex) adds to a commit — with group commit it should be small,
//! because no disk I/O ever happens on the commit path.
//!
//! The `durable-ack` variant compares the two client acknowledgement modes
//! under EpochSync: serial `invoke` (validation-time ack, one round trip
//! per transaction) against pipelined `submit_batch` with `wait_durable`
//! on every handle (Silo-faithful durable ack, the group commit amortized
//! over the whole batch). Pipelining should win despite paying for
//! durability.
//!
//! The `delta` section measures what delta redo logging is for: an
//! update-heavy workload over *wide* rows (one small counter field changes
//! per transaction) with full-image logging vs. field-level delta logging.
//! Log bytes per committed transaction are recorded into `CRITERION_JSON`
//! (CI's `BENCH_results.json`), and the run **asserts** the ≥2x
//! bytes-per-txn reduction the delta format exists to deliver — byte
//! counts are deterministic, so this is a hard gate, not a flaky timing
//! check.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use reactdb_common::{DeploymentConfig, DurabilityConfig, Key, Value};
use reactdb_core::{ReactorDatabaseSpec, ReactorType};
use reactdb_engine::{Call, ReactDB};
use reactdb_storage::{ColumnType, RelationDef, Schema, Tuple};
use reactdb_workloads::smallbank::{self, customer_name};

const CUSTOMERS: usize = 8;
/// Transactions per durable-ack batch.
const BATCH: usize = 256;

fn bench_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("reactdb-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn boot(durability: DurabilityConfig) -> ReactDB {
    let config = DeploymentConfig::shared_nothing(2).with_durability(durability);
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();
    db
}

fn run_deposits(c: &mut Criterion, name: &str, db: &ReactDB) {
    c.bench_function(name, |b| {
        b.iter(|| {
            db.invoke(
                &customer_name(0),
                "deposit_checking",
                vec![Value::Float(0.01)],
            )
            .unwrap()
        })
    });
}

fn bench_wal(c: &mut Criterion) {
    let off = boot(DurabilityConfig::off());
    run_deposits(c, "wal/deposit_durability_off", &off);
    drop(off);

    let buffered_dir = bench_dir("buffered");
    let buffered = boot(DurabilityConfig::buffered(&buffered_dir));
    run_deposits(c, "wal/deposit_buffered", &buffered);
    drop(buffered);
    let _ = std::fs::remove_dir_all(&buffered_dir);

    // Group commit with the default 10 ms daemon: commits only pay the
    // buffered append; the daemon fsyncs on epoch boundaries concurrently.
    let sync_dir = bench_dir("epoch-sync");
    let epoch_sync = boot(DurabilityConfig::epoch_sync(&sync_dir));
    run_deposits(c, "wal/deposit_epoch_sync_group_commit", &epoch_sync);
    let synced = epoch_sync.stats().log_syncs();
    let bytes = epoch_sync.stats().log_bytes();
    drop(epoch_sync);
    println!("wal/deposit_epoch_sync_group_commit: {synced} group commits, {bytes} log bytes");
    let _ = std::fs::remove_dir_all(&sync_dir);
}

/// One batch of deposits, spread round-robin over every customer reactor
/// so a shared-nothing deployment executes across all containers.
fn batch_calls() -> Vec<Call> {
    (0..BATCH)
        .map(|i| {
            Call::new(
                customer_name(i % CUSTOMERS),
                "deposit_checking",
                vec![Value::Float(0.01)],
            )
        })
        .collect()
}

/// Serial validation-time acknowledgement: one blocking `invoke` per
/// transaction (no durability wait — the historical client semantics).
fn run_serial_invoke(db: &ReactDB) {
    let client = db.client();
    for call in batch_calls() {
        client.invoke(&call.reactor, &call.proc, call.args).unwrap();
    }
}

/// Pipelined durable acknowledgement: the whole batch is in flight at
/// once, then every handle demands `wait_durable` — the group commit is
/// paid once per batch, not once per transaction.
fn run_pipelined_durable(db: &ReactDB) {
    let client = db.client();
    let handles = client.submit_batch(batch_calls()).unwrap();
    for handle in handles.iter().rev() {
        // Reverse order: the last-submitted handle usually carries the
        // highest commit epoch, so its group commit covers the rest.
        handle.wait_durable().unwrap();
    }
}

fn bench_durable_ack(c: &mut Criterion) {
    // Interval 0: no daemon, so the durable path pays exactly the group
    // commits `wait_durable` kicks — the honest cost of durable
    // acknowledgement, deterministic across hosts. MPL 1 keeps same-reactor
    // deposits serial per executor, so the comparison measures pipelining
    // vs round trips rather than OCC retry behaviour.
    let dir = bench_dir("durable-ack");
    let config = DeploymentConfig::shared_nothing(2)
        .with_mpl(1)
        .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();

    c.bench_function("wal/durable_ack_serial_invoke", |b| {
        b.iter(|| run_serial_invoke(&db))
    });
    c.bench_function("wal/durable_ack_pipelined_batch", |b| {
        b.iter(|| run_pipelined_durable(&db))
    });

    // Headline comparison: pipelined submission with the *stronger*
    // durable guarantee must beat serial submission with the weaker one.
    let rounds = 8;
    let start = Instant::now();
    for _ in 0..rounds {
        run_serial_invoke(&db);
    }
    let serial = start.elapsed();
    let start = Instant::now();
    for _ in 0..rounds {
        run_pipelined_durable(&db);
    }
    let pipelined = start.elapsed();
    let txns = (rounds * BATCH) as f64;
    let serial_tps = txns / serial.as_secs_f64();
    let pipelined_tps = txns / pipelined.as_secs_f64();
    println!(
        "wal/durable-ack: serial invoke (validation ack) {serial_tps:.0} txn/s, \
         pipelined submit_batch + wait_durable {pipelined_tps:.0} txn/s \
         ({:.2}x, {} durable waits)",
        pipelined_tps / serial_tps,
        db.stats().durable_waits(),
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Delta logging: bytes per committed transaction on wide rows
// ---------------------------------------------------------------------------

/// Transactions per delta-vs-full measurement.
const DELTA_TXNS: usize = 512;
/// Width of each filler column (the part a full image re-logs every time).
const PAD: usize = 64;

/// A ledger reactor with one wide row: id, eight 64-byte filler columns,
/// and one counter. `bump` increments the counter — the canonical
/// small-field-update-over-wide-row shape (smallbank balances, TPC-C
/// stock/district counters, here exaggerated so the log-volume difference
/// is unmistakable).
fn ledger_spec() -> ReactorDatabaseSpec {
    let mut columns: Vec<(String, ColumnType)> = vec![("id".into(), ColumnType::Int)];
    for i in 0..8 {
        columns.push((format!("pad{i}"), ColumnType::Str));
    }
    columns.push(("counter".into(), ColumnType::Float));
    let column_refs: Vec<(&str, ColumnType)> =
        columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let ledger = ReactorType::new("Ledger")
        .with_relation(RelationDef::new("wide", Schema::of(&column_refs, &["id"])))
        .with_procedure("bump", |ctx, args| {
            let amount = args[0].as_float();
            let row = ctx.update_with("wide", &Key::Int(0), |t| {
                let arity = t.arity();
                let cur = t.at(arity - 1).as_float();
                t.values_mut()[arity - 1] = Value::Float(cur + amount);
            })?;
            Ok(Value::Float(row.at(row.arity() - 1).as_float()))
        });
    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(ledger);
    spec.add_reactor("ledger-0", "Ledger");
    spec
}

fn load_ledger(db: &ReactDB) {
    let mut values = vec![Value::Int(0)];
    for i in 0..8u8 {
        values.push(Value::Str(
            std::iter::repeat_n(char::from(b'a' + i), PAD).collect(),
        ));
    }
    values.push(Value::Float(0.0));
    db.load_row("ledger-0", "wide", Tuple::of(values)).unwrap();
}

/// Runs `DELTA_TXNS` counter bumps and returns the log bytes per committed
/// transaction (excluding the load).
fn measure_bytes_per_txn(durability: DurabilityConfig) -> f64 {
    let config = DeploymentConfig::shared_everything_with_affinity(1).with_durability(durability);
    let db = ReactDB::boot(ledger_spec(), config);
    load_ledger(&db);
    let base = db.stats().log_bytes();
    for _ in 0..DELTA_TXNS {
        db.invoke("ledger-0", "bump", vec![Value::Float(1.0)])
            .unwrap();
    }
    db.wal_sync().unwrap();
    let bytes = db.stats().log_bytes() - base;
    let saved = db.stats().log_bytes_saved();
    let deltas = db.stats().log_delta_records();
    drop(db);
    println!(
        "wal/delta: {bytes} log bytes over {DELTA_TXNS} txns \
         ({deltas} delta records, {saved} bytes saved)"
    );
    bytes as f64 / DELTA_TXNS as f64
}

/// Appends a machine-readable result line next to the criterion shim's
/// output (same JSON-lines schema and escaping — the shim's writer is
/// reused — with the value carried in `ns_per_iter`) so CI's
/// `BENCH_results.json` records the log-volume trajectory per commit.
fn emit_metric(name: &str, value: f64, iterations: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    criterion::append_json_line(&path, name, value, iterations as u64);
}

fn bench_delta_log_volume(c: &mut Criterion) {
    let full_dir = bench_dir("delta-off");
    let full = measure_bytes_per_txn(DurabilityConfig::epoch_sync(&full_dir).with_interval_ms(0));
    let _ = std::fs::remove_dir_all(&full_dir);

    let delta_dir = bench_dir("delta-on");
    let delta = measure_bytes_per_txn(
        DurabilityConfig::epoch_sync(&delta_dir)
            .with_interval_ms(0)
            .with_delta_logging(true),
    );
    let _ = std::fs::remove_dir_all(&delta_dir);

    let packed_dir = bench_dir("delta-compressed");
    let packed = measure_bytes_per_txn(
        DurabilityConfig::epoch_sync(&packed_dir)
            .with_interval_ms(0)
            .with_delta_logging(true)
            .with_compression(true),
    );
    let _ = std::fs::remove_dir_all(&packed_dir);

    println!(
        "wal/delta: log bytes per txn — full {full:.1}, delta {delta:.1}, \
         delta+rle {packed:.1} ({:.1}x reduction)",
        full / delta
    );
    emit_metric("wal/update_log_bytes_per_txn_full", full, DELTA_TXNS);
    emit_metric("wal/update_log_bytes_per_txn_delta", delta, DELTA_TXNS);
    emit_metric("wal/update_log_bytes_per_txn_delta_rle", packed, DELTA_TXNS);
    // The acceptance gate: the whole point of the format. Byte counts are
    // deterministic, so a regression here is a real format regression.
    assert!(
        full >= 2.0 * delta,
        "delta logging must at least halve log bytes per update txn on \
         wide rows: full {full:.1} vs delta {delta:.1}"
    );
    assert!(
        packed <= delta,
        "record compression must never grow the log: delta {delta:.1} vs \
         delta+rle {packed:.1}"
    );

    // Commit latency with the diff + delta encode on the hot path.
    let dir = bench_dir("delta-commit-latency");
    let db = ReactDB::boot(
        ledger_spec(),
        DeploymentConfig::shared_everything_with_affinity(1)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_delta_logging(true)),
    );
    load_ledger(&db);
    c.bench_function("wal/wide_row_bump_delta_logged", |b| {
        b.iter(|| {
            db.invoke("ledger-0", "bump", vec![Value::Float(0.5)])
                .unwrap()
        })
    });
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_wal,
    bench_durable_ack,
    bench_delta_log_volume
);
criterion_main!(benches);
