//! Durability-cost micro-benchmark: the same single-reactor deposit
//! workload on the live engine with durability off, buffered logging, and
//! epoch-based group commit. The interesting quantity is the overhead the
//! logging fast path (render redo records + buffered append under the
//! writer mutex) adds to a commit — with group commit it should be small,
//! because no disk I/O ever happens on the commit path.

use criterion::{criterion_group, criterion_main, Criterion};
use reactdb_common::{DeploymentConfig, DurabilityConfig, Value};
use reactdb_engine::ReactDB;
use reactdb_workloads::smallbank::{self, customer_name};

const CUSTOMERS: usize = 8;

fn bench_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("reactdb-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn boot(durability: DurabilityConfig) -> ReactDB {
    let config = DeploymentConfig::shared_nothing(2).with_durability(durability);
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();
    db
}

fn run_deposits(c: &mut Criterion, name: &str, db: &ReactDB) {
    c.bench_function(name, |b| {
        b.iter(|| {
            db.invoke(
                &customer_name(0),
                "deposit_checking",
                vec![Value::Float(0.01)],
            )
            .unwrap()
        })
    });
}

fn bench_wal(c: &mut Criterion) {
    let off = boot(DurabilityConfig::off());
    run_deposits(c, "wal/deposit_durability_off", &off);
    drop(off);

    let buffered_dir = bench_dir("buffered");
    let buffered = boot(DurabilityConfig::buffered(&buffered_dir));
    run_deposits(c, "wal/deposit_buffered", &buffered);
    drop(buffered);
    let _ = std::fs::remove_dir_all(&buffered_dir);

    // Group commit with the default 10 ms daemon: commits only pay the
    // buffered append; the daemon fsyncs on epoch boundaries concurrently.
    let sync_dir = bench_dir("epoch-sync");
    let epoch_sync = boot(DurabilityConfig::epoch_sync(&sync_dir));
    run_deposits(c, "wal/deposit_epoch_sync_group_commit", &epoch_sync);
    let synced = epoch_sync.stats().log_syncs();
    let bytes = epoch_sync.stats().log_bytes();
    drop(epoch_sync);
    println!("wal/deposit_epoch_sync_group_commit: {synced} group commits, {bytes} log bytes");
    let _ = std::fs::remove_dir_all(&sync_dir);
}

criterion_group!(benches, bench_wal);
criterion_main!(benches);
