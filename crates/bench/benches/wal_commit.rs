//! Durability-cost micro-benchmark: the same single-reactor deposit
//! workload on the live engine with durability off, buffered logging, and
//! epoch-based group commit. The interesting quantity is the overhead the
//! logging fast path (render redo records + buffered append under the
//! writer mutex) adds to a commit — with group commit it should be small,
//! because no disk I/O ever happens on the commit path.
//!
//! The `durable-ack` variant compares the two client acknowledgement modes
//! under EpochSync: serial `invoke` (validation-time ack, one round trip
//! per transaction) against pipelined `submit_batch` with `wait_durable`
//! on every handle (Silo-faithful durable ack, the group commit amortized
//! over the whole batch). Pipelining should win despite paying for
//! durability.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use reactdb_common::{DeploymentConfig, DurabilityConfig, Value};
use reactdb_engine::{Call, ReactDB};
use reactdb_workloads::smallbank::{self, customer_name};

const CUSTOMERS: usize = 8;
/// Transactions per durable-ack batch.
const BATCH: usize = 256;

fn bench_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("reactdb-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn boot(durability: DurabilityConfig) -> ReactDB {
    let config = DeploymentConfig::shared_nothing(2).with_durability(durability);
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();
    db
}

fn run_deposits(c: &mut Criterion, name: &str, db: &ReactDB) {
    c.bench_function(name, |b| {
        b.iter(|| {
            db.invoke(
                &customer_name(0),
                "deposit_checking",
                vec![Value::Float(0.01)],
            )
            .unwrap()
        })
    });
}

fn bench_wal(c: &mut Criterion) {
    let off = boot(DurabilityConfig::off());
    run_deposits(c, "wal/deposit_durability_off", &off);
    drop(off);

    let buffered_dir = bench_dir("buffered");
    let buffered = boot(DurabilityConfig::buffered(&buffered_dir));
    run_deposits(c, "wal/deposit_buffered", &buffered);
    drop(buffered);
    let _ = std::fs::remove_dir_all(&buffered_dir);

    // Group commit with the default 10 ms daemon: commits only pay the
    // buffered append; the daemon fsyncs on epoch boundaries concurrently.
    let sync_dir = bench_dir("epoch-sync");
    let epoch_sync = boot(DurabilityConfig::epoch_sync(&sync_dir));
    run_deposits(c, "wal/deposit_epoch_sync_group_commit", &epoch_sync);
    let synced = epoch_sync.stats().log_syncs();
    let bytes = epoch_sync.stats().log_bytes();
    drop(epoch_sync);
    println!("wal/deposit_epoch_sync_group_commit: {synced} group commits, {bytes} log bytes");
    let _ = std::fs::remove_dir_all(&sync_dir);
}

/// One batch of deposits, spread round-robin over every customer reactor
/// so a shared-nothing deployment executes across all containers.
fn batch_calls() -> Vec<Call> {
    (0..BATCH)
        .map(|i| {
            Call::new(
                customer_name(i % CUSTOMERS),
                "deposit_checking",
                vec![Value::Float(0.01)],
            )
        })
        .collect()
}

/// Serial validation-time acknowledgement: one blocking `invoke` per
/// transaction (no durability wait — the historical client semantics).
fn run_serial_invoke(db: &ReactDB) {
    let client = db.client();
    for call in batch_calls() {
        client.invoke(&call.reactor, &call.proc, call.args).unwrap();
    }
}

/// Pipelined durable acknowledgement: the whole batch is in flight at
/// once, then every handle demands `wait_durable` — the group commit is
/// paid once per batch, not once per transaction.
fn run_pipelined_durable(db: &ReactDB) {
    let client = db.client();
    let handles = client.submit_batch(batch_calls()).unwrap();
    for handle in handles.iter().rev() {
        // Reverse order: the last-submitted handle usually carries the
        // highest commit epoch, so its group commit covers the rest.
        handle.wait_durable().unwrap();
    }
}

fn bench_durable_ack(c: &mut Criterion) {
    // Interval 0: no daemon, so the durable path pays exactly the group
    // commits `wait_durable` kicks — the honest cost of durable
    // acknowledgement, deterministic across hosts. MPL 1 keeps same-reactor
    // deposits serial per executor, so the comparison measures pipelining
    // vs round trips rather than OCC retry behaviour.
    let dir = bench_dir("durable-ack");
    let config = DeploymentConfig::shared_nothing(2)
        .with_mpl(1)
        .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();

    c.bench_function("wal/durable_ack_serial_invoke", |b| {
        b.iter(|| run_serial_invoke(&db))
    });
    c.bench_function("wal/durable_ack_pipelined_batch", |b| {
        b.iter(|| run_pipelined_durable(&db))
    });

    // Headline comparison: pipelined submission with the *stronger*
    // durable guarantee must beat serial submission with the weaker one.
    let rounds = 8;
    let start = Instant::now();
    for _ in 0..rounds {
        run_serial_invoke(&db);
    }
    let serial = start.elapsed();
    let start = Instant::now();
    for _ in 0..rounds {
        run_pipelined_durable(&db);
    }
    let pipelined = start.elapsed();
    let txns = (rounds * BATCH) as f64;
    let serial_tps = txns / serial.as_secs_f64();
    let pipelined_tps = txns / pipelined.as_secs_f64();
    println!(
        "wal/durable-ack: serial invoke (validation ack) {serial_tps:.0} txn/s, \
         pipelined submit_batch + wait_durable {pipelined_tps:.0} txn/s \
         ({:.2}x, {} durable waits)",
        pipelined_tps / serial_tps,
        db.stats().durable_waits(),
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_wal, bench_durable_ack);
criterion_main!(benches);
