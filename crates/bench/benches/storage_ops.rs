//! Micro-benchmarks of the storage substrate: point reads, inserts and range
//! scans on a table with a secondary index.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use reactdb_common::{Key, Value};
use reactdb_storage::{ColumnType, Schema, Table, Tuple};
use std::sync::Arc;

fn table_with_rows(rows: i64) -> Arc<Table> {
    let schema = Schema::of(
        &[
            ("id", ColumnType::Int),
            ("grp", ColumnType::Int),
            ("val", ColumnType::Float),
        ],
        &["id"],
    );
    let table = Arc::new(Table::with_indexes(
        "bench",
        schema,
        &[vec!["grp".to_owned()]],
    ));
    for i in 0..rows {
        table
            .load_row(Tuple::of([
                Value::Int(i),
                Value::Int(i % 100),
                Value::Float(i as f64),
            ]))
            .unwrap();
    }
    table
}

fn bench_storage(c: &mut Criterion) {
    let table = table_with_rows(10_000);

    c.bench_function("storage/point_read", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            let record = table.get(&Key::Int(i)).unwrap();
            criterion::black_box(record.read_stable());
        })
    });

    c.bench_function("storage/range_scan_100", |b| {
        b.iter(|| {
            let hits = table.range(
                std::ops::Bound::Included(&Key::Int(500)),
                std::ops::Bound::Excluded(&Key::Int(600)),
            );
            criterion::black_box(hits.len());
        })
    });

    c.bench_function("storage/secondary_lookup", |b| {
        b.iter(|| criterion::black_box(table.secondary_lookup(0, &Key::Int(42)).len()))
    });

    // Keys must stay unique across criterion's warm-up and measurement
    // phases, so the counter lives outside the per-phase closure.
    let next_key = std::sync::atomic::AtomicI64::new(1_000_000);
    c.bench_function("storage/load_row", |b| {
        b.iter_batched(
            || {
                let next = next_key.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Tuple::of([Value::Int(next), Value::Int(next % 100), Value::Float(0.0)])
            },
            |row| table.load_row(row).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
