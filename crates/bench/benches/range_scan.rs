//! Micro-benchmarks of the phantom-safe scan pipeline: point gets vs
//! bounded scans vs full scans through the OCC layer (scan + node-set
//! bookkeeping + commit validation), with and without concurrent inserters
//! mutating the table.
//!
//! The interesting comparison: a bounded scan observes only the index nodes
//! covering its range, so its cost — and its abort exposure under
//! concurrent inserts — stays proportional to the window, while a full
//! scan observes every node and pays for (and conflicts with) the whole
//! key space, like the seed's full-lock scan path did.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use reactdb_common::{ContainerId, Key, Value};
use reactdb_storage::{ColumnType, Schema, Table, Tuple};
use reactdb_txn::{Coordinator, EpochManager, OccTxn, TidGen};

const ROWS: i64 = 10_000;

fn table_with_rows(rows: i64) -> Arc<Table> {
    let schema = Schema::of(
        &[("id", ColumnType::Int), ("val", ColumnType::Float)],
        &["id"],
    );
    let table = Arc::new(Table::new("bench", schema));
    for i in 0..rows {
        table
            .load_row(Tuple::of([Value::Int(i), Value::Float(i as f64)]))
            .unwrap();
    }
    table
}

/// Spawns a thread that keeps committing inserts of fresh high keys until
/// `stop` flips; returns its join handle.
fn spawn_inserter(
    table: Arc<Table>,
    epoch: Arc<EpochManager>,
    stop: Arc<AtomicBool>,
    next_key: Arc<AtomicI64>,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let gen = TidGen::new();
        let mut committed = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let key = next_key.fetch_add(1, Ordering::Relaxed);
            let mut txn = OccTxn::new(ContainerId(0));
            txn.insert(&table, Tuple::of([Value::Int(key), Value::Float(0.0)]))
                .unwrap();
            if Coordinator::commit(&mut [txn], &epoch, &gen).is_ok() {
                committed += 1;
            }
        }
        committed
    })
}

fn bench_range_scan(c: &mut Criterion) {
    let table = table_with_rows(ROWS);
    let epoch = EpochManager::new();
    let gen = TidGen::new();

    c.bench_function("range_scan/point_get_commit", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 7) % ROWS;
            let mut txn = OccTxn::new(ContainerId(0));
            criterion::black_box(txn.read(&table, &Key::Int(i)).unwrap());
            Coordinator::commit(&mut [txn], &epoch, &gen).unwrap();
        })
    });

    c.bench_function("range_scan/bounded_scan_100_commit", |b| {
        let mut lo = 0i64;
        b.iter(|| {
            lo = (lo + 97) % (ROWS - 100);
            let mut txn = OccTxn::new(ContainerId(0));
            let rows = txn
                .scan_range(
                    &table,
                    std::ops::Bound::Included(&Key::Int(lo)),
                    std::ops::Bound::Excluded(&Key::Int(lo + 100)),
                )
                .unwrap();
            criterion::black_box(rows.len());
            Coordinator::commit(&mut [txn], &epoch, &gen).unwrap();
        })
    });

    c.bench_function("range_scan/full_scan_commit", |b| {
        b.iter(|| {
            let mut txn = OccTxn::new(ContainerId(0));
            let rows = txn.scan(&table).unwrap();
            criterion::black_box(rows.len());
            Coordinator::commit(&mut [txn], &epoch, &gen).unwrap();
        })
    });

    // ---- The same scans racing a committed-insert stream. Bounded scans
    // over the stable prefix keep committing (the inserts hit other
    // nodes); full scans conflict and abort — both outcomes are measured.
    {
        let epoch = Arc::new(EpochManager::new());
        let stop = Arc::new(AtomicBool::new(false));
        let next_key = Arc::new(AtomicI64::new(1_000_000));
        let inserter = spawn_inserter(
            Arc::clone(&table),
            Arc::clone(&epoch),
            Arc::clone(&stop),
            Arc::clone(&next_key),
        );

        c.bench_function("range_scan/bounded_scan_100_with_inserters", |b| {
            let mut lo = 0i64;
            b.iter(|| {
                lo = (lo + 97) % (ROWS - 100);
                let mut txn = OccTxn::new(ContainerId(0));
                let rows = txn
                    .scan_range(
                        &table,
                        std::ops::Bound::Included(&Key::Int(lo)),
                        std::ops::Bound::Excluded(&Key::Int(lo + 100)),
                    )
                    .unwrap();
                criterion::black_box(rows.len());
                criterion::black_box(Coordinator::commit(&mut [txn], &epoch, &gen).is_ok());
            })
        });

        c.bench_function("range_scan/full_scan_with_inserters", |b| {
            b.iter(|| {
                let mut txn = OccTxn::new(ContainerId(0));
                let rows = txn.scan(&table).unwrap();
                criterion::black_box(rows.len());
                // Full scans observe the insert-churned tail node, so this
                // commit frequently phantom-aborts; the cost of detection
                // is part of what is measured.
                criterion::black_box(Coordinator::commit(&mut [txn], &epoch, &gen).is_ok());
            })
        });

        stop.store(true, Ordering::Relaxed);
        let committed = inserter.join().unwrap();
        println!("range_scan: concurrent inserter committed {committed} inserts");
    }
}

criterion_group!(benches, bench_range_scan);
criterion_main!(benches);
