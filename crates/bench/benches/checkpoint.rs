//! Checkpointing micro-benchmark: what a background checkpoint costs and
//! what it does to the commit fast path.
//!
//! * `checkpoint/snapshot_walk_10k` — the storage-level chunked snapshot
//!   walk over a 10k-row table (no I/O): the per-chunk read-section cost the
//!   checkpointer imposes on the index.
//! * `checkpoint/checkpoint_now` — a full checkpoint of a live SmallBank
//!   deployment (stable-epoch drain, fuzzy walk, fsync, manifest commit,
//!   rotation, truncation).
//! * `checkpoint/deposit_while_checkpointing` — commit latency under an
//!   aggressive background checkpoint daemon, to be compared with the
//!   `wal/deposit_epoch_sync_group_commit` baseline from the `wal_commit`
//!   bench: checkpoints run concurrently with commits, not stop-the-world.

use criterion::{criterion_group, criterion_main, Criterion};
use reactdb_common::{CheckpointConfig, DeploymentConfig, DurabilityConfig, Key, Value};
use reactdb_engine::ReactDB;
use reactdb_storage::{ColumnType, Schema, Table, Tuple};
use reactdb_workloads::smallbank::{self, customer_name};

const CUSTOMERS: usize = 8;
const WALK_ROWS: i64 = 10_000;
const CHUNK: usize = 256;

fn bench_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("reactdb-bench-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn bench_snapshot_walk(c: &mut Criterion) {
    let schema = Schema::of(
        &[("id", ColumnType::Int), ("balance", ColumnType::Float)],
        &["id"],
    );
    let table = Table::new("savings", schema);
    for i in 0..WALK_ROWS {
        table
            .load_row(Tuple::of([Value::Int(i), Value::Float(i as f64)]))
            .unwrap();
    }
    c.bench_function("checkpoint/snapshot_walk_10k", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            let mut cursor: Option<Key> = None;
            loop {
                let chunk = table.snapshot_chunk(cursor.as_ref(), CHUNK);
                rows += chunk.rows.len();
                match chunk.next {
                    Some(next) => cursor = Some(next),
                    None => break,
                }
            }
            assert_eq!(rows, WALK_ROWS as usize);
            rows
        })
    });
}

fn bench_checkpoint_now(c: &mut Criterion) {
    let dir = bench_dir("now");
    let config = DeploymentConfig::shared_nothing(2)
        .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();
    for i in 0..64 {
        db.invoke(
            &customer_name(i % CUSTOMERS),
            "deposit_checking",
            vec![Value::Float(0.01)],
        )
        .unwrap();
    }
    db.wal_sync().unwrap();
    c.bench_function("checkpoint/checkpoint_now", |b| {
        b.iter(|| db.checkpoint_now().unwrap().rows)
    });
    println!(
        "checkpoint/checkpoint_now: {} checkpoints, {} ckpt bytes, {} log bytes truncated",
        db.stats().checkpoints_taken(),
        db.stats().checkpoint_bytes(),
        db.stats().log_truncated_bytes(),
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_commits_under_checkpointing(c: &mut Criterion) {
    let dir = bench_dir("live");
    // Group-commit daemon + a checkpoint every 2 epochs: the commit path
    // below runs while checkpoints continuously walk the tables.
    let config = DeploymentConfig::shared_nothing(2)
        .with_durability(DurabilityConfig::epoch_sync(&dir))
        .with_checkpoint(CheckpointConfig::every_epochs(2).with_chunk_size(64));
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();
    c.bench_function("checkpoint/deposit_while_checkpointing", |b| {
        b.iter(|| {
            db.invoke(
                &customer_name(0),
                "deposit_checking",
                vec![Value::Float(0.01)],
            )
            .unwrap()
        })
    });
    println!(
        "checkpoint/deposit_while_checkpointing: {} checkpoints taken concurrently, \
         {} truncated segments",
        db.stats().checkpoints_taken(),
        db.stats().log_truncated_segments(),
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_snapshot_walk,
    bench_checkpoint_now,
    bench_commits_under_checkpointing
);
criterion_main!(benches);
