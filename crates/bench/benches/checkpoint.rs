//! Checkpointing micro-benchmark: what a background checkpoint costs and
//! what it does to the commit fast path.
//!
//! * `checkpoint/snapshot_walk_10k` — the storage-level chunked snapshot
//!   walk over a 10k-row table (no I/O): the per-chunk read-section cost the
//!   checkpointer imposes on the index.
//! * `checkpoint/checkpoint_now` — a full checkpoint of a live SmallBank
//!   deployment (stable-epoch drain, fuzzy walk, fsync, manifest commit,
//!   rotation, truncation).
//! * `checkpoint/deposit_while_checkpointing` — commit latency under an
//!   aggressive background checkpoint daemon, to be compared with the
//!   `wal/deposit_epoch_sync_group_commit` baseline from the `wal_commit`
//!   bench: checkpoints run concurrently with commits, not stop-the-world.
//! * `checkpoint/parallel_replay` — partitioned log replay of a
//!   multi-reactor log into fresh tables, 1 worker vs. 4 workers. The
//!   speedup is recorded as `wal/recovery_replay_speedup` and **asserted**
//!   ≥1.5x when `CRITERION_JSON` is set (CI runs on ≥4 cores).
//! * the delta-checkpoint section records `wal/delta_ckpt_bytes_ratio` —
//!   delta-checkpoint bytes over full-checkpoint bytes on a skewed update
//!   pattern (10% of keys dirty) — and asserts the ≤0.5x reduction delta
//!   capture exists to deliver. Byte counts are deterministic, so that
//!   gate is unconditional.

use std::path::Path;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use reactdb_common::{CheckpointConfig, DeploymentConfig, DurabilityConfig, Key, Value};
use reactdb_engine::ReactDB;
use reactdb_storage::{ColumnType, Schema, Table, TidWord, Tuple};
use reactdb_txn::{RedoPayload, RedoRecord};
use reactdb_workloads::smallbank::{self, customer_name};
use reactdb_workloads::ycsb;

const CUSTOMERS: usize = 8;
const WALK_ROWS: i64 = 10_000;
const CHUNK: usize = 256;

fn bench_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("reactdb-bench-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn bench_snapshot_walk(c: &mut Criterion) {
    let schema = Schema::of(
        &[("id", ColumnType::Int), ("balance", ColumnType::Float)],
        &["id"],
    );
    let table = Table::new("savings", schema);
    for i in 0..WALK_ROWS {
        table
            .load_row(Tuple::of([Value::Int(i), Value::Float(i as f64)]))
            .unwrap();
    }
    c.bench_function("checkpoint/snapshot_walk_10k", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            let mut cursor: Option<Key> = None;
            loop {
                let chunk = table.snapshot_chunk(cursor.as_ref(), CHUNK);
                rows += chunk.rows.len();
                match chunk.next {
                    Some(next) => cursor = Some(next),
                    None => break,
                }
            }
            assert_eq!(rows, WALK_ROWS as usize);
            rows
        })
    });
}

fn bench_checkpoint_now(c: &mut Criterion) {
    let dir = bench_dir("now");
    let config = DeploymentConfig::shared_nothing(2)
        .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();
    for i in 0..64 {
        db.invoke(
            &customer_name(i % CUSTOMERS),
            "deposit_checking",
            vec![Value::Float(0.01)],
        )
        .unwrap();
    }
    db.wal_sync().unwrap();
    c.bench_function("checkpoint/checkpoint_now", |b| {
        b.iter(|| db.checkpoint_now().unwrap().rows)
    });
    println!(
        "checkpoint/checkpoint_now: {} checkpoints, {} ckpt bytes, {} log bytes truncated",
        db.stats().checkpoints_taken(),
        db.stats().checkpoint_bytes(),
        db.stats().log_truncated_bytes(),
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_commits_under_checkpointing(c: &mut Criterion) {
    let dir = bench_dir("live");
    // Group-commit daemon + a checkpoint every 2 epochs: the commit path
    // below runs while checkpoints continuously walk the tables.
    let config = DeploymentConfig::shared_nothing(2)
        .with_durability(DurabilityConfig::epoch_sync(&dir))
        .with_checkpoint(CheckpointConfig::every_epochs(2).with_chunk_size(64));
    let db = ReactDB::boot(smallbank::spec(CUSTOMERS), config);
    smallbank::load(&db, CUSTOMERS).unwrap();
    c.bench_function("checkpoint/deposit_while_checkpointing", |b| {
        b.iter(|| {
            db.invoke(
                &customer_name(0),
                "deposit_checking",
                vec![Value::Float(0.01)],
            )
            .unwrap()
        })
    });
    println!(
        "checkpoint/deposit_while_checkpointing: {} checkpoints taken concurrently, \
         {} truncated segments",
        db.stats().checkpoints_taken(),
        db.stats().log_truncated_segments(),
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Appends a machine-readable result line next to the criterion shim's
/// output (same JSON-lines schema — the shim's writer is reused, with the
/// value carried in `ns_per_iter`) so CI's `BENCH_results.json` records the
/// recovery-bound trajectory.
fn emit_metric(name: &str, value: f64, iterations: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    criterion::append_json_line(&path, name, value, iterations as u64);
}

// ---------------------------------------------------------------------------
// Partitioned replay: 1 worker vs. N workers over a multi-reactor log
// ---------------------------------------------------------------------------

/// Reactors in the replay log — one lane-partitionable YCSB key reactor each.
const REPLAY_REACTORS: usize = 64;
/// Committed update transactions in the replay log (each writes one
/// ~100-byte row image).
const REPLAY_TXNS: usize = 6_400;
/// Worker count for the parallel leg.
const REPLAY_WORKERS: usize = 4;
/// Timing rounds per leg; the best round is used (replay work is
/// deterministic, so min filters scheduler noise).
const REPLAY_ROUNDS: usize = 5;

/// Commits `REPLAY_TXNS` updates spread over `REPLAY_REACTORS` reactors,
/// shuts the engine down, and decodes the surviving log into replayable
/// batches — the exact input `ReactDB::boot` hands to partitioned replay.
fn recovered_replay_log(dir: &str) -> reactdb_wal::RecoveredLog {
    let config = DeploymentConfig::shared_nothing(4)
        .with_durability(DurabilityConfig::epoch_sync(dir).with_interval_ms(0));
    let db = ReactDB::boot(ycsb::spec(REPLAY_REACTORS), config);
    ycsb::load(&db, REPLAY_REACTORS).unwrap();
    for i in 0..REPLAY_TXNS {
        db.invoke(
            &ycsb::key_name(i % REPLAY_REACTORS),
            "update",
            vec![Value::Str("r".repeat(8))],
        )
        .unwrap();
    }
    db.wal_sync().unwrap();
    drop(db);
    let mode = DurabilityConfig::epoch_sync(dir).mode;
    reactdb_wal::recover_and_compact(Path::new(dir), mode).unwrap()
}

fn replay_schema() -> Schema {
    Schema::of(
        &[("id", ColumnType::Int), ("field", ColumnType::Str)],
        &["id"],
    )
}

/// Replays the whole log into fresh per-reactor tables with `workers`
/// replay lanes and returns the elapsed time (tables are built outside the
/// timed region).
fn replay_once(log: &reactdb_wal::RecoveredLog, workers: usize) -> Duration {
    let schema = replay_schema();
    let tables: Vec<Table> = (0..REPLAY_REACTORS)
        .map(|_| Table::new("usertable", schema.clone()))
        .collect();
    let replay_one = |tid: TidWord, record: &RedoRecord| -> std::io::Result<()> {
        let Some(table) = tables.get(record.reactor.index()) else {
            return Ok(());
        };
        match &record.payload {
            RedoPayload::Full(image) => {
                table.replay(&record.key, Some(image), tid);
            }
            RedoPayload::Delete => {
                table.replay(&record.key, None, tid);
            }
            RedoPayload::Delta(row_delta) => {
                table
                    .replay_delta(&record.key, row_delta.base, &row_delta.delta, tid)
                    .map_err(|e| std::io::Error::other(format!("corrupt delta chain: {e}")))?;
            }
        }
        Ok(())
    };
    let start = Instant::now();
    reactdb_wal::replay_partitioned(&[], &log.batches, workers, replay_one).unwrap();
    start.elapsed()
}

fn bench_parallel_replay(c: &mut Criterion) {
    let dir = bench_dir("replay");
    let log = recovered_replay_log(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        log.batches.len() >= 600,
        "replay bench needs a ≥600-txn log, decoded {}",
        log.batches.len()
    );

    c.bench_function("checkpoint/parallel_replay", |b| {
        b.iter(|| replay_once(&log, REPLAY_WORKERS))
    });

    let best = |workers: usize| {
        (0..REPLAY_ROUNDS)
            .map(|_| replay_once(&log, workers))
            .min()
            .unwrap()
    };
    let serial = best(1);
    let parallel = best(REPLAY_WORKERS);
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64();
    println!(
        "checkpoint/parallel_replay: {} batches, 1 worker {:.2} ms, {} workers {:.2} ms \
         ({speedup:.2}x speedup)",
        log.batches.len(),
        serial.as_secs_f64() * 1e3,
        REPLAY_WORKERS,
        parallel.as_secs_f64() * 1e3,
    );
    emit_metric("wal/recovery_replay_speedup", speedup, log.batches.len());
    // Timing gate only where it can physically hold: CI (CRITERION_JSON
    // set) on a machine with at least as many cores as replay lanes. The
    // metric above is still recorded everywhere, so a single-core run
    // honestly reports its (sub-1x) speedup without failing.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if std::env::var("CRITERION_JSON").is_ok_and(|p| !p.is_empty()) && cores >= REPLAY_WORKERS {
        assert!(
            speedup >= 1.5,
            "partitioned replay must beat single-lane replay by ≥1.5x on a \
             multi-reactor log: {speedup:.2}x"
        );
    }
}

// ---------------------------------------------------------------------------
// Delta checkpoints: capture bytes under a skewed update pattern
// ---------------------------------------------------------------------------

/// Key reactors in the delta-checkpoint measurement.
const DELTA_CKPT_KEYS: usize = 400;
/// Keys updated between the full and the delta capture (10% — the skewed
/// write set a delta checkpoint exists for).
const DELTA_CKPT_DIRTY: usize = 40;

fn bench_delta_checkpoint_bytes(_c: &mut Criterion) {
    let dir = bench_dir("delta");
    let config = DeploymentConfig::shared_nothing(2)
        .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0))
        .with_checkpoint(CheckpointConfig::manual().with_full_every(2));
    let db = ReactDB::boot(ycsb::spec(DELTA_CKPT_KEYS), config);
    ycsb::load(&db, DELTA_CKPT_KEYS).unwrap();
    db.wal_sync().unwrap();

    let full = db.checkpoint_now().unwrap();
    assert!(!full.delta, "chain root must be a full checkpoint");
    for i in 0..DELTA_CKPT_DIRTY {
        db.invoke(
            &ycsb::key_name(i),
            "update",
            vec![Value::Str("z".repeat(8))],
        )
        .unwrap();
    }
    db.wal_sync().unwrap();
    let delta = db.checkpoint_now().unwrap();
    assert!(delta.delta, "second capture in the chain must be a delta");

    let ratio = delta.bytes as f64 / full.bytes as f64;
    println!(
        "checkpoint/delta_bytes: full {} rows / {} bytes, delta {} rows / {} bytes \
         ({ratio:.3} bytes ratio)",
        full.rows, full.bytes, delta.rows, delta.bytes,
    );
    emit_metric("wal/delta_ckpt_bytes_ratio", ratio, DELTA_CKPT_DIRTY);
    // Byte counts are deterministic — this is a hard format gate, not a
    // timing check: 10% dirty keys must cost well under half a full capture.
    assert!(
        ratio <= 0.5,
        "delta checkpoint of {DELTA_CKPT_DIRTY}/{DELTA_CKPT_KEYS} dirty keys must be \
         ≤0.5x the bytes of a full capture: {ratio:.3}"
    );
    assert_eq!(
        delta.rows, DELTA_CKPT_DIRTY as u64,
        "delta capture must contain exactly the dirty rows"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_snapshot_walk,
    bench_checkpoint_now,
    bench_commits_under_checkpointing,
    bench_parallel_replay,
    bench_delta_checkpoint_bytes
);
criterion_main!(benches);
