//! Criterion wrapper around representative figure configurations, so that
//! `cargo bench` exercises the simulator-based harness end to end. The full
//! sweeps are produced by the `figures` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use reactdb_sim::{SimCosts, SimDeployment, SimStrategy, Simulator};
use reactdb_workloads::smallbank::{self, Formulation};
use reactdb_workloads::tpcc::TpccSimWorkload;

fn bench_figures(c: &mut Criterion) {
    // Figure 5 point: opt formulation, size 7, shared-nothing over 7
    // executors.
    c.bench_function("figures/fig05_opt_size7", |b| {
        let deployment = SimDeployment::striped(SimStrategy::SharedNothing, 7, 7000);
        let sim = Simulator::new(deployment, SimCosts::default());
        let dests: Vec<usize> = (1..=7).map(|i| i * 999).collect();
        b.iter(|| {
            let d = dests.clone();
            let mut wl =
                move |_: usize, _: &mut StdRng| smallbank::sim_profile(Formulation::Opt, 0, &d);
            sim.run(&mut wl, 1, 100, 1).avg_latency_us()
        })
    });

    // Figure 7 point: TPC-C standard mix, 4 warehouses, 8 workers,
    // shared-everything-with-affinity.
    c.bench_function("figures/fig07_tpcc_sf4_8workers", |b| {
        let deployment = SimDeployment::striped(SimStrategy::SharedEverythingWithAffinity, 4, 4);
        let sim = Simulator::new(deployment, SimCosts::default());
        b.iter(|| {
            let mut wl = TpccSimWorkload::standard(4);
            sim.run(&mut wl, 8, 100, 1).throughput_tps()
        })
    });
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
