//! Micro-benchmarks of the Silo OCC commit path: read-only validation,
//! single-record updates and multi-participant (2PC) commits.

use criterion::{criterion_group, criterion_main, Criterion};
use reactdb_common::{ContainerId, Key, Value};
use reactdb_storage::{ColumnType, Schema, Table, Tuple};
use reactdb_txn::{Coordinator, EpochManager, OccTxn, TidGen};
use std::sync::Arc;

fn table(rows: i64) -> Arc<Table> {
    let schema = Schema::of(&[("id", ColumnType::Int), ("v", ColumnType::Int)], &["id"]);
    let t = Arc::new(Table::new("t", schema));
    for i in 0..rows {
        t.load_row(Tuple::of([Value::Int(i), Value::Int(0)]))
            .unwrap();
    }
    t
}

fn bench_occ(c: &mut Criterion) {
    let t0 = table(10_000);
    let t1 = table(10_000);
    let epoch = EpochManager::new();
    let gen = TidGen::new();

    c.bench_function("occ/read_only_commit", |b| {
        b.iter(|| {
            let mut p = OccTxn::new(ContainerId(0));
            for k in 0..8i64 {
                p.read(&t0, &Key::Int(k * 13)).unwrap();
            }
            Coordinator::commit(std::slice::from_mut(&mut p), &epoch, &gen).unwrap();
        })
    });

    c.bench_function("occ/update_commit", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            let mut p = OccTxn::new(ContainerId(0));
            let row = p.read_expected(&t0, &Key::Int(i)).unwrap();
            let v = row.at(1).as_int();
            p.update(&t0, Tuple::of([Value::Int(i), Value::Int(v + 1)]))
                .unwrap();
            Coordinator::commit(std::slice::from_mut(&mut p), &epoch, &gen).unwrap();
        })
    });

    c.bench_function("occ/two_participant_2pc_commit", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            let mut p0 = OccTxn::new(ContainerId(0));
            let mut p1 = OccTxn::new(ContainerId(1));
            p0.update(&t0, Tuple::of([Value::Int(i), Value::Int(1)]))
                .unwrap();
            p1.update(&t1, Tuple::of([Value::Int(i), Value::Int(1)]))
                .unwrap();
            Coordinator::commit(&mut [p0, p1], &epoch, &gen).unwrap();
        })
    });
}

criterion_group!(benches, bench_occ);
criterion_main!(benches);
