//! Micro-benchmarks of the Silo OCC commit path: read-only validation,
//! single-record updates and multi-participant (2PC) commits — plus the
//! same update-commit shape through the full client session API, so the
//! cost the engine layers (routing, executor queue, handle resolution) add
//! over the raw coordinator stays measured.

use criterion::{criterion_group, criterion_main, Criterion};
use reactdb_common::{ContainerId, DeploymentConfig, Key, Value};
use reactdb_core::{ReactorDatabaseSpec, ReactorType};
use reactdb_engine::ReactDB;
use reactdb_storage::{ColumnType, RelationDef, Schema, Table, Tuple};
use reactdb_txn::{Coordinator, EpochManager, OccTxn, TidGen};
use std::sync::Arc;

fn table(rows: i64) -> Arc<Table> {
    let schema = Schema::of(&[("id", ColumnType::Int), ("v", ColumnType::Int)], &["id"]);
    let t = Arc::new(Table::new("t", schema));
    for i in 0..rows {
        t.load_row(Tuple::of([Value::Int(i), Value::Int(0)]))
            .unwrap();
    }
    t
}

fn bench_occ(c: &mut Criterion) {
    let t0 = table(10_000);
    let t1 = table(10_000);
    let epoch = EpochManager::new();
    let gen = TidGen::new();

    c.bench_function("occ/read_only_commit", |b| {
        b.iter(|| {
            let mut p = OccTxn::new(ContainerId(0));
            for k in 0..8i64 {
                p.read(&t0, &Key::Int(k * 13)).unwrap();
            }
            Coordinator::commit(std::slice::from_mut(&mut p), &epoch, &gen).unwrap();
        })
    });

    c.bench_function("occ/update_commit", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            let mut p = OccTxn::new(ContainerId(0));
            let row = p.read_expected(&t0, &Key::Int(i)).unwrap();
            let v = row.at(1).as_int();
            p.update(&t0, Tuple::of([Value::Int(i), Value::Int(v + 1)]))
                .unwrap();
            Coordinator::commit(std::slice::from_mut(&mut p), &epoch, &gen).unwrap();
        })
    });

    c.bench_function("occ/two_participant_2pc_commit", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            let mut p0 = OccTxn::new(ContainerId(0));
            let mut p1 = OccTxn::new(ContainerId(1));
            p0.update(&t0, Tuple::of([Value::Int(i), Value::Int(1)]))
                .unwrap();
            p1.update(&t1, Tuple::of([Value::Int(i), Value::Int(1)]))
                .unwrap();
            Coordinator::commit(&mut [p0, p1], &epoch, &gen).unwrap();
        })
    });
}

/// The update-commit shape of `occ/update_commit`, but entered through the
/// client session API: submit → route → execute → Silo commit → handle
/// resolution. The delta against the raw-coordinator number is the full
/// engine + session overhead per transaction.
fn bench_occ_client(c: &mut Criterion) {
    let rows = 10_000i64;
    let counter = ReactorType::new("Counter")
        .with_relation(RelationDef::new(
            "t",
            Schema::of(&[("id", ColumnType::Int), ("v", ColumnType::Int)], &["id"]),
        ))
        .with_procedure("bump", |ctx, args| {
            let key = Key::Int(args[0].as_int());
            let row = ctx.update_with("t", &key, |t| {
                let v = t.at(1).as_int();
                t.values_mut()[1] = Value::Int(v + 1);
            })?;
            Ok(Value::Int(row.at(1).as_int()))
        });
    let mut spec = ReactorDatabaseSpec::new();
    spec.add_type(counter);
    spec.add_reactor("counter-0", "Counter");
    let db = ReactDB::boot(spec, DeploymentConfig::shared_everything_with_affinity(1));
    for i in 0..rows {
        db.load_row("counter-0", "t", Tuple::of([Value::Int(i), Value::Int(0)]))
            .unwrap();
    }

    let client = db.client();
    let mut i = 0i64;
    c.bench_function("occ/update_commit_via_client_session", |b| {
        b.iter(|| {
            i = (i + 1) % rows;
            client
                .invoke("counter-0", "bump", vec![Value::Int(i)])
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_occ, bench_occ_client);
criterion_main!(benches);
