//! Benchmark harness for ReactDB-rs.
//!
//! Shared utilities used by the per-figure binaries in `src/bin/` and the
//! Criterion micro-benchmarks in `benches/`. See `EXPERIMENTS.md` for the
//! mapping between the paper's tables/figures and the harness targets.

pub mod figures;
pub mod harness;

pub use harness::{print_series, print_table, SeriesPoint};
