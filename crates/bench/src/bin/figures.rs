//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p reactdb-bench --bin figures            # everything
//! cargo run --release -p reactdb-bench --bin figures -- fig05   # one experiment
//! ```
//!
//! Valid experiment names: fig05, fig06, fig07, fig08, fig09, fig10, fig11,
//! fig12, fig13, fig14, table1, fig15, fig16, fig17, fig18, fig19.

use reactdb_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        figures::run_all();
        return;
    }
    for arg in args {
        match arg.as_str() {
            "fig05" => figures::fig05(),
            "fig06" => figures::fig06(),
            "fig07" | "fig08" => figures::fig07_08(),
            "fig09" | "fig10" => figures::fig09_10(),
            "fig11" => figures::fig11(),
            "fig12" => figures::fig12(),
            "fig13" | "fig14" => figures::fig13_14(),
            "table1" => figures::table1(),
            "fig15" | "fig16" => figures::fig15_16(),
            "fig17" | "fig18" => figures::fig17_18(),
            "fig19" => figures::fig19(),
            "all" => figures::run_all(),
            other => {
                eprintln!("unknown experiment {other}; see --help text in the source");
                std::process::exit(2);
            }
        }
    }
}
