//! Output helpers shared by the figure/table binaries.

use serde::Serialize;

/// One (x, series -> y) data point of a figure.
#[derive(Debug, Clone, Serialize)]
pub struct SeriesPoint {
    /// X-axis value (transaction size, workers, scale factor, ...).
    pub x: f64,
    /// Series label and Y value pairs.
    pub values: Vec<(String, f64)>,
}

/// Prints a figure as a tab-separated table: a header of series names, then
/// one row per x value. This is the textual equivalent of the paper's plots.
pub fn print_series(title: &str, x_label: &str, points: &[SeriesPoint]) {
    println!("# {title}");
    if points.is_empty() {
        println!("(no data)");
        return;
    }
    let mut header = vec![x_label.to_owned()];
    header.extend(points[0].values.iter().map(|(name, _)| name.clone()));
    println!("{}", header.join("\t"));
    for point in points {
        let mut row = vec![format!("{}", point.x)];
        row.extend(point.values.iter().map(|(_, v)| format!("{v:.3}")));
        println!("{}", row.join("\t"));
    }
    println!();
}

/// Prints a plain table with a caption: header row plus data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
    println!();
}
