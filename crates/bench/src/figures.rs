//! Reproduction of every table and figure of the paper's evaluation.
//!
//! Each `figNN`/`table1` function runs the corresponding experiment on the
//! virtual-time simulator (see DESIGN.md §4.4 for why the simulator, and not
//! host wall-clock, is the primary substrate) and prints the same series the
//! paper plots. `EXPERIMENTS.md` records the expected shapes and the
//! measured values.

use rand::rngs::StdRng;
use rand::Rng;
use reactdb_core::costmodel::{CostParams, ForkJoinTxn};
use reactdb_sim::{SimCosts, SimDeployment, SimStrategy, SimTxn, SimWorkload, Simulator};
use reactdb_workloads::exchange::{self, ExchangeSimCosts, ExchangeSimWorkload, Strategy};
use reactdb_workloads::smallbank::{self, Formulation};
use reactdb_workloads::tpcc::TpccSimWorkload;
use reactdb_workloads::ycsb::YcsbSimWorkload;

use crate::harness::{print_series, print_table, SeriesPoint};

/// Number of measured transactions per configuration point. Chosen so every
/// figure regenerates in seconds while averaging over enough samples for
/// stable virtual-time results.
const TXNS_PER_POINT: usize = 400;
const SEED: u64 = 20180610;

fn cost_params_from(costs: &SimCosts, containers_spanned: usize) -> CostParams {
    CostParams {
        cs_remote_us: costs.cs_us,
        cr_remote_us: costs.cr_us,
        cs_local_us: 0.0,
        cr_local_us: 0.0,
        commit_us: costs.commit_us
            + costs.dispatch_us
            + costs.commit_remote_us * containers_spanned.saturating_sub(1) as f64,
        input_gen_us: costs.input_gen_us,
    }
}

/// The Smallbank shared-nothing deployment of §4.2: 7 containers, each with
/// one executor hosting a range of 1000 customer reactors.
fn smallbank_deployment() -> SimDeployment {
    let reactors_per_container = 1000;
    let containers = 7;
    SimDeployment::explicit(
        SimStrategy::SharedNothing,
        containers,
        (0..containers * reactors_per_container)
            .map(|r| r / reactors_per_container)
            .collect(),
    )
}

fn multi_transfer_latency(
    formulation: Formulation,
    dests: &[usize],
    deployment: &SimDeployment,
) -> f64 {
    let sim = Simulator::new(deployment.clone(), SimCosts::default());
    let dests = dests.to_vec();
    let mut wl = move |_: usize, _: &mut StdRng| smallbank::sim_profile(formulation, 0, &dests);
    sim.run(&mut wl, 1, TXNS_PER_POINT, SEED).avg_latency_ms()
}

/// Destinations for a multi-transfer of `size`, each on a distinct remote
/// container (the setup of Figure 5).
fn spread_dests(size: usize) -> Vec<usize> {
    (0..size).map(|i| (1 + i % 6) * 1000 + i).collect()
}

/// Figure 5: latency vs. transaction size for the four multi-transfer
/// program formulations.
pub fn fig05() {
    let deployment = smallbank_deployment();
    let points: Vec<SeriesPoint> = (1..=7)
        .map(|size| SeriesPoint {
            x: size as f64,
            values: Formulation::all()
                .iter()
                .map(|f| {
                    (
                        f.label().to_owned(),
                        multi_transfer_latency(*f, &spread_dests(size), &deployment),
                    )
                })
                .collect(),
        })
        .collect();
    print_series(
        "Figure 5: latency [ms] vs txn size per program formulation",
        "txn_size",
        &points,
    );
}

/// Figure 6: breakdown of observed (simulated) latency and cost-model
/// prediction into the components of Figure 3, for fully-sync and opt at
/// transaction sizes 1, 4 and 7.
pub fn fig06() {
    let deployment = smallbank_deployment();
    let costs = SimCosts::default();
    let mut rows = Vec::new();
    for size in [1usize, 4, 7] {
        for f in [Formulation::FullySync, Formulation::Opt] {
            let dests = spread_dests(size);
            let observed_ms = multi_transfer_latency(f, &dests, &deployment);
            let shape = smallbank::forkjoin_shape(f, 0, &dests, &deployment);
            let spanned = 1 + dests
                .iter()
                .map(|d| d / 1000)
                .collect::<std::collections::HashSet<_>>()
                .len();
            let breakdown = shape.breakdown(&cost_params_from(&costs, spanned));
            rows.push(vec![
                size.to_string(),
                f.label().to_owned(),
                format!("{:.4}", observed_ms),
                format!("{:.4}", breakdown.total_us() / 1000.0),
                format!("{:.2}", breakdown.sync_execution_us),
                format!("{:.2}", breakdown.cs_us),
                format!("{:.2}", breakdown.cr_us),
                format!("{:.2}", breakdown.async_execution_us),
                format!("{:.2}", breakdown.commit_and_input_us),
            ]);
        }
    }
    print_table(
        "Figure 6: cost-model breakdown (observed vs predicted)",
        &[
            "txn_size",
            "formulation",
            "observed_ms",
            "predicted_ms",
            "sync_exec_us",
            "Cs_us",
            "Cr_us",
            "async_exec_us",
            "commit+input_us",
        ],
        &rows,
    );
}

fn tpcc_strategies() -> Vec<(&'static str, SimStrategy)> {
    vec![
        (
            "shared-everything-without-affinity",
            SimStrategy::SharedEverythingWithoutAffinity,
        ),
        ("shared-nothing-async", SimStrategy::SharedNothing),
        (
            "shared-everything-with-affinity",
            SimStrategy::SharedEverythingWithAffinity,
        ),
    ]
}

fn run_tpcc(
    strategy: SimStrategy,
    warehouses: usize,
    workers: usize,
    mut workload: TpccSimWorkload,
) -> reactdb_sim::SimReport {
    let deployment = SimDeployment::striped(strategy, warehouses, warehouses);
    let sim = Simulator::new(deployment, SimCosts::default());
    sim.run(&mut workload, workers, TXNS_PER_POINT, SEED)
}

/// Figures 7 and 8: TPC-C throughput and latency under increasing load at
/// scale factor 4 for the three deployments.
pub fn fig07_08() {
    let warehouses = 4;
    let mut tput = Vec::new();
    let mut lat = Vec::new();
    for workers in 1..=8 {
        let mut tput_values = Vec::new();
        let mut lat_values = Vec::new();
        for (label, strategy) in tpcc_strategies() {
            let report = run_tpcc(
                strategy,
                warehouses,
                workers,
                TpccSimWorkload::standard(warehouses),
            );
            tput_values.push((label.to_owned(), report.throughput_tps() / 1000.0));
            lat_values.push((label.to_owned(), report.avg_latency_ms()));
        }
        tput.push(SeriesPoint {
            x: workers as f64,
            values: tput_values,
        });
        lat.push(SeriesPoint {
            x: workers as f64,
            values: lat_values,
        });
    }
    print_series(
        "Figure 7: TPC-C throughput [Ktxn/s] vs workers (SF 4)",
        "workers",
        &tput,
    );
    print_series(
        "Figure 8: TPC-C avg latency [ms] vs workers (SF 4)",
        "workers",
        &lat,
    );
}

/// Figures 9 and 10: 100% new-order with a 300–400 µs stock-replenishment
/// delay and all items remote, scale factor 8.
pub fn fig09_10() {
    let warehouses = 8;
    let strategies = vec![
        ("shared-nothing-async", SimStrategy::SharedNothing),
        (
            "shared-everything-with-affinity",
            SimStrategy::SharedEverythingWithAffinity,
        ),
    ];
    let mut tput = Vec::new();
    let mut lat = Vec::new();
    for workers in 1..=8 {
        let mut tput_values = Vec::new();
        let mut lat_values = Vec::new();
        for (label, strategy) in &strategies {
            let workload = TpccSimWorkload {
                warehouses,
                remote_item_prob: 1.0,
                remote_payment_prob: 0.15,
                new_order_only: true,
                delay_us: Some((300.0, 400.0)),
                costs: Default::default(),
            };
            let report = run_tpcc(*strategy, warehouses, workers, workload);
            tput_values.push(((*label).to_owned(), report.throughput_tps()));
            lat_values.push(((*label).to_owned(), report.avg_latency_ms()));
        }
        tput.push(SeriesPoint {
            x: workers as f64,
            values: tput_values,
        });
        lat.push(SeriesPoint {
            x: workers as f64,
            values: lat_values,
        });
    }
    print_series(
        "Figure 9: new-order-delay throughput [txn/s] vs workers (SF 8)",
        "workers",
        &tput,
    );
    print_series(
        "Figure 10: new-order-delay avg latency [ms] vs workers (SF 8)",
        "workers",
        &lat,
    );
}

/// Figure 11: multi-transfer latency when destinations are co-located with
/// the source (local) vs spread over remote containers (remote).
pub fn fig11() {
    let deployment = smallbank_deployment();
    let points: Vec<SeriesPoint> = (1..=7)
        .map(|size| {
            let remote = spread_dests(size);
            let local: Vec<usize> = (1..=size).collect(); // same container as the source
            SeriesPoint {
                x: size as f64,
                values: vec![
                    (
                        "fully-sync-remote".into(),
                        multi_transfer_latency(Formulation::FullySync, &remote, &deployment),
                    ),
                    (
                        "fully-sync-local".into(),
                        multi_transfer_latency(Formulation::FullySync, &local, &deployment),
                    ),
                    (
                        "opt-remote".into(),
                        multi_transfer_latency(Formulation::Opt, &remote, &deployment),
                    ),
                    (
                        "opt-local".into(),
                        multi_transfer_latency(Formulation::Opt, &local, &deployment),
                    ),
                ],
            }
        })
        .collect();
    print_series(
        "Figure 11: latency [ms] vs size, local vs remote destinations",
        "txn_size",
        &points,
    );
}

/// Figure 12: fully-sync multi-transfer of size 7 spanning a varying number
/// of transaction executors under three destination-selection policies.
pub fn fig12() {
    let deployment = smallbank_deployment();
    let mut points = Vec::new();
    for spanned in 1..=7usize {
        // round-robin remote: 7-k+1 local calls, k-1 remote round-robin.
        let mut rr_remote: Vec<usize> = vec![1; 7 - spanned + 1];
        for i in 0..spanned.saturating_sub(1) {
            rr_remote.push((1 + (i % 6)) * 1000 + i);
        }
        // round-robin all: ceil(7/k) local, rest spread over the k spanned
        // executors (executor 0 = local container).
        let mut rr_all: Vec<usize> = Vec::new();
        for i in 0..7usize {
            let container = i % spanned;
            rr_all.push(container * 1000 + i + 1);
        }
        // random: uniform over all containers.
        let mut rng: StdRng = rand::SeedableRng::seed_from_u64(SEED + spanned as u64);
        let random: Vec<usize> = (0..7).map(|_| rng.gen_range(0..7000)).collect();

        points.push(SeriesPoint {
            x: spanned as f64,
            values: vec![
                (
                    "round-robin remote".into(),
                    multi_transfer_latency(Formulation::FullySync, &rr_remote, &deployment),
                ),
                (
                    "random".into(),
                    multi_transfer_latency(Formulation::FullySync, &random, &deployment),
                ),
                (
                    "round-robin all".into(),
                    multi_transfer_latency(Formulation::FullySync, &rr_all, &deployment),
                ),
            ],
        });
    }
    print_series(
        "Figure 12: latency [ms] vs number of executors spanned (size 7, fully-sync)",
        "executors_spanned",
        &points,
    );
}

/// Figures 13 and 14: YCSB multi_update latency and throughput under
/// varying zipfian skew, for 1 and 4 workers, plus the cost-model predicted
/// latency for a single worker.
pub fn fig13_14() {
    let keys = 40_000;
    let executors = 4;
    let costs = SimCosts::default();
    let deployment = SimDeployment::striped(SimStrategy::SharedNothing, executors, executors);
    let skews = [0.01, 0.5, 0.99, 2.0, 5.0];
    let mut lat_points = Vec::new();
    let mut tput_points = Vec::new();
    for theta in skews {
        let mut lat_values = Vec::new();
        let mut tput_values = Vec::new();
        for workers in [1usize, 4] {
            let sim = Simulator::new(deployment.clone(), costs);
            let mut wl = YcsbSimWorkload::new(keys, executors, theta);
            let report = sim.run(&mut wl, workers, TXNS_PER_POINT, SEED);
            lat_values.push((format!("{workers} worker obs"), report.avg_latency_ms()));
            tput_values.push((
                format!("{workers} workers obs"),
                report.throughput_tps() / 1000.0,
            ));
        }
        // Cost-model prediction for one worker: average the fork-join
        // latency over a sample of generated profiles.
        let mut rng: StdRng = rand::SeedableRng::seed_from_u64(SEED);
        let mut wl = YcsbSimWorkload::new(keys, executors, theta);
        let striped = SimDeployment::striped(SimStrategy::SharedNothing, executors, keys);
        let mut predicted = 0.0;
        let samples = 200;
        for _ in 0..samples {
            let profile = wl.next_txn(0, &mut rng);
            let shape = smallbank::sim_to_forkjoin(&profile, &striped);
            let spanned = profile
                .reactors_touched()
                .iter()
                .map(|r| r % executors)
                .collect::<std::collections::HashSet<_>>()
                .len();
            predicted += ForkJoinTxn::root_latency_us(&shape, &cost_params_from(&costs, spanned));
        }
        lat_values.push(("1 worker pred".into(), predicted / samples as f64 / 1000.0));
        lat_points.push(SeriesPoint {
            x: theta,
            values: lat_values,
        });
        tput_points.push(SeriesPoint {
            x: theta,
            values: tput_values,
        });
    }
    print_series(
        "Figure 13: YCSB multi_update latency [ms] vs zipfian skew",
        "zipf",
        &lat_points,
    );
    print_series(
        "Figure 14: YCSB multi_update throughput [Ktxn/s] vs zipfian skew",
        "zipf",
        &tput_points,
    );
}

/// Table 1: TPC-C 100% new-order at scale factor 4 — observed vs predicted
/// latency and throughput for 1% and 100% cross-reactor accesses, with 1 and
/// 4 workers.
pub fn table1() {
    let warehouses = 4;
    let costs = SimCosts::default();
    let mut rows = Vec::new();
    for cross in [0.01f64, 1.0] {
        let mut row = vec![format!("{}", (cross * 100.0) as u32)];
        for workers in [1usize, 4] {
            let workload = TpccSimWorkload {
                warehouses,
                remote_item_prob: cross,
                remote_payment_prob: 0.15,
                new_order_only: true,
                delay_us: None,
                costs: Default::default(),
            };
            let report = run_tpcc(SimStrategy::SharedNothing, warehouses, workers, workload);
            row.push(format!("{:.0}", report.throughput_tps()));
            row.push(format!("{:.3}", report.avg_latency_ms()));
            if workers == 1 {
                // Cost-model prediction (one worker, no queueing).
                let mut rng: StdRng = rand::SeedableRng::seed_from_u64(SEED);
                let mut wl = TpccSimWorkload {
                    warehouses,
                    remote_item_prob: cross,
                    remote_payment_prob: 0.15,
                    new_order_only: true,
                    delay_us: None,
                    costs: Default::default(),
                };
                let deployment =
                    SimDeployment::striped(SimStrategy::SharedNothing, warehouses, warehouses);
                let mut predicted = 0.0;
                let samples = 200;
                for _ in 0..samples {
                    let profile = wl.next_txn(0, &mut rng);
                    let spanned = profile.reactors_touched().len();
                    let shape = smallbank::sim_to_forkjoin(&profile, &deployment);
                    predicted += shape.root_latency_us(&cost_params_from(&costs, spanned));
                }
                row.push(format!("{:.3}", predicted / samples as f64 / 1000.0));
            }
        }
        rows.push(row);
    }
    print_table(
        "Table 1: TPC-C new-order at SF 4 (shared-nothing-async)",
        &[
            "cross_reactor_%",
            "1w_tps",
            "1w_latency_ms",
            "1w_pred_latency_ms",
            "4w_tps",
            "4w_latency_ms",
        ],
        &rows,
    );
}

fn make_sync(txn: &SimTxn) -> SimTxn {
    let mut out = SimTxn::leaf(txn.reactor, txn.p_seq_us + txn.p_ovp_us);
    for c in &txn.sync_children {
        out = out.with_sync(make_sync(c));
    }
    for c in &txn.async_children {
        out = out.with_sync(make_sync(c));
    }
    out
}

/// Figures 15 and 16: throughput and latency of 100% new-order at scale
/// factor 8 and peak load (8 workers) while the probability of cross-reactor
/// items grows from 0 to 100%.
pub fn fig15_16() {
    let warehouses = 8;
    let workers = 8;
    let percentages = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 1.0];
    let mut tput_points = Vec::new();
    let mut lat_points = Vec::new();
    for cross in percentages {
        let mut tput_values = Vec::new();
        let mut lat_values = Vec::new();
        let base = TpccSimWorkload {
            warehouses,
            remote_item_prob: cross,
            remote_payment_prob: 0.15,
            new_order_only: true,
            delay_us: None,
            costs: Default::default(),
        };
        for (label, strategy) in tpcc_strategies() {
            let report = run_tpcc(strategy, warehouses, workers, base.clone());
            tput_values.push((label.to_owned(), report.throughput_tps() / 1000.0));
            lat_values.push((label.to_owned(), report.avg_latency_ms()));
        }
        // shared-nothing-sync: the same workload with every sub-transaction
        // invoked synchronously.
        let sync_workload = base.clone();
        let deployment = SimDeployment::striped(SimStrategy::SharedNothing, warehouses, warehouses);
        let sim = Simulator::new(deployment, SimCosts::default());
        let mut inner = sync_workload;
        let mut wl = move |worker: usize, rng: &mut StdRng| make_sync(&inner.next_txn(worker, rng));
        let report = sim.run(&mut wl, workers, TXNS_PER_POINT, SEED);
        tput_values.push((
            "shared-nothing-sync".into(),
            report.throughput_tps() / 1000.0,
        ));
        lat_values.push(("shared-nothing-sync".into(), report.avg_latency_ms()));

        tput_points.push(SeriesPoint {
            x: cross * 100.0,
            values: tput_values,
        });
        lat_points.push(SeriesPoint {
            x: cross * 100.0,
            values: lat_values,
        });
    }
    print_series(
        "Figure 15: new-order throughput [Ktxn/s] vs % cross-reactor transactions (SF 8)",
        "cross_reactor_pct",
        &tput_points,
    );
    print_series(
        "Figure 16: new-order latency [ms] vs % cross-reactor transactions (SF 8)",
        "cross_reactor_pct",
        &lat_points,
    );
}

/// Figures 17 and 18: TPC-C scale-up — warehouses = executors = workers.
pub fn fig17_18() {
    let mut tput_points = Vec::new();
    let mut lat_points = Vec::new();
    for scale in [1usize, 2, 4, 8, 12, 16] {
        let mut tput_values = Vec::new();
        let mut lat_values = Vec::new();
        for (label, strategy) in tpcc_strategies() {
            let report = run_tpcc(strategy, scale, scale, TpccSimWorkload::standard(scale));
            tput_values.push((label.to_owned(), report.throughput_tps() / 1000.0));
            lat_values.push((label.to_owned(), report.avg_latency_ms()));
        }
        tput_points.push(SeriesPoint {
            x: scale as f64,
            values: tput_values,
        });
        lat_points.push(SeriesPoint {
            x: scale as f64,
            values: lat_values,
        });
    }
    print_series(
        "Figure 17: TPC-C throughput [Ktxn/s] vs scale factor",
        "scale_factor",
        &tput_points,
    );
    print_series(
        "Figure 18: TPC-C avg latency [ms] vs scale factor",
        "scale_factor",
        &lat_points,
    );
}

/// Figure 19: latency of auth_pay under the three execution strategies as
/// the sim_risk computational load grows (random numbers per provider).
pub fn fig19() {
    // Calibration: ~100 random numbers per microsecond of compute.
    let random_numbers = [10.0_f64, 1e2, 1e3, 1e4, 1e5, 1e6];
    let providers = 15;
    let deployment = SimDeployment::striped(SimStrategy::SharedNothing, 16, 16);
    let mut points = Vec::new();
    for n in random_numbers {
        let sim_risk_us = n / 100.0;
        let costs = ExchangeSimCosts {
            scan_window_us: 40.0,
            auth_base_us: 5.0,
            sim_risk_us,
        };
        let mut values = Vec::new();
        for strategy in Strategy::all() {
            let sim = Simulator::new(deployment.clone(), SimCosts::default());
            let mut wl = ExchangeSimWorkload {
                strategy,
                providers,
                costs,
            };
            let report = sim.run(&mut wl, 1, 100, SEED);
            values.push((strategy.label().to_owned(), report.avg_latency_ms()));
        }
        // Re-order to match the figure legend (query, procedure, sequential).
        points.push(SeriesPoint { x: n, values });
    }
    print_series(
        "Figure 19: auth_pay latency [ms] vs random numbers per provider",
        "random_numbers",
        &points,
    );
    let _ = exchange::EXCHANGE; // keep the engine-side module linked into docs
}

/// Runs every experiment in order.
pub fn run_all() {
    fig05();
    fig06();
    fig07_08();
    fig09_10();
    fig11();
    fig12();
    fig13_14();
    table1();
    fig15_16();
    fig17_18();
    fig19();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_dests_are_remote_containers() {
        let d = spread_dests(7);
        assert_eq!(d.len(), 7);
        assert!(
            d.iter().all(|x| *x >= 1000),
            "all destinations outside the source container"
        );
    }

    #[test]
    fn make_sync_flattens_async_children() {
        let t = SimTxn::leaf(0, 1.0)
            .with_async(SimTxn::leaf(1, 2.0))
            .with_overlap(3.0);
        let s = make_sync(&t);
        assert!(s.async_children.is_empty());
        assert_eq!(s.sync_children.len(), 1);
        assert_eq!(s.p_seq_us, 4.0);
    }

    #[test]
    fn figure5_ordering_holds_in_harness_configuration() {
        let deployment = smallbank_deployment();
        let dests = spread_dests(7);
        let fully_sync = multi_transfer_latency(Formulation::FullySync, &dests, &deployment);
        let opt = multi_transfer_latency(Formulation::Opt, &dests, &deployment);
        // The commit/dispatch overhead is common to both formulations, so
        // the end-to-end gap in the harness configuration is smaller than
        // the program-only gap of Figure 5; the ordering and a clear margin
        // must still hold.
        assert!(
            fully_sync > 1.3 * opt,
            "fully-sync {fully_sync} vs opt {opt}"
        );
    }
}
