//! Database-wide commit/abort counters.
//!
//! The evaluation reports abort rates per deployment (§4.3.1); these
//! counters let the harness and the tests observe them without instrumenting
//! the workload code.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use reactdb_wal::{TableLogUsage, WalStats};

use crate::client::SessionShared;

/// Monotonic counters describing what happened to root transactions.
#[derive(Debug, Default)]
pub struct DbStats {
    committed: AtomicU64,
    cc_aborts: AtomicU64,
    phantom_aborts: AtomicU64,
    user_aborts: AtomicU64,
    dangerous_aborts: AtomicU64,
    sub_txns_dispatched: AtomicU64,
    sub_txns_inlined: AtomicU64,
    scan_ops: AtomicU64,
    recovered_txns: AtomicU64,
    recovered_checkpoint_rows: AtomicU64,
    /// Client-visible outcome counters, maintained by the session layer
    /// (`crate::client`): the same aggregate each session keeps, fed with
    /// the same events across every session of this database. One
    /// increment per *handle* submission, resolution, or timeout — distinct
    /// from the engine-side counters above.
    client: SessionShared,
    /// Durability counters, shared with the write-ahead log when one is
    /// configured.
    wal: OnceLock<Arc<WalStats>>,
}

impl DbStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_commit(&self) {
        self.committed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_cc_abort(&self) {
        self.cc_aborts.fetch_add(1, Ordering::Relaxed);
    }
    /// A phantom (node-set) validation abort. Counts toward
    /// [`DbStats::cc_aborts`] as well: phantoms are concurrency-control
    /// aborts, just separately attributable.
    pub(crate) fn record_phantom_abort(&self) {
        self.phantom_aborts.fetch_add(1, Ordering::Relaxed);
        self.cc_aborts.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_scan_ops(&self, n: u64) {
        if n > 0 {
            self.scan_ops.fetch_add(n, Ordering::Relaxed);
        }
    }
    pub(crate) fn record_user_abort(&self) {
        self.user_aborts.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_dangerous_abort(&self) {
        self.dangerous_aborts.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_sub_dispatch(&self) {
        self.sub_txns_dispatched.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_sub_inline(&self) {
        self.sub_txns_inlined.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_recovered(&self, n: u64) {
        self.recovered_txns.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn record_recovered_checkpoint_rows(&self, n: u64) {
        self.recovered_checkpoint_rows
            .fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn attach_wal(&self, stats: Arc<WalStats>) {
        let _ = self.wal.set(stats);
    }

    /// Called by the session layer when a handle is submitted.
    pub(crate) fn record_client_submit(&self) {
        self.client.on_submit();
    }
    /// Called exactly once per submitted handle when its future resolves
    /// (commit, abort, or abandonment). `phantom` marks aborts caused by
    /// node-set (phantom) validation.
    pub(crate) fn record_client_resolve(&self, committed: bool, phantom: bool) {
        self.client.on_resolve(committed, phantom);
    }
    /// Called when a client gave up waiting on a handle (the transaction
    /// may still resolve later and then also count as committed/aborted).
    pub(crate) fn record_client_timeout(&self) {
        self.client.on_timeout();
    }

    /// Root transactions that committed.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }
    /// Root transactions aborted by concurrency control (read-set
    /// validation, node-set/phantom validation, or 2PC). Includes
    /// [`DbStats::phantom_aborts`].
    pub fn cc_aborts(&self) -> u64 {
        self.cc_aborts.load(Ordering::Relaxed)
    }
    /// Root transactions aborted specifically by node-set validation: a
    /// range they scanned (or a key whose absence they observed) changed
    /// membership before commit. A subset of [`DbStats::cc_aborts`] —
    /// subtract to get ordinary read-set conflicts.
    pub fn phantom_aborts(&self) -> u64 {
        self.phantom_aborts.load(Ordering::Relaxed)
    }
    /// Transactional scan operations executed (range scans, full scans,
    /// secondary lookups/ranges) across all root transactions, committed or
    /// aborted.
    pub fn scan_ops(&self) -> u64 {
        self.scan_ops.load(Ordering::Relaxed)
    }
    /// Root transactions aborted by application logic.
    pub fn user_aborts(&self) -> u64 {
        self.user_aborts.load(Ordering::Relaxed)
    }
    /// Root transactions aborted by the intra-transaction safety condition.
    pub fn dangerous_aborts(&self) -> u64 {
        self.dangerous_aborts.load(Ordering::Relaxed)
    }
    /// Sub-transactions dispatched to another container's executor.
    pub fn sub_txns_dispatched(&self) -> u64 {
        self.sub_txns_dispatched.load(Ordering::Relaxed)
    }
    /// Sub-transactions executed synchronously on the calling executor.
    pub fn sub_txns_inlined(&self) -> u64 {
        self.sub_txns_inlined.load(Ordering::Relaxed)
    }

    /// Root transactions whose handle resolved with a commit, as seen by
    /// client sessions.
    pub fn client_committed(&self) -> u64 {
        self.client.snapshot().committed
    }
    /// Root transactions whose handle resolved with an error (concurrency
    /// abort, user abort, or abandonment), as seen by client sessions.
    pub fn client_aborted(&self) -> u64 {
        self.client.snapshot().aborted
    }
    /// Handles that resolved with a phantom abort, as seen by client
    /// sessions (a subset of [`DbStats::client_aborted`]).
    pub fn client_phantom_aborts(&self) -> u64 {
        self.client.snapshot().phantom_aborts
    }
    /// Waits on a handle that hit the client timeout.
    pub fn client_timeouts(&self) -> u64 {
        self.client.snapshot().timeouts
    }
    /// Handles currently submitted and unresolved across all sessions.
    pub fn handles_in_flight(&self) -> u64 {
        self.client.snapshot().in_flight
    }
    /// Deepest pipelining observed: the high-water mark of in-flight
    /// handles.
    pub fn handles_in_flight_hwm(&self) -> u64 {
        self.client.snapshot().in_flight_hwm
    }

    /// Transactions replayed from the write-ahead log by crash recovery.
    /// With checkpointing enabled this counts only the post-checkpoint
    /// *tail* — the quantity checkpointing bounds.
    pub fn recovered_txns(&self) -> u64 {
        self.recovered_txns.load(Ordering::Relaxed)
    }
    /// Rows loaded from the newest complete checkpoint by crash recovery
    /// (0 when no checkpoint was installed).
    pub fn recovered_checkpoint_rows(&self) -> u64 {
        self.recovered_checkpoint_rows.load(Ordering::Relaxed)
    }
    /// Bytes of redo frames appended to the write-ahead log (0 when
    /// durability is off).
    pub fn log_bytes(&self) -> u64 {
        self.wal.get().map(|w| w.bytes_logged()).unwrap_or(0)
    }
    /// Redo records appended to the write-ahead log.
    pub fn log_records(&self) -> u64 {
        self.wal.get().map(|w| w.records_logged()).unwrap_or(0)
    }
    /// Redo records shipped as field-level deltas instead of full row
    /// images (0 when delta logging is off).
    pub fn log_delta_records(&self) -> u64 {
        self.wal.get().map(|w| w.delta_records()).unwrap_or(0)
    }
    /// Log bytes saved by delta records relative to full-image encodings of
    /// the same rows. `log_bytes + log_bytes_saved` approximates what the
    /// same history would have cost with delta logging off.
    pub fn log_bytes_saved(&self) -> u64 {
        self.wal.get().map(|w| w.delta_bytes_saved()).unwrap_or(0)
    }
    /// Group commits (flush + fsync + durable-epoch advance) performed.
    pub fn log_syncs(&self) -> u64 {
        self.wal.get().map(|w| w.syncs()).unwrap_or(0)
    }
    /// Group commits that failed with an I/O error: non-zero and climbing
    /// means the log device is unhealthy and the durable epoch is stalling.
    pub fn log_sync_failures(&self) -> u64 {
        self.wal.get().map(|w| w.sync_failures()).unwrap_or(0)
    }
    /// Highest epoch currently guaranteed durable (0 when durability is off
    /// or nothing has been synced).
    pub fn durable_epoch(&self) -> u64 {
        self.wal.get().map(|w| w.durable_epoch()).unwrap_or(0)
    }
    /// Durable-acknowledgement waits that actually blocked on a group
    /// commit (`TxnHandle::wait_durable` behind the durable epoch).
    pub fn durable_waits(&self) -> u64 {
        self.wal.get().map(|w| w.durable_waits()).unwrap_or(0)
    }
    /// Checkpoints completed (background daemon plus explicit
    /// `ReactDB::checkpoint_now` calls).
    pub fn checkpoints_taken(&self) -> u64 {
        self.wal.get().map(|w| w.checkpoints_taken()).unwrap_or(0)
    }
    /// Cumulative bytes of checkpoint data files written.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.wal.get().map(|w| w.checkpoint_bytes()).unwrap_or(0)
    }
    /// Checkpoint attempts that failed with an I/O error (the previous
    /// checkpoint remains in effect).
    pub fn checkpoint_failures(&self) -> u64 {
        self.wal.get().map(|w| w.checkpoint_failures()).unwrap_or(0)
    }
    /// Log-segment bytes reclaimed by online checkpoint truncation. Compare
    /// against [`DbStats::log_bytes`] to observe truncation effectiveness.
    pub fn log_truncated_bytes(&self) -> u64 {
        self.wal.get().map(|w| w.log_truncated_bytes()).unwrap_or(0)
    }
    /// Log segments deleted by online checkpoint truncation.
    pub fn log_truncated_segments(&self) -> u64 {
        self.wal
            .get()
            .map(|w| w.log_truncated_segments())
            .unwrap_or(0)
    }
    /// Per-table log-space accounting: redo bytes and records appended per
    /// (reactor, relation), sorted by descending byte count.
    pub fn log_bytes_per_table(&self) -> Vec<TableLogUsage> {
        self.wal.get().map(|w| w.per_table()).unwrap_or_default()
    }

    /// Abort rate over attempted root transactions (cc aborts only, matching
    /// the paper's reporting; user aborts are part of normal application
    /// behaviour).
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed() + self.cc_aborts();
        if attempts == 0 {
            0.0
        } else {
            self.cc_aborts() as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DbStats::new();
        s.record_commit();
        s.record_commit();
        s.record_cc_abort();
        s.record_user_abort();
        s.record_dangerous_abort();
        s.record_sub_dispatch();
        s.record_sub_inline();
        s.record_scan_ops(3);
        assert_eq!(s.committed(), 2);
        assert_eq!(s.cc_aborts(), 1);
        assert_eq!(s.user_aborts(), 1);
        assert_eq!(s.dangerous_aborts(), 1);
        assert_eq!(s.sub_txns_dispatched(), 1);
        assert_eq!(s.sub_txns_inlined(), 1);
        assert_eq!(s.scan_ops(), 3);
        assert!((s.abort_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn phantom_aborts_are_a_distinguishable_subset_of_cc_aborts() {
        let s = DbStats::new();
        s.record_commit();
        s.record_cc_abort();
        s.record_phantom_abort();
        assert_eq!(s.cc_aborts(), 2, "phantoms count as cc aborts");
        assert_eq!(s.phantom_aborts(), 1);
        assert_eq!(s.cc_aborts() - s.phantom_aborts(), 1, "read-set conflicts");
        assert!((s.abort_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn abort_rate_of_idle_database_is_zero() {
        assert_eq!(DbStats::new().abort_rate(), 0.0);
    }

    #[test]
    fn client_counters_track_in_flight_high_water() {
        let s = DbStats::new();
        s.record_client_submit();
        s.record_client_submit();
        s.record_client_submit();
        assert_eq!(s.handles_in_flight(), 3);
        assert_eq!(s.handles_in_flight_hwm(), 3);
        s.record_client_resolve(true, false);
        s.record_client_resolve(false, true);
        s.record_client_timeout();
        assert_eq!(s.handles_in_flight(), 1);
        assert_eq!(s.handles_in_flight_hwm(), 3, "high water is sticky");
        assert_eq!(s.client_committed(), 1);
        assert_eq!(s.client_aborted(), 1);
        assert_eq!(s.client_phantom_aborts(), 1);
        assert_eq!(s.client_timeouts(), 1);
    }
}
