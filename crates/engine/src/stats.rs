//! Database-wide commit/abort counters.
//!
//! The evaluation reports abort rates per deployment (§4.3.1); these
//! counters let the harness and the tests observe them without instrumenting
//! the workload code.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use reactdb_obs::AbortReason;
use reactdb_wal::{TableLogUsage, WalStats};

use crate::client::SessionShared;

/// Monotonic counters describing what happened to root transactions.
///
/// Aborts are kept as one counter per [`AbortReason`]; the legacy
/// aggregates ([`DbStats::cc_aborts`], [`DbStats::user_aborts`], ...) are
/// derived views over that breakdown, so existing callers keep working and
/// new callers get full attribution via [`DbStats::aborts_by_reason`].
/// Fields are private by design — read through the accessors, which stay
/// stable even as the underlying counter layout evolves.
#[derive(Debug, Default)]
pub struct DbStats {
    committed: AtomicU64,
    /// One counter per [`AbortReason`], indexed by `reason as usize`
    /// (declaration order matches [`AbortReason::ALL`]).
    aborts: [AtomicU64; AbortReason::ALL.len()],
    sub_txns_dispatched: AtomicU64,
    sub_txns_inlined: AtomicU64,
    scan_ops: AtomicU64,
    recovered_txns: AtomicU64,
    recovered_checkpoint_rows: AtomicU64,
    recovery_replay_workers: AtomicU64,
    /// Client-visible outcome counters, maintained by the session layer
    /// (`crate::client`): the same aggregate each session keeps, fed with
    /// the same events across every session of this database. One
    /// increment per *handle* submission, resolution, or timeout — distinct
    /// from the engine-side counters above.
    client: SessionShared,
    /// Durability counters, shared with the write-ahead log when one is
    /// configured.
    wal: OnceLock<Arc<WalStats>>,
}

impl DbStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_commit(&self) {
        self.committed.fetch_add(1, Ordering::Relaxed);
    }
    /// Counts one aborted root transaction under its classified reason.
    pub(crate) fn record_abort(&self, reason: AbortReason) {
        self.aborts[reason as usize].fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_scan_ops(&self, n: u64) {
        if n > 0 {
            self.scan_ops.fetch_add(n, Ordering::Relaxed);
        }
    }
    pub(crate) fn record_sub_dispatch(&self) {
        self.sub_txns_dispatched.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_sub_inline(&self) {
        self.sub_txns_inlined.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_recovered(&self, n: u64) {
        self.recovered_txns.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn record_recovered_checkpoint_rows(&self, n: u64) {
        self.recovered_checkpoint_rows
            .fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn record_replay_workers(&self, n: u64) {
        self.recovery_replay_workers.fetch_max(n, Ordering::Relaxed);
    }
    pub(crate) fn attach_wal(&self, stats: Arc<WalStats>) {
        let _ = self.wal.set(stats);
    }

    /// Called by the session layer when a handle is submitted.
    pub(crate) fn record_client_submit(&self) {
        self.client.on_submit();
    }
    /// Called exactly once per submitted handle when its future resolves
    /// (commit, abort, or abandonment). `reason` is the classified cause of
    /// an abort, `None` on commit.
    pub(crate) fn record_client_resolve(&self, committed: bool, reason: Option<AbortReason>) {
        self.client.on_resolve(committed, reason);
    }
    /// Called when a client gave up waiting on a handle (the transaction
    /// may still resolve later and then also count as committed/aborted).
    pub(crate) fn record_client_timeout(&self) {
        self.client.on_timeout();
    }

    /// Root transactions that committed.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }
    /// Root transactions aborted for one specific reason.
    pub fn abort_count(&self, reason: AbortReason) -> u64 {
        self.aborts[reason as usize].load(Ordering::Relaxed)
    }
    /// The full abort breakdown, one `(reason, count)` per
    /// [`AbortReason::ALL`] entry (zero counts included).
    pub fn aborts_by_reason(&self) -> [(AbortReason, u64); AbortReason::ALL.len()] {
        let mut out = [(AbortReason::Other, 0u64); AbortReason::ALL.len()];
        for (slot, reason) in out.iter_mut().zip(AbortReason::ALL) {
            *slot = (reason, self.abort_count(reason));
        }
        out
    }
    /// Root transactions aborted by concurrency control: the sum of the
    /// occ-read, phantom and lock-busy reasons (exactly the errors
    /// `TxnError::is_cc_abort` reports). Includes
    /// [`DbStats::phantom_aborts`].
    pub fn cc_aborts(&self) -> u64 {
        AbortReason::ALL
            .into_iter()
            .filter(|r| r.is_cc())
            .map(|r| self.abort_count(r))
            .sum()
    }
    /// Root transactions aborted specifically by node-set validation: a
    /// range they scanned (or a key whose absence they observed) changed
    /// membership before commit. A subset of [`DbStats::cc_aborts`] —
    /// subtract to get ordinary read-set conflicts.
    pub fn phantom_aborts(&self) -> u64 {
        self.abort_count(AbortReason::Phantom)
    }
    /// Transactional scan operations executed (range scans, full scans,
    /// secondary lookups/ranges) across all root transactions, committed or
    /// aborted.
    pub fn scan_ops(&self) -> u64 {
        self.scan_ops.load(Ordering::Relaxed)
    }
    /// Root transactions aborted by something other than concurrency
    /// control or the safety condition: application aborts plus WAL
    /// failures and runtime faults. [`DbStats::aborts_by_reason`] splits
    /// the three apart.
    pub fn user_aborts(&self) -> u64 {
        self.abort_count(AbortReason::UserAbort)
            + self.abort_count(AbortReason::WalFailure)
            + self.abort_count(AbortReason::Other)
    }
    /// Root transactions aborted by the intra-transaction safety condition.
    pub fn dangerous_aborts(&self) -> u64 {
        self.abort_count(AbortReason::DangerousStructure)
    }
    /// Sub-transactions dispatched to another container's executor.
    pub fn sub_txns_dispatched(&self) -> u64 {
        self.sub_txns_dispatched.load(Ordering::Relaxed)
    }
    /// Sub-transactions executed synchronously on the calling executor.
    pub fn sub_txns_inlined(&self) -> u64 {
        self.sub_txns_inlined.load(Ordering::Relaxed)
    }

    /// Root transactions whose handle resolved with a commit, as seen by
    /// client sessions.
    pub fn client_committed(&self) -> u64 {
        self.client.snapshot().committed
    }
    /// Root transactions whose handle resolved with an error (concurrency
    /// abort, user abort, or abandonment), as seen by client sessions.
    pub fn client_aborted(&self) -> u64 {
        self.client.snapshot().aborted
    }
    /// Handles that resolved with a phantom abort, as seen by client
    /// sessions (a subset of [`DbStats::client_aborted`]).
    pub fn client_phantom_aborts(&self) -> u64 {
        self.client.snapshot().phantom_aborts
    }
    /// Waits on a handle that hit the client timeout.
    pub fn client_timeouts(&self) -> u64 {
        self.client.snapshot().timeouts
    }
    /// Handles currently submitted and unresolved across all sessions.
    pub fn handles_in_flight(&self) -> u64 {
        self.client.snapshot().in_flight
    }
    /// Deepest pipelining observed: the high-water mark of in-flight
    /// handles.
    pub fn handles_in_flight_hwm(&self) -> u64 {
        self.client.snapshot().in_flight_hwm
    }

    /// Transactions replayed from the write-ahead log by crash recovery.
    /// With checkpointing enabled this counts only the post-checkpoint
    /// *tail* — the quantity checkpointing bounds.
    pub fn recovered_txns(&self) -> u64 {
        self.recovered_txns.load(Ordering::Relaxed)
    }
    /// Rows loaded from the newest complete checkpoint by crash recovery
    /// (0 when no checkpoint was installed).
    pub fn recovered_checkpoint_rows(&self) -> u64 {
        self.recovered_checkpoint_rows.load(Ordering::Relaxed)
    }
    /// Replay workers the partitioned recovery replay fanned out to (0 when
    /// this instance did not boot through recovery).
    pub fn recovery_replay_workers(&self) -> u64 {
        self.recovery_replay_workers.load(Ordering::Relaxed)
    }
    /// Bytes of redo frames appended to the write-ahead log (0 when
    /// durability is off).
    pub fn log_bytes(&self) -> u64 {
        self.wal.get().map(|w| w.bytes_logged()).unwrap_or(0)
    }
    /// Redo records appended to the write-ahead log.
    pub fn log_records(&self) -> u64 {
        self.wal.get().map(|w| w.records_logged()).unwrap_or(0)
    }
    /// Redo records shipped as field-level deltas instead of full row
    /// images (0 when delta logging is off).
    pub fn log_delta_records(&self) -> u64 {
        self.wal.get().map(|w| w.delta_records()).unwrap_or(0)
    }
    /// Log bytes saved by delta records relative to full-image encodings of
    /// the same rows. `log_bytes + log_bytes_saved` approximates what the
    /// same history would have cost with delta logging off.
    pub fn log_bytes_saved(&self) -> u64 {
        self.wal.get().map(|w| w.delta_bytes_saved()).unwrap_or(0)
    }
    /// Group commits (flush + fsync + durable-epoch advance) performed.
    pub fn log_syncs(&self) -> u64 {
        self.wal.get().map(|w| w.syncs()).unwrap_or(0)
    }
    /// Group commits that failed with an I/O error: non-zero and climbing
    /// means the log device is unhealthy and the durable epoch is stalling.
    pub fn log_sync_failures(&self) -> u64 {
        self.wal.get().map(|w| w.sync_failures()).unwrap_or(0)
    }
    /// Highest epoch currently guaranteed durable (0 when durability is off
    /// or nothing has been synced).
    pub fn durable_epoch(&self) -> u64 {
        self.wal.get().map(|w| w.durable_epoch()).unwrap_or(0)
    }
    /// Durable-acknowledgement waits that actually blocked on a group
    /// commit (`TxnHandle::wait_durable` behind the durable epoch).
    pub fn durable_waits(&self) -> u64 {
        self.wal.get().map(|w| w.durable_waits()).unwrap_or(0)
    }
    /// Checkpoints completed (background daemon plus explicit
    /// `ReactDB::checkpoint_now` calls).
    pub fn checkpoints_taken(&self) -> u64 {
        self.wal.get().map(|w| w.checkpoints_taken()).unwrap_or(0)
    }
    /// Completed checkpoints that were delta captures (dirty rows only).
    pub fn checkpoints_delta(&self) -> u64 {
        self.wal.get().map(|w| w.checkpoints_delta()).unwrap_or(0)
    }
    /// Cumulative bytes of checkpoint data files written.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.wal.get().map(|w| w.checkpoint_bytes()).unwrap_or(0)
    }
    /// Checkpoint attempts that failed with an I/O error (the previous
    /// checkpoint remains in effect).
    pub fn checkpoint_failures(&self) -> u64 {
        self.wal.get().map(|w| w.checkpoint_failures()).unwrap_or(0)
    }
    /// Log-segment bytes reclaimed by online checkpoint truncation. Compare
    /// against [`DbStats::log_bytes`] to observe truncation effectiveness.
    pub fn log_truncated_bytes(&self) -> u64 {
        self.wal.get().map(|w| w.log_truncated_bytes()).unwrap_or(0)
    }
    /// Log segments deleted by online checkpoint truncation.
    pub fn log_truncated_segments(&self) -> u64 {
        self.wal
            .get()
            .map(|w| w.log_truncated_segments())
            .unwrap_or(0)
    }
    /// Per-table log-space accounting: redo bytes and records appended per
    /// (reactor, relation), sorted by descending byte count.
    pub fn log_bytes_per_table(&self) -> Vec<TableLogUsage> {
        self.wal.get().map(|w| w.per_table()).unwrap_or_default()
    }

    /// Abort rate over attempted root transactions (cc aborts only, matching
    /// the paper's reporting; user aborts are part of normal application
    /// behaviour).
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed() + self.cc_aborts();
        if attempts == 0 {
            0.0
        } else {
            self.cc_aborts() as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DbStats::new();
        s.record_commit();
        s.record_commit();
        s.record_abort(AbortReason::OccRead);
        s.record_abort(AbortReason::UserAbort);
        s.record_abort(AbortReason::DangerousStructure);
        s.record_sub_dispatch();
        s.record_sub_inline();
        s.record_scan_ops(3);
        assert_eq!(s.committed(), 2);
        assert_eq!(s.cc_aborts(), 1);
        assert_eq!(s.user_aborts(), 1);
        assert_eq!(s.dangerous_aborts(), 1);
        assert_eq!(s.sub_txns_dispatched(), 1);
        assert_eq!(s.sub_txns_inlined(), 1);
        assert_eq!(s.scan_ops(), 3);
        assert!((s.abort_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn phantom_aborts_are_a_distinguishable_subset_of_cc_aborts() {
        let s = DbStats::new();
        s.record_commit();
        s.record_abort(AbortReason::OccRead);
        s.record_abort(AbortReason::Phantom);
        assert_eq!(s.cc_aborts(), 2, "phantoms count as cc aborts");
        assert_eq!(s.phantom_aborts(), 1);
        assert_eq!(s.cc_aborts() - s.phantom_aborts(), 1, "read-set conflicts");
        assert!((s.abort_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn abort_breakdown_attributes_every_reason_and_sums_to_the_aggregates() {
        let s = DbStats::new();
        for reason in AbortReason::ALL {
            s.record_abort(reason);
        }
        s.record_abort(AbortReason::LockBusy);
        for (reason, count) in s.aborts_by_reason() {
            let expected = if reason == AbortReason::LockBusy {
                2
            } else {
                1
            };
            assert_eq!(count, expected, "{}", reason.name());
        }
        assert_eq!(s.cc_aborts(), 4, "occ_read + phantom + 2x lock_busy");
        assert_eq!(s.user_aborts(), 3, "user_abort + wal_failure + other");
        assert_eq!(s.dangerous_aborts(), 1);
        let total: u64 = s.aborts_by_reason().iter().map(|(_, n)| n).sum();
        assert_eq!(
            total,
            s.cc_aborts() + s.user_aborts() + s.dangerous_aborts(),
            "every abort lands in exactly one aggregate"
        );
    }

    #[test]
    fn abort_rate_of_idle_database_is_zero() {
        assert_eq!(DbStats::new().abort_rate(), 0.0);
    }

    #[test]
    fn client_counters_track_in_flight_high_water() {
        let s = DbStats::new();
        s.record_client_submit();
        s.record_client_submit();
        s.record_client_submit();
        assert_eq!(s.handles_in_flight(), 3);
        assert_eq!(s.handles_in_flight_hwm(), 3);
        s.record_client_resolve(true, None);
        s.record_client_resolve(false, Some(AbortReason::Phantom));
        s.record_client_timeout();
        assert_eq!(s.handles_in_flight(), 1);
        assert_eq!(s.handles_in_flight_hwm(), 3, "high water is sticky");
        assert_eq!(s.client_committed(), 1);
        assert_eq!(s.client_aborted(), 1);
        assert_eq!(s.client_phantom_aborts(), 1);
        assert_eq!(s.client_timeouts(), 1);
    }
}
