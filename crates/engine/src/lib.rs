//! ReactDB runtime: flexible virtualization of database architecture.
//!
//! The engine realises the system design of §3: the reactor database is
//! deployed over a set of *containers* (isolated memory regions with their
//! own concurrency control) and *transaction executors* (request queues
//! processed by threads), according to a [`reactdb_common::DeploymentConfig`]
//! that an infrastructure engineer can change without touching any
//! application code.
//!
//! * [`Container`] — a partition of reactor state plus its OCC machinery,
//! * [`ExecutorHandle`] — a transaction executor: a request queue, the
//!   threads draining it, and the executor's TID generator,
//! * [`Router`] — maps root transactions (round-robin or affinity) and
//!   sub-transactions (affinity) to executors,
//! * [`ReactDB`] — the database itself: bootstraps a deployment from a
//!   [`reactdb_core::ReactorDatabaseSpec`], accepts root-transaction
//!   invocations from clients, dispatches cross-container sub-transactions,
//!   enforces the intra-transaction safety condition and commits via Silo
//!   OCC + 2PC,
//! * [`Client`] / [`TxnHandle`] — the client session layer: pipelined
//!   submission of root transactions with validation-time (`wait`) or
//!   durability-gated (`wait_durable`) acknowledgement, plus
//!   [`RetryPolicy`]-driven OCC retries,
//! * [`DbStats`] — commit/abort counters exposed to the benchmark harness.
//!
//! Threading model: each executor owns `mpl` worker threads. A worker that
//! must wait for a remote sub-transaction keeps draining its own request
//! queue while it waits (cooperative multitasking, §3.2.3), so executors can
//! never deadlock on mutual sub-transaction calls.

pub mod client;
pub mod container;
pub mod database;
pub mod executor;
pub mod request;
pub mod router;
pub mod stats;

pub use client::{Call, Client, RetryPolicy, SessionStats, TxnHandle};
pub use container::Container;
pub use database::ReactDB;
pub use executor::ExecutorHandle;
pub use reactdb_common::AckLevel;
pub use reactdb_obs::{
    AbortReason, Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Phase, TraceEvent,
    TraceKind,
};
pub use request::{Request, RootTxn};
pub use router::Router;
pub use stats::DbStats;
