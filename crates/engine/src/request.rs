//! Requests flowing through executor queues and per-root-transaction state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use reactdb_common::{ContainerId, ReactorId, SubTxnId, TxnId, Value};
use reactdb_core::FutureWriter;
use reactdb_txn::OccTxn;

/// Shared state of one root transaction, visible to every executor that runs
/// one of its sub-transactions.
#[derive(Debug)]
pub struct RootTxn {
    id: TxnId,
    next_sub: AtomicU64,
    participants: Mutex<HashMap<ContainerId, Arc<Mutex<OccTxn>>>>,
}

impl RootTxn {
    /// Creates the state for a new root transaction.
    pub fn new(id: TxnId) -> Arc<Self> {
        Arc::new(Self {
            id,
            // Sub-transaction 0 is the root procedure itself.
            next_sub: AtomicU64::new(1),
            participants: Mutex::new(HashMap::new()),
        })
    }

    /// Root transaction identifier.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Allocates the identifier of the next nested sub-transaction.
    pub fn next_sub(&self) -> SubTxnId {
        SubTxnId(self.next_sub.fetch_add(1, Ordering::Relaxed))
    }

    /// Returns (creating it if needed) the OCC participant of `container`
    /// for this transaction.
    pub fn participant(&self, container: ContainerId) -> Arc<Mutex<OccTxn>> {
        let mut participants = self.participants.lock();
        Arc::clone(
            participants
                .entry(container)
                .or_insert_with(|| Arc::new(Mutex::new(OccTxn::new(container)))),
        )
    }

    /// Number of containers touched so far.
    pub fn participant_count(&self) -> usize {
        self.participants.lock().len()
    }

    /// Takes ownership of all participants for the commit protocol, leaving
    /// the map empty. Called once, after every sub-transaction completed.
    pub fn take_participants(&self) -> Vec<OccTxn> {
        let mut participants = self.participants.lock();
        participants
            .drain()
            .map(|(container, arc)| {
                // All sub-transactions completed, so we are the only owner;
                // fall back to swapping the contents out if a stray clone of
                // the Arc still exists (defensive, should not happen).
                match Arc::try_unwrap(arc) {
                    Ok(mutex) => mutex.into_inner(),
                    Err(shared) => {
                        let mut guard = shared.lock();
                        std::mem::replace(&mut *guard, OccTxn::new(container))
                    }
                }
            })
            .collect()
    }
}

/// A unit of work queued on a transaction executor.
#[derive(Debug)]
pub enum Request {
    /// A root transaction invocation submitted by a client driver.
    Root {
        /// Shared root-transaction state.
        root: Arc<RootTxn>,
        /// Reactor the procedure must run on.
        reactor: ReactorId,
        /// Procedure name.
        proc: String,
        /// Procedure arguments.
        args: Vec<Value>,
        /// Where to deliver the final (post-commit) result.
        writer: FutureWriter,
    },
    /// A sub-transaction dispatched from another container.
    Sub {
        /// Shared root-transaction state.
        root: Arc<RootTxn>,
        /// Target reactor.
        reactor: ReactorId,
        /// Sub-transaction identifier within the root transaction.
        sub: SubTxnId,
        /// Procedure name.
        proc: String,
        /// Procedure arguments.
        args: Vec<Value>,
        /// Where to deliver the sub-transaction result.
        writer: FutureWriter,
    },
    /// Ask the receiving worker thread to exit.
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_ids_are_unique_and_start_after_root() {
        let root = RootTxn::new(TxnId(7));
        assert_eq!(root.id(), TxnId(7));
        let a = root.next_sub();
        let b = root.next_sub();
        assert_eq!(a, SubTxnId(1));
        assert_eq!(b, SubTxnId(2));
    }

    #[test]
    fn participants_are_created_lazily_and_shared() {
        let root = RootTxn::new(TxnId(1));
        let p1 = root.participant(ContainerId(0));
        let p2 = root.participant(ContainerId(0));
        assert!(Arc::ptr_eq(&p1, &p2));
        let _p3 = root.participant(ContainerId(1));
        assert_eq!(root.participant_count(), 2);
        drop((p1, p2));
        let taken = root.take_participants();
        assert_eq!(taken.len(), 2);
        assert_eq!(root.participant_count(), 0);
    }

    #[test]
    fn take_participants_survives_outstanding_clones() {
        let root = RootTxn::new(TxnId(1));
        let outstanding = root.participant(ContainerId(3));
        let taken = root.take_participants();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].container(), ContainerId(3));
        // The stray clone still works (now holding a fresh, empty participant).
        assert_eq!(outstanding.lock().container(), ContainerId(3));
    }
}
