//! Transaction routers.
//!
//! "Transaction routers decide the transaction executor that should run a
//! transaction or sub-transaction according to a given policy, e.g.,
//! round-robin or affinity-based" (§3.1). Root transactions are routed by
//! the configured policy; sub-transactions are always routed by affinity to
//! the executor owning the target reactor, which is what gives the
//! shared-nothing deployments their program-to-data affinity.

use std::sync::atomic::{AtomicUsize, Ordering};

use reactdb_common::{ContainerId, ExecutorId, ReactorId, RouterPolicy};

/// Routing tables derived from the deployment configuration.
#[derive(Debug)]
pub struct Router {
    policy: RouterPolicy,
    /// For every container (dense id), its executors.
    executors_of_container: Vec<Vec<ExecutorId>>,
    /// For every reactor (dense id), its container.
    container_of_reactor: Vec<ContainerId>,
    /// For every reactor (dense id), its affinity executor.
    executor_of_reactor: Vec<ExecutorId>,
    round_robin: AtomicUsize,
}

impl Router {
    /// Builds routing tables.
    ///
    /// `executors_of_container[c]` lists the executors of container `c`;
    /// `container_of_reactor[r]` gives the container of reactor `r`. The
    /// affinity executor of a reactor is chosen by striping reactors across
    /// their container's executors.
    pub fn new(
        policy: RouterPolicy,
        executors_of_container: Vec<Vec<ExecutorId>>,
        container_of_reactor: Vec<ContainerId>,
    ) -> Self {
        let executor_of_reactor = container_of_reactor
            .iter()
            .enumerate()
            .map(|(r, c)| {
                let execs = &executors_of_container[c.index()];
                assert!(!execs.is_empty(), "container {c} has no executors");
                execs[r % execs.len()]
            })
            .collect();
        Self {
            policy,
            executors_of_container,
            container_of_reactor,
            executor_of_reactor,
            round_robin: AtomicUsize::new(0),
        }
    }

    /// The configured routing policy for root transactions.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Container hosting `reactor`.
    pub fn container_of(&self, reactor: ReactorId) -> ContainerId {
        self.container_of_reactor[reactor.index()]
    }

    /// Affinity executor of `reactor`.
    pub fn affinity_executor_of(&self, reactor: ReactorId) -> ExecutorId {
        self.executor_of_reactor[reactor.index()]
    }

    /// Executor that should run a *root* transaction targeting `reactor`.
    pub fn route_root(&self, reactor: ReactorId) -> ExecutorId {
        match self.policy {
            RouterPolicy::Affinity => self.affinity_executor_of(reactor),
            RouterPolicy::RoundRobin => {
                let container = self.container_of(reactor);
                let execs = &self.executors_of_container[container.index()];
                let n = self.round_robin.fetch_add(1, Ordering::Relaxed);
                execs[n % execs.len()]
            }
        }
    }

    /// Executor that should run a *sub-transaction* targeting `reactor`
    /// (always affinity-based, §3.3).
    pub fn route_sub(&self, reactor: ReactorId) -> ExecutorId {
        self.affinity_executor_of(reactor)
    }

    /// Number of reactors known to the router.
    pub fn reactor_count(&self) -> usize {
        self.container_of_reactor.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_everything_router(policy: RouterPolicy) -> Router {
        // One container, four executors, six reactors.
        Router::new(
            policy,
            vec![(0..4).map(ExecutorId).collect()],
            (0..6).map(|_| ContainerId(0)).collect(),
        )
    }

    #[test]
    fn round_robin_spreads_roots_across_executors() {
        let r = shared_everything_router(RouterPolicy::RoundRobin);
        let picks: Vec<ExecutorId> = (0..8).map(|_| r.route_root(ReactorId(0))).collect();
        assert_eq!(picks[0], ExecutorId(0));
        assert_eq!(picks[1], ExecutorId(1));
        assert_eq!(picks[4], ExecutorId(0));
        // Every executor is used.
        let distinct: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn affinity_pins_each_reactor_to_one_executor() {
        let r = shared_everything_router(RouterPolicy::Affinity);
        for reactor in 0..6u64 {
            let first = r.route_root(ReactorId(reactor));
            for _ in 0..5 {
                assert_eq!(r.route_root(ReactorId(reactor)), first);
            }
            assert_eq!(r.route_sub(ReactorId(reactor)), first);
        }
        // Reactors stripe over executors.
        assert_ne!(
            r.affinity_executor_of(ReactorId(0)),
            r.affinity_executor_of(ReactorId(1))
        );
    }

    #[test]
    fn shared_nothing_maps_reactor_to_its_container_executor() {
        // Three containers, one executor each; reactors striped round-robin
        // over containers by the deployment config.
        let r = Router::new(
            RouterPolicy::Affinity,
            vec![
                vec![ExecutorId(0)],
                vec![ExecutorId(1)],
                vec![ExecutorId(2)],
            ],
            (0..9).map(|i| ContainerId(i % 3)).collect(),
        );
        assert_eq!(r.container_of(ReactorId(4)), ContainerId(1));
        assert_eq!(r.route_root(ReactorId(4)), ExecutorId(1));
        assert_eq!(r.route_sub(ReactorId(8)), ExecutorId(2));
        assert_eq!(r.reactor_count(), 9);
    }

    #[test]
    fn sub_transactions_are_always_affinity_routed() {
        let r = shared_everything_router(RouterPolicy::RoundRobin);
        let first = r.route_sub(ReactorId(2));
        for _ in 0..5 {
            assert_eq!(r.route_sub(ReactorId(2)), first);
        }
    }
}
