//! Database containers.
//!
//! A container encloses a shared-memory region of the machine storing the
//! state of one or many reactors, together with the mechanisms for
//! transactional consistency over that state (§3.1). Containers never share
//! data with each other; transactions spanning several containers are
//! committed by the transaction coordinator's 2PC.

use std::sync::Arc;

use reactdb_common::ContainerId;
use reactdb_storage::Partition;

/// One database container: its identifier and the storage partition holding
/// the relations of the reactors mapped to it. The OCC read/write sets are
/// per-transaction (see `reactdb-txn`); the epoch manager is shared by the
/// whole database, mirroring Silo's single global epoch.
#[derive(Debug)]
pub struct Container {
    id: ContainerId,
    partition: Arc<Partition>,
}

impl Container {
    /// Creates an empty container.
    pub fn new(id: ContainerId) -> Self {
        Self {
            id,
            partition: Arc::new(Partition::new()),
        }
    }

    /// Container identifier.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// The storage partition of this container.
    pub fn partition(&self) -> Arc<Partition> {
        Arc::clone(&self.partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_common::ReactorId;
    use reactdb_storage::{ColumnType, RelationDef, Schema};

    #[test]
    fn container_holds_isolated_partition() {
        let c0 = Container::new(ContainerId(0));
        let c1 = Container::new(ContainerId(1));
        assert_eq!(c0.id(), ContainerId(0));
        c0.partition().create_reactor(
            ReactorId(0),
            &[RelationDef::new(
                "r",
                Schema::of(&[("id", ColumnType::Int)], &["id"]),
            )],
        );
        assert!(c0.partition().hosts_reactor(ReactorId(0)));
        assert!(!c1.partition().hosts_reactor(ReactorId(0)));
    }
}
