//! The client session layer: pipelined transaction handles with
//! durability-aware completion.
//!
//! The paper's client contract is "asynchronous function calls returning
//! promises" (§2.2.1). This module is that contract as a first-class API:
//! [`ReactDB::client`](crate::ReactDB::client) opens a session, and the
//! cheaply-cloneable [`Client`] handle submits root transactions without
//! blocking — many may be in flight per session — returning a [`TxnHandle`]
//! per transaction.
//!
//! A handle offers three completion modes:
//!
//! * [`TxnHandle::wait`] resolves at **validation time**: the transaction
//!   passed Silo validation and its writes are installed, but its epoch may
//!   not have group-committed yet. This is the engine's historical
//!   semantics; a crash inside the window (at most one epoch) can lose an
//!   acknowledged transaction.
//! * [`TxnHandle::wait_durable`] resolves only once the WAL's **durable
//!   epoch covers the transaction's commit epoch** — the acknowledgement
//!   rule of Silo/SiloR (Tu et al., SOSP'13; Zheng et al., OSDI'14). Under
//!   `EpochSync` durability a transaction acknowledged this way is
//!   guaranteed to survive a crash; under `Buffered` it degrades to a
//!   flush (no fsync), and with durability off to `wait`.
//! * [`TxnHandle::try_result`] polls without blocking.
//!
//! [`RetryPolicy`] packages the retry loop every OCC front end otherwise
//! re-implements: validation aborts (and optionally dangerous-structure
//! aborts) are transient, so [`Client::invoke_with_retry`] re-submits with
//! bounded exponential backoff while user aborts propagate immediately.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use reactdb_common::{AckLevel, Result, TxnError, Value};
use reactdb_core::{FulfillHook, ReactorFuture};
use reactdb_obs::{AbortReason, Phase, TraceKind};

use crate::database::{Inner, CLIENT_TIMEOUT};

/// Per-session counters, shared by every clone of a [`Client`] and by the
/// handles it issued. The same events also feed the database-wide
/// client-visible counters in [`crate::DbStats`].
#[derive(Debug, Default)]
pub(crate) struct SessionShared {
    submitted: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    /// One counter per [`AbortReason`], indexed by `reason as usize`.
    abort_reasons: [AtomicU64; AbortReason::ALL.len()],
    timeouts: AtomicU64,
    in_flight: AtomicU64,
    in_flight_hwm: AtomicU64,
}

impl SessionShared {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub(crate) fn on_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.in_flight_hwm.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn on_resolve(&self, committed: bool, reason: Option<AbortReason>) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        if committed {
            self.committed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.aborted.fetch_add(1, Ordering::Relaxed);
            if let Some(reason) = reason {
                self.abort_reasons[reason as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn on_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> SessionStats {
        let mut aborts_by_reason = [(AbortReason::Other, 0u64); AbortReason::ALL.len()];
        for (slot, reason) in aborts_by_reason.iter_mut().zip(AbortReason::ALL) {
            *slot = (
                reason,
                self.abort_reasons[reason as usize].load(Ordering::Relaxed),
            );
        }
        SessionStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            phantom_aborts: self.abort_reasons[AbortReason::Phantom as usize]
                .load(Ordering::Relaxed),
            aborts_by_reason,
            timeouts: self.timeouts.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            in_flight_hwm: self.in_flight_hwm.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of one session's client-visible outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Root transactions submitted through this session.
    pub submitted: u64,
    /// Handles that resolved with a commit.
    pub committed: u64,
    /// Handles that resolved with an error (concurrency abort, user abort,
    /// or abandonment at shutdown).
    pub aborted: u64,
    /// Handles that resolved with a phantom abort — node-set validation
    /// detected that a scanned range changed membership before commit. A
    /// subset of `aborted`, separated so workload reports can tell phantom
    /// invalidations from ordinary OCC read-set conflicts. Equals the
    /// [`AbortReason::Phantom`] entry of `aborts_by_reason`.
    pub phantom_aborts: u64,
    /// Aborted handles broken down by classified cause, one `(reason,
    /// count)` per [`AbortReason::ALL`] entry. The counts sum to `aborted`.
    pub aborts_by_reason: [(AbortReason, u64); AbortReason::ALL.len()],
    /// Waits that hit the client timeout.
    pub timeouts: u64,
    /// Handles currently in flight (submitted, not yet resolved).
    pub in_flight: u64,
    /// High-water mark of in-flight handles: how deep this session actually
    /// pipelined.
    pub in_flight_hwm: u64,
}

/// One root-transaction invocation, for [`Client::submit_batch`].
#[derive(Debug, Clone)]
pub struct Call {
    /// Reactor the procedure runs on.
    pub reactor: String,
    /// Procedure name.
    pub proc: String,
    /// Procedure arguments.
    pub args: Vec<Value>,
}

impl Call {
    /// Describes `proc(args)` on the reactor named `reactor`.
    pub fn new(reactor: impl Into<String>, proc: impl Into<String>, args: Vec<Value>) -> Self {
        Self {
            reactor: reactor.into(),
            proc: proc.into(),
            args,
        }
    }
}

/// A client session handle. Cheap to clone (two `Arc`s); clones share the
/// session and its statistics. Obtained from
/// [`ReactDB::client`](crate::ReactDB::client).
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
    session: Arc<SessionShared>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.session.snapshot();
        f.debug_struct("Client")
            .field("submitted", &stats.submitted)
            .field("in_flight", &stats.in_flight)
            .finish()
    }
}

impl Client {
    pub(crate) fn new(inner: Arc<Inner>, session: Arc<SessionShared>) -> Self {
        Self { inner, session }
    }

    /// Submits a root transaction without waiting and returns its handle,
    /// acknowledged at [`AckLevel::Validated`]. Equivalent to
    /// [`Client::submit_with`] at the weakest level; see there for the
    /// ack-level semantics.
    pub fn submit(&self, reactor: &str, proc: &str, args: Vec<Value>) -> Result<TxnHandle> {
        self.submit_with(reactor, proc, args, AckLevel::Validated)
    }

    /// Submits a root transaction without waiting and returns its handle.
    /// Any number of handles may be in flight; submission order does not
    /// constrain commit order (transactions are independent roots).
    ///
    /// The [`AckLevel`] is recorded on the handle and selects the guarantee
    /// [`TxnHandle::wait_acked`] provides: `Validated` resolves at OCC
    /// validation time, `Durable` once the commit epoch group-committed.
    /// `Replicated` is accepted for API uniformity but — in process, where
    /// no follower exists — waits like `Durable`: the replication gate
    /// lives in the wire server's reply path, which holds replies until a
    /// follower durably applied the commit epoch.
    pub fn submit_with(
        &self,
        reactor: &str,
        proc: &str,
        args: Vec<Value>,
        ack: AckLevel,
    ) -> Result<TxnHandle> {
        // Everything that can reject the submission happens here, before
        // any accounting, so counters only ever cover transactions that
        // actually enter the system.
        let reactor_id = self.inner.validate_root(reactor)?;

        self.session.on_submit();
        self.inner.stats.record_client_submit();
        let session = Arc::clone(&self.session);
        let stats_owner = Arc::clone(&self.inner);
        let hook: FulfillHook = Box::new(move |result| {
            let committed = result.is_ok();
            let reason = result.as_ref().err().map(AbortReason::classify);
            session.on_resolve(committed, reason);
            stats_owner.stats.record_client_resolve(committed, reason);
        });
        // enqueue_root cannot fail: a rejected or abandoned request drops
        // its writer, which resolves the future with an error and fires the
        // hook — the accounting above always balances.
        let future = self.inner.enqueue_root(reactor_id, proc, args, Some(hook));
        Ok(TxnHandle {
            future,
            inner: Arc::clone(&self.inner),
            session: Arc::clone(&self.session),
            ack,
            timeout_recorded: AtomicBool::new(false),
        })
    }

    /// Submits a batch of root transactions back to back (pipelined) and
    /// returns their handles in submission order. Fail-fast: an invalid
    /// call stops the batch and returns the error; earlier calls are
    /// already in flight and run to completion.
    pub fn submit_batch(&self, calls: impl IntoIterator<Item = Call>) -> Result<Vec<TxnHandle>> {
        let calls = calls.into_iter();
        let mut handles = Vec::with_capacity(calls.size_hint().0);
        for call in calls {
            handles.push(self.submit(&call.reactor, &call.proc, call.args)?);
        }
        Ok(handles)
    }

    /// Invokes a root transaction and waits for its validation-time result
    /// (see [`TxnHandle::wait`] for the exact guarantee). Equivalent to
    /// [`Client::invoke_with`] at [`AckLevel::Validated`].
    pub fn invoke(&self, reactor: &str, proc: &str, args: Vec<Value>) -> Result<Value> {
        self.invoke_with(reactor, proc, args, AckLevel::Validated)
    }

    /// Invokes a root transaction and waits until it is acknowledged at
    /// `ack` (see [`Client::submit_with`] for the per-level guarantee).
    pub fn invoke_with(
        &self,
        reactor: &str,
        proc: &str,
        args: Vec<Value>,
        ack: AckLevel,
    ) -> Result<Value> {
        self.submit_with(reactor, proc, args, ack)?.wait_acked()
    }

    /// Invokes a root transaction and acknowledges it only once it is
    /// durable. Thin wrapper over [`Client::invoke_with`] with
    /// [`AckLevel::Durable`], kept for source compatibility; prefer the
    /// explicit-level form in new code.
    pub fn invoke_durable(&self, reactor: &str, proc: &str, args: Vec<Value>) -> Result<Value> {
        self.invoke_with(reactor, proc, args, AckLevel::Durable)
    }

    /// Invokes a root transaction, transparently re-submitting it when it
    /// aborts for a transient reason according to `policy`. OCC validation
    /// aborts are the normal casualty of optimistic concurrency under
    /// contention; user aborts are application outcomes and propagate
    /// immediately.
    pub fn invoke_with_retry(
        &self,
        reactor: &str,
        proc: &str,
        args: Vec<Value>,
        policy: &RetryPolicy,
    ) -> Result<Value> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.invoke(reactor, proc, args.clone()) {
                Ok(value) => return Ok(value),
                Err(error) if policy.should_retry(&error, attempt) => {
                    let backoff = policy.backoff_for(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
                Err(error) => return Err(error),
            }
        }
    }

    /// Snapshot of this session's statistics.
    pub fn stats(&self) -> SessionStats {
        self.session.snapshot()
    }
}

/// Handle to one submitted root transaction.
///
/// The handle is the promise of §2.2.1 plus durability awareness: `wait`
/// resolves at validation time (results may precede durability by up to one
/// epoch), `wait_durable` resolves at group-commit time (the Silo-faithful
/// acknowledgement), and `try_result` polls.
pub struct TxnHandle {
    future: ReactorFuture,
    inner: Arc<Inner>,
    session: Arc<SessionShared>,
    /// Ack level requested at submission; drives [`TxnHandle::wait_acked`].
    ack: AckLevel,
    timeout_recorded: AtomicBool,
}

impl std::fmt::Debug for TxnHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnHandle")
            .field("resolved", &self.future.is_resolved())
            .field("commit_epoch", &self.future.commit_epoch())
            .finish()
    }
}

impl TxnHandle {
    /// Blocks until the transaction commits or aborts and returns its
    /// result. Resolution happens at **validation time**: the writes are
    /// installed and visible, but the commit's epoch may not be durable yet
    /// — a crash within the group-commit window can lose a transaction
    /// acknowledged this way. Use [`TxnHandle::wait_durable`] when the
    /// acknowledgement must imply persistence.
    pub fn wait(&self) -> Result<Value> {
        self.wait_timeout(CLIENT_TIMEOUT)
    }

    /// Like [`TxnHandle::wait`] with a caller-chosen timeout; an elapsed
    /// timeout reports a runtime error and counts as a client-visible
    /// timeout (once per handle).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Value> {
        let clock = self.inner.metrics.clock();
        let result = self.future.get_timeout(timeout);
        if let Some(started) = clock {
            // The client-observed span: queueing + execute + commit.
            self.inner
                .metrics
                .record_elapsed(Phase::SessionWait, usize::MAX, started);
        }
        if result.is_err() && !self.future.is_resolved() {
            // The error came from the timeout, not from the transaction.
            if !self.timeout_recorded.swap(true, Ordering::Relaxed) {
                self.session.on_timeout();
                self.inner.stats.record_client_timeout();
            }
        }
        result
    }

    /// Returns the result if the transaction already resolved, without
    /// blocking.
    pub fn try_result(&self) -> Option<Result<Value>> {
        self.future.try_get()
    }

    /// True once the transaction committed or aborted.
    pub fn is_resolved(&self) -> bool {
        self.future.is_resolved()
    }

    /// Blocks until the transaction's result is **durable**, then returns
    /// it: the WAL's durable epoch must cover the commit epoch, i.e. the
    /// group commit for the transaction's epoch completed (fsync + marker
    /// advance). This is the acknowledgement rule of Silo/SiloR — under
    /// `EpochSync` durability, a transaction acknowledged by
    /// `wait_durable` survives any crash.
    ///
    /// Weaker deployments weaken the guarantee accordingly: under
    /// `Buffered` durability the call flushes the log to the OS and
    /// returns (no fsync — survives a process crash, not power loss), and
    /// with durability off there is no log to wait for, so the call is
    /// equivalent to [`TxnHandle::wait`]. Degenerate cases resolve
    /// immediately either way: aborted transactions (the error propagates;
    /// nothing was installed) and read-only transactions that wrote
    /// nothing.
    pub fn wait_durable(&self) -> Result<Value> {
        let value = self.wait()?;
        let Some(epoch) = self.future.commit_epoch() else {
            return Ok(value);
        };
        let Some(wal) = &self.inner.wal else {
            return Ok(value);
        };
        let clock = self.inner.metrics.clock();
        wal.wait_durable(epoch)
            .map_err(|e| TxnError::Runtime(format!("group commit failed: {e}")))?;
        if let Some(started) = clock {
            let ns = self
                .inner
                .metrics
                .record_elapsed(Phase::DurableAck, usize::MAX, started);
            self.inner
                .metrics
                .trace(usize::MAX, 0, TraceKind::DurableAck, ns);
        }
        Ok(value)
    }

    /// Epoch of the commit TID once committed; `None` while pending, after
    /// an abort, and for transactions with nothing to make durable.
    pub fn commit_epoch(&self) -> Option<u64> {
        self.future.commit_epoch()
    }

    /// The [`AckLevel`] this transaction was submitted with.
    pub fn ack_level(&self) -> AckLevel {
        self.ack
    }

    /// Blocks until the transaction is acknowledged at the level it was
    /// submitted with ([`Client::submit_with`]): `Validated` waits like
    /// [`TxnHandle::wait`], `Durable` like [`TxnHandle::wait_durable`].
    /// `Replicated` also waits for durability — in process there is no
    /// follower to wait for; the replication gate is enforced by the wire
    /// server's reply path, not by the embedded engine.
    pub fn wait_acked(&self) -> Result<Value> {
        if self.ack.requires_durable() {
            self.wait_durable()
        } else {
            self.wait()
        }
    }
}

/// Retry discipline for transient (concurrency-control) aborts.
///
/// OCC aborts are not failures, they are the protocol asking the client to
/// try again; this policy bounds how often and how eagerly. Backoff doubles
/// per attempt from [`RetryPolicy::with_backoff`]'s base, capped at 5 ms so
/// a contended hot key cannot park clients for long.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_backoff: Duration,
    retry_dangerous: bool,
}

/// Upper bound on a single backoff sleep.
const MAX_BACKOFF: Duration = Duration::from_millis(5);

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::occ()
    }
}

impl RetryPolicy {
    /// Default policy for OCC front ends: up to 10 attempts, 20 µs base
    /// backoff doubling per attempt, dangerous-structure aborts retried
    /// (they are scheduling races, transient like validation aborts).
    pub fn occ() -> Self {
        Self {
            max_attempts: 10,
            base_backoff: Duration::from_micros(20),
            retry_dangerous: true,
        }
    }

    /// Never retry: every abort propagates to the caller.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            retry_dangerous: false,
        }
    }

    /// Caps the total number of attempts (first try included; clamped to at
    /// least one).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the base backoff slept after the first transient abort; it
    /// doubles per attempt up to 5 ms.
    pub fn with_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Whether dangerous-structure aborts (§2.2.4 safety condition) are
    /// retried like validation aborts.
    pub fn with_retry_dangerous(mut self, retry: bool) -> Self {
        self.retry_dangerous = retry;
        self
    }

    /// True when `error` after `attempt` completed attempts warrants
    /// another try.
    pub fn should_retry(&self, error: &TxnError, attempt: u32) -> bool {
        if attempt >= self.max_attempts {
            return false;
        }
        error.is_cc_abort() || (self.retry_dangerous && error.is_dangerous_structure())
    }

    /// Backoff to sleep after `attempt` completed attempts.
    fn backoff_for(&self, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << attempt.min(8).saturating_sub(1);
        (self.base_backoff * factor).min(MAX_BACKOFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_classifies_errors() {
        let policy = RetryPolicy::occ();
        assert!(policy.should_retry(&TxnError::ValidationFailed, 1));
        assert!(policy.should_retry(
            &TxnError::DangerousStructure {
                reactor: "r".into()
            },
            1
        ));
        assert!(!policy.should_retry(&TxnError::UserAbort("no".into()), 1));
        assert!(!policy.should_retry(&TxnError::ValidationFailed, 10));
        assert!(!RetryPolicy::none().should_retry(&TxnError::ValidationFailed, 1));
        assert!(
            !RetryPolicy::occ().with_retry_dangerous(false).should_retry(
                &TxnError::DangerousStructure {
                    reactor: "r".into()
                },
                1
            )
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy::occ().with_backoff(Duration::from_micros(100));
        assert_eq!(policy.backoff_for(1), Duration::from_micros(100));
        assert_eq!(policy.backoff_for(2), Duration::from_micros(200));
        assert_eq!(policy.backoff_for(3), Duration::from_micros(400));
        assert_eq!(policy.backoff_for(30), MAX_BACKOFF);
        assert_eq!(RetryPolicy::none().backoff_for(3), Duration::ZERO);
    }
}
