//! Transaction executors: request queues plus the threads that drain them.
//!
//! "A transaction executor consists of a thread pool and a request queue,
//! and is responsible for executing requests, namely asynchronous procedure
//! calls. Each transaction executor is pinned to a core." (§3.1). In this
//! reproduction executors are not pinned (see DESIGN.md §4.4); the queue,
//! the configurable multi-programming level and the cooperative draining
//! while blocked are implemented faithfully.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::RwLock;
use reactdb_common::{ContainerId, ExecutorId};
use reactdb_txn::TidGen;

use crate::request::Request;

/// Handle to one transaction executor: its queue endpoints and its TID
/// generator. The worker threads themselves are owned by [`crate::ReactDB`].
#[derive(Debug)]
pub struct ExecutorHandle {
    id: ExecutorId,
    container: ContainerId,
    mpl: usize,
    sender: Sender<Request>,
    receiver: Receiver<Request>,
    /// Set at shutdown, once the worker threads are gone: the queue rejects
    /// further requests (the channel itself never disconnects, since this
    /// handle owns both endpoints). A rejected request is dropped, which
    /// resolves its future with an error. An `RwLock` rather than an
    /// atomic: enqueuers hold the read side across the send, so once
    /// [`ExecutorHandle::close`] returns from the write side, no send that
    /// observed the queue open can still be in flight — the post-close
    /// drain provably sees every stranded request.
    closed: RwLock<bool>,
    tidgen: TidGen,
}

impl ExecutorHandle {
    /// Creates an executor handle with an unbounded request queue.
    pub fn new(id: ExecutorId, container: ContainerId, mpl: usize) -> Self {
        let (sender, receiver) = unbounded();
        Self {
            id,
            container,
            mpl: mpl.max(1),
            sender,
            receiver,
            closed: RwLock::new(false),
            tidgen: TidGen::new(),
        }
    }

    /// Executor identifier.
    pub fn id(&self) -> ExecutorId {
        self.id
    }

    /// Container this executor is associated with.
    pub fn container(&self) -> ContainerId {
        self.container
    }

    /// Multi-programming level (number of worker threads draining the
    /// queue).
    pub fn mpl(&self) -> usize {
        self.mpl
    }

    /// Enqueues a request. Returns `false` when the executor has shut down;
    /// the rejected request is dropped, resolving its future (if any) with
    /// a runtime error. The closed check and the send happen under one
    /// read guard, so a send cannot interleave past a concurrent
    /// [`ExecutorHandle::close`].
    pub fn enqueue(&self, request: Request) -> bool {
        let closed = self.closed.read();
        if *closed {
            return false;
        }
        self.sender.send(request).is_ok()
    }

    /// Closes the queue: no worker threads remain, so every request still
    /// queued — or enqueued by a racing submitter from here on — must be
    /// dropped rather than left to strand its client. Taking the write
    /// side drains every in-flight `enqueue` first; afterwards the caller
    /// drains the queue with [`ExecutorHandle::try_recv`] and is
    /// guaranteed to see every request that ever entered it.
    pub fn close(&self) {
        *self.closed.write() = true;
    }

    /// Blocking receive used by the worker loop. Returns `None` once the
    /// queue is closed.
    pub fn recv(&self) -> Option<Request> {
        self.receiver.recv().ok()
    }

    /// Non-blocking receive used while a worker waits on a remote future
    /// (cooperative multitasking).
    pub fn try_recv(&self) -> Option<Request> {
        match self.receiver.try_recv() {
            Ok(req) => Some(req),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Number of requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.receiver.len()
    }

    /// The executor's commit-TID generator.
    pub fn tidgen(&self) -> &TidGen {
        &self.tidgen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RootTxn;
    use reactdb_common::TxnId;
    use reactdb_core::ReactorFuture;

    fn dummy_root_request() -> Request {
        let (_future, writer) = ReactorFuture::pending();
        Request::Root {
            root: RootTxn::new(TxnId(0)),
            reactor: reactdb_common::ReactorId(0),
            proc: "p".into(),
            args: vec![],
            writer,
        }
    }

    #[test]
    fn queue_roundtrip() {
        let ex = ExecutorHandle::new(ExecutorId(0), ContainerId(0), 1);
        assert_eq!(ex.mpl(), 1);
        assert!(ex.enqueue(dummy_root_request()));
        assert_eq!(ex.queue_len(), 1);
        assert!(matches!(ex.recv(), Some(Request::Root { .. })));
        assert!(ex.try_recv().is_none());
    }

    #[test]
    fn mpl_is_clamped_to_one() {
        let ex = ExecutorHandle::new(ExecutorId(1), ContainerId(0), 0);
        assert_eq!(ex.mpl(), 1);
    }

    #[test]
    fn closed_queue_rejects_requests_and_resolves_their_futures() {
        let ex = ExecutorHandle::new(ExecutorId(0), ContainerId(0), 1);
        ex.close();
        let (future, writer) = ReactorFuture::pending();
        let rejected = ex.enqueue(Request::Root {
            root: RootTxn::new(TxnId(1)),
            reactor: reactdb_common::ReactorId(0),
            proc: "p".into(),
            args: vec![],
            writer,
        });
        assert!(!rejected, "closed queues reject requests");
        // The dropped writer resolved the future: no client can be
        // stranded behind a request that will never be processed.
        assert!(future.get().is_err());
    }

    #[test]
    fn try_recv_drains_in_fifo_order() {
        let ex = ExecutorHandle::new(ExecutorId(0), ContainerId(0), 2);
        ex.enqueue(Request::Shutdown);
        ex.enqueue(dummy_root_request());
        assert!(matches!(ex.try_recv(), Some(Request::Shutdown)));
        assert!(matches!(ex.try_recv(), Some(Request::Root { .. })));
        assert!(ex.try_recv().is_none());
    }
}
