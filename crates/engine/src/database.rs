//! The ReactDB database: bootstrapping, dispatch, safety and commit.
//!
//! [`ReactDB::boot`] instantiates a reactor database specification under a
//! deployment configuration: containers and their partitions are created,
//! every reactor's relations are instantiated in the container that hosts
//! it, transaction executors are created and their worker threads started.
//!
//! Execution of a root transaction follows §3.2:
//!
//! * the client's invocation is routed (round-robin or affinity) to an
//!   executor of the container hosting the target reactor;
//! * procedure code runs against a [`reactdb_core::ReactorCtx`] whose
//!   storage operations are tracked by the root transaction's per-container
//!   OCC participants;
//! * a sub-transaction call targeting a reactor in the *same* container is
//!   executed synchronously on the same executor (self-calls are inlined
//!   into the calling sub-transaction); a call targeting another container
//!   is dispatched to the affinity executor of the target reactor and a
//!   pending future is returned;
//! * a (sub-)transaction completes only after all of its children complete;
//! * the root then commits through the Silo validation protocol, escalating
//!   to two-phase commit when several containers participated.
//!
//! While a worker waits for a remote sub-transaction it keeps draining its
//! own request queue (cooperative multitasking), so mutually dependent
//! executors cannot deadlock.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use reactdb_common::ids::TxnIdGen;
use reactdb_common::{
    AckLevel, ContainerId, DeploymentConfig, ExecutorId, ReactorId, ReactorName, Result, SubTxnId,
    TxnError, Value,
};
use reactdb_core::future::WaitHook;
use reactdb_core::{
    ActiveSet, CallBackend, FulfillHook, ReactorCtx, ReactorDatabaseSpec, ReactorFuture,
};
use reactdb_obs::{
    AbortReason, CommitProbe, Counter, Gauge, HistogramSummary, Metrics, MetricsSnapshot, Phase,
    TraceEvent, TraceKind,
};
use reactdb_storage::{Table, Tuple};
use reactdb_txn::{Coordinator, EpochManager, LogSink};
use reactdb_wal::{CheckpointReport, CheckpointTable, Checkpointer, LogDirLock, Wal};

use crate::client::{Client, SessionShared};
use crate::container::Container;
use crate::executor::ExecutorHandle;
use crate::request::{Request, RootTxn};
use crate::router::Router;
use crate::stats::DbStats;

/// How long a client invocation waits for its result before reporting a
/// runtime error. Generous: only hit if the engine is mis-configured.
pub(crate) const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// Period of the background epoch advancer.
const EPOCH_PERIOD: Duration = Duration::from_millis(10);

pub(crate) struct Inner {
    pub(crate) spec: Arc<ReactorDatabaseSpec>,
    config: DeploymentConfig,
    containers: Vec<Arc<Container>>,
    executors: Vec<Arc<ExecutorHandle>>,
    router: Router,
    pub(crate) epoch: Arc<EpochManager>,
    active: ActiveSet,
    txn_ids: TxnIdGen,
    pub(crate) stats: DbStats,
    /// Observability registry: phase histograms, busy-time accounting and
    /// the trace ring buffers. Shared with the WAL and its checkpointer.
    pub(crate) metrics: Arc<Metrics>,
    /// Write-ahead log; `None` when the deployment's durability mode is off.
    pub(crate) wal: Option<Arc<Wal>>,
    /// Background checkpointer; present whenever durability is on (explicit
    /// `checkpoint_now` works even without the periodic daemon).
    checkpointer: Option<Arc<Checkpointer>>,
    /// Session behind [`ReactDB::invoke`], the sync convenience entry point;
    /// dedicated sessions come from [`ReactDB::client`].
    pub(crate) default_session: Arc<SessionShared>,
    /// Replication-follower mode: root transactions that would write are
    /// rejected at commit time; state changes arrive exclusively through
    /// [`ReactDB::apply_redo`] until [`ReactDB::promote`] clears the flag.
    read_only: std::sync::atomic::AtomicBool,
    shutdown: std::sync::atomic::AtomicBool,
}

/// An in-memory reactor database deployed according to a
/// [`DeploymentConfig`].
pub struct ReactDB {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
    epoch_thread: Option<JoinHandle<()>>,
    /// Set by [`ReactDB::simulate_crash`]: the final WAL flush is skipped so
    /// buffered (not yet group-committed) redo records are lost, exactly as
    /// a process crash would lose them.
    crashed: bool,
}

impl std::fmt::Debug for ReactDB {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactDB")
            .field("reactors", &self.inner.spec.reactor_count())
            .field("containers", &self.inner.containers.len())
            .field("executors", &self.inner.executors.len())
            .finish()
    }
}

impl ReactDB {
    /// Boots a reactor database under the given deployment. Creates the
    /// containers, instantiates every reactor's relations in its container,
    /// starts the executor worker threads and the epoch advancer.
    ///
    /// # Panics
    /// Panics when the deployment enables durability but the log directory
    /// cannot be initialised; use [`ReactDB::recover`] for a fallible boot
    /// that also replays an existing log.
    pub fn boot(spec: ReactorDatabaseSpec, config: DeploymentConfig) -> Self {
        Self::boot_inner(spec, config, false).expect("boot: durability initialisation failed")
    }

    /// Boots a reactor database and replays the write-ahead log found in the
    /// deployment's log directory: every transaction of a fully synced epoch
    /// (and, in buffered mode, every intact logged transaction) is
    /// re-applied in commit-TID order before the database starts serving,
    /// and the epoch / TID-generator high-water marks resume beyond
    /// everything observed in the log.
    pub fn recover(spec: ReactorDatabaseSpec, config: DeploymentConfig) -> Result<Self> {
        Self::boot_inner(spec, config, true)
            .map_err(|e| TxnError::Runtime(format!("crash recovery failed: {e}")))
    }

    fn boot_inner(
        spec: ReactorDatabaseSpec,
        config: DeploymentConfig,
        recover: bool,
    ) -> std::io::Result<Self> {
        let spec = Arc::new(spec);
        let n_reactors = spec.reactor_count();

        let executor_configs = config.executor_configs();
        assert!(
            !executor_configs.is_empty(),
            "deployment must define at least one executor"
        );
        let n_containers = config.container_count().max(1);

        let containers: Vec<Arc<Container>> = (0..n_containers)
            .map(|c| Arc::new(Container::new(ContainerId(c as u64))))
            .collect();

        // Map reactors to containers and instantiate their relations there.
        let container_of_reactor: Vec<ContainerId> = (0..n_reactors)
            .map(|r| config.container_of_reactor(r, n_reactors))
            .collect();
        for (r, container) in container_of_reactor.iter().enumerate() {
            let ty = spec.reactor_type(r).expect("reactor indexes are dense");
            containers[container.index()]
                .partition()
                .create_reactor(ReactorId(r as u64), &ty.relations);
        }

        // Executors and their grouping by container.
        let executors: Vec<Arc<ExecutorHandle>> = executor_configs
            .iter()
            .map(|cfg| Arc::new(ExecutorHandle::new(cfg.id, cfg.container, cfg.mpl)))
            .collect();
        let mut executors_of_container: Vec<Vec<ExecutorId>> = vec![Vec::new(); n_containers];
        for cfg in &executor_configs {
            executors_of_container[cfg.container.index()].push(cfg.id);
        }

        let epoch = Arc::new(EpochManager::new());
        let stats = DbStats::new();
        let metrics = Arc::new(Metrics::new(executors.len(), &config.tracing));

        // ---- Durability: lock the log directory for this instance's
        // lifetime before anything reads or writes it — enforcing the
        // single-instance rule across processes, not just by convention —
        // then preflight, recover, and open fresh segments under the lock.
        let wal = if config.durability.is_enabled() {
            let dir = config.durability.log_dir_path()?;
            let lock = LogDirLock::acquire(&dir)?;

            // Preflight: a non-recovery boot must refuse a log directory
            // that already holds WAL state — a fresh instance restarts at
            // epoch 1 and would reissue (epoch, sequence) pairs already
            // present in the old segments, corrupting the TID-ordered
            // replay of any later recovery.
            if !recover && reactdb_wal::log_dir_has_state(&dir)? {
                return Err(std::io::Error::other(format!(
                    "log directory {} already contains WAL state; \
                     use ReactDB::recover or clear the directory",
                    dir.display()
                )));
            }

            // Crash recovery: replay the log before anything can run.
            if recover {
                let recovered = reactdb_wal::recover_and_compact(&dir, config.durability.mode)?;
                // Route by the *current* reactor-to-container mapping:
                // recovery may legitimately restore the log under a
                // different deployment of the same reactor database. A
                // record for a reactor the new spec does not declare has no
                // home; skip it rather than guess (the logged container id
                // belongs to the *old* deployment). Full images and
                // tombstones replay idempotently; a delta record whose base
                // image is missing or mismatched is a broken chain and
                // *fails* recovery — surfacing the corruption beats
                // recovering plausible-but-wrong rows.
                let replay_one = |tid: reactdb_storage::TidWord,
                                  record: &reactdb_txn::RedoRecord|
                 -> std::io::Result<()> {
                    let Some(container) = container_of_reactor.get(record.reactor.index()).copied()
                    else {
                        return Ok(());
                    };
                    if let Ok(table) = containers[container.index()]
                        .partition()
                        .table(record.reactor, &record.relation)
                    {
                        match &record.payload {
                            reactdb_txn::RedoPayload::Full(image) => {
                                table.replay(&record.key, Some(image), tid);
                            }
                            reactdb_txn::RedoPayload::Delete => {
                                table.replay(&record.key, None, tid);
                            }
                            reactdb_txn::RedoPayload::Delta(row_delta) => {
                                table
                                    .replay_delta(
                                        &record.key,
                                        row_delta.base,
                                        &row_delta.delta,
                                        tid,
                                    )
                                    .map_err(|e| {
                                        std::io::Error::other(format!("corrupt delta chain: {e}"))
                                    })?;
                            }
                        }
                    }
                    Ok(())
                };
                // Base state first: the newest complete checkpoint chain
                // fully covers every epoch <= its stamp. The log tail then
                // layers on top; TID-aware replay resolves the fuzzy
                // overlap. The replay fans out across reactor-partitioned
                // workers — same-reactor records stay ordered in one lane,
                // so delta chains and version order are preserved.
                let checkpoint_rows: &[_] = recovered
                    .checkpoint
                    .as_ref()
                    .map(|c| c.rows.as_slice())
                    .unwrap_or(&[]);
                let replay_workers = match config.checkpoint.replay_workers {
                    0 => std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                    n => n,
                };
                let replay_started = Instant::now();
                let workers_used = reactdb_wal::replay_partitioned(
                    checkpoint_rows,
                    &recovered.batches,
                    replay_workers,
                    replay_one,
                )?;
                metrics.record_elapsed(Phase::RecoveryReplay, usize::MAX, replay_started);
                stats.record_replay_workers(workers_used as u64);
                if let Some(checkpoint) = &recovered.checkpoint {
                    stats.record_recovered_checkpoint_rows(checkpoint.rows.len() as u64);
                }
                // Resume beyond every epoch observed in the log (durable or
                // discarded) so no pre-crash (epoch, sequence) pair is
                // reissued.
                let mut resume = recovered.max_epoch_seen;
                if recovered.durable_epoch != u64::MAX {
                    resume = resume.max(recovered.durable_epoch);
                }
                epoch.advance_to(resume + 1);
                for exec in &executors {
                    exec.tidgen().observe(recovered.max_tid);
                }
                stats.record_recovered(recovered.batches.len() as u64);
            }

            // Fresh log segments for this instance; the WAL takes over the
            // directory lock and holds it until shutdown.
            Some(Wal::open_locked(
                &config.durability,
                executors.len(),
                Arc::clone(&epoch),
                lock,
            )?)
        } else {
            None
        };
        if let Some(wal) = &wal {
            wal.start_daemon(config.durability.group_commit_interval_ms);
            stats.attach_wal(Arc::clone(wal.stats()));
            // The WAL opens before the registry exists; hand it the
            // registry so group commit and the checkpointer can record
            // their phases and trace events.
            wal.attach_metrics(Arc::clone(&metrics));
        }

        // ---- Checkpointing: enumerate every table of the deployment and
        // hand the checkpointer its walk list. Always constructed when
        // durability is on so `ReactDB::checkpoint_now` works; the periodic
        // daemon only runs when an interval is configured.
        let checkpointer = match &wal {
            Some(wal) => {
                let mut tables = Vec::new();
                for container in &containers {
                    for (reactor, relation, table) in container.partition().tables() {
                        tables.push(CheckpointTable {
                            container: container.id(),
                            reactor,
                            relation,
                            table,
                        });
                    }
                }
                let checkpointer = Checkpointer::new(Arc::clone(wal), tables, config.checkpoint)?;
                if config.checkpoint.is_periodic() {
                    checkpointer.start_daemon(Arc::clone(&epoch));
                }
                Some(checkpointer)
            }
            None => None,
        };

        let router = Router::new(
            config.router_policy(),
            executors_of_container,
            container_of_reactor,
        );
        let epoch_thread = epoch.start_advancer(EPOCH_PERIOD);

        let inner = Arc::new(Inner {
            spec,
            config,
            containers,
            executors,
            router,
            epoch,
            active: ActiveSet::new(),
            txn_ids: TxnIdGen::new(),
            stats,
            metrics,
            wal,
            checkpointer,
            default_session: SessionShared::new(),
            read_only: std::sync::atomic::AtomicBool::new(false),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        });

        // Worker threads: `mpl` per executor.
        let mut threads = Vec::new();
        for (idx, exec) in inner.executors.iter().enumerate() {
            for worker in 0..exec.mpl() {
                let inner = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name(format!("reactdb-exec-{idx}-{worker}"))
                    .spawn(move || worker_loop(inner, idx))
                    .expect("spawn executor worker");
                threads.push(handle);
            }
        }

        Ok(Self {
            inner,
            threads,
            epoch_thread: Some(epoch_thread),
            crashed: false,
        })
    }

    /// The reactor database specification this instance serves.
    pub fn spec(&self) -> &ReactorDatabaseSpec {
        &self.inner.spec
    }

    /// The deployment configuration in effect.
    pub fn config(&self) -> &DeploymentConfig {
        &self.inner.config
    }

    /// Database-wide commit/abort statistics.
    pub fn stats(&self) -> &DbStats {
        &self.inner.stats
    }

    /// The write-ahead log, when the deployment enables durability.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.inner.wal.as_ref()
    }

    /// A point-in-time snapshot of every metric this instance exports:
    /// commit/abort counters (with the per-[`AbortReason`] breakdown),
    /// WAL and checkpoint counters, per-table log bytes, per-executor
    /// queue-depth and utilization gauges, and the per-phase latency
    /// histograms (p50/p90/p99/p999/max). Render with
    /// [`MetricsSnapshot::to_prometheus_text`] or
    /// [`MetricsSnapshot::to_json`], and diff two snapshots with
    /// [`MetricsSnapshot::delta`] for interval rates.
    pub fn metrics(&self) -> MetricsSnapshot {
        let inner = &self.inner;
        let m = &inner.metrics;
        let stats = &inner.stats;

        let mut counters = vec![Counter {
            name: "txn_committed".into(),
            value: stats.committed(),
        }];
        for (reason, count) in stats.aborts_by_reason() {
            counters.push(Counter {
                name: format!("txn_aborts{{reason=\"{}\"}}", reason.name()),
                value: count,
            });
        }
        for (name, value) in [
            ("txn_cc_aborts", stats.cc_aborts()),
            ("scan_ops", stats.scan_ops()),
            ("sub_txns_dispatched", stats.sub_txns_dispatched()),
            ("sub_txns_inlined", stats.sub_txns_inlined()),
            ("client_committed", stats.client_committed()),
            ("client_aborted", stats.client_aborted()),
            ("client_timeouts", stats.client_timeouts()),
            ("handles_in_flight_hwm", stats.handles_in_flight_hwm()),
            ("recovered_txns", stats.recovered_txns()),
            (
                "recovered_checkpoint_rows",
                stats.recovered_checkpoint_rows(),
            ),
            ("log_bytes", stats.log_bytes()),
            ("log_records", stats.log_records()),
            ("log_delta_records", stats.log_delta_records()),
            ("log_bytes_saved", stats.log_bytes_saved()),
            ("log_syncs", stats.log_syncs()),
            ("log_sync_failures", stats.log_sync_failures()),
            ("durable_epoch", stats.durable_epoch()),
            ("durable_waits", stats.durable_waits()),
            ("checkpoints_taken", stats.checkpoints_taken()),
            ("checkpoints_delta", stats.checkpoints_delta()),
            ("checkpoint_bytes", stats.checkpoint_bytes()),
            ("checkpoint_failures", stats.checkpoint_failures()),
            ("log_truncated_bytes", stats.log_truncated_bytes()),
            ("log_truncated_segments", stats.log_truncated_segments()),
            ("recovery_replay_workers", stats.recovery_replay_workers()),
        ] {
            counters.push(Counter {
                name: name.into(),
                value,
            });
        }
        for usage in stats.log_bytes_per_table() {
            let labels = format!(
                "{{reactor=\"{}\",relation=\"{}\"}}",
                usage.reactor.raw(),
                usage.relation
            );
            counters.push(Counter {
                name: format!("table_log_bytes{labels}"),
                value: usage.bytes,
            });
            counters.push(Counter {
                name: format!("table_log_records{labels}"),
                value: usage.records,
            });
        }

        let uptime_ns = m.uptime_ns().max(1);
        let mut gauges = vec![Gauge {
            name: "handles_in_flight".into(),
            value: stats.handles_in_flight() as f64,
        }];
        for (idx, exec) in inner.executors.iter().enumerate() {
            gauges.push(Gauge {
                name: format!("executor_queue_depth{{executor=\"{idx}\"}}"),
                value: exec.queue_len() as f64,
            });
            // Fraction of wall-clock time this executor's workers spent
            // processing requests (cooperative drains count toward the
            // outer request's span, so the ratio never exceeds 1 per
            // worker).
            let capacity_ns = uptime_ns.saturating_mul(exec.mpl() as u64).max(1);
            gauges.push(Gauge {
                name: format!("executor_utilization{{executor=\"{idx}\"}}"),
                value: m.busy_ns(idx) as f64 / capacity_ns as f64,
            });
        }

        let histograms = Phase::ALL
            .iter()
            .map(|&phase| {
                HistogramSummary::of(
                    format!("phase_{}_ns", phase.name()),
                    &m.phase_histogram(phase),
                )
            })
            .collect();

        MetricsSnapshot {
            uptime_us: uptime_ns / 1_000,
            counters,
            gauges,
            histograms,
        }
    }

    /// The live observability registry this instance records into — shared
    /// with the WAL, the checkpointer, and (when one fronts this database)
    /// the wire server, which records its `net_*` request phases here so
    /// they land in the same [`MetricsSnapshot`] as the engine's phases.
    /// For point-in-time export use [`ReactDB::metrics`].
    pub fn metrics_registry(&self) -> Arc<Metrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// Drains the transaction trace rings: the most recent commit, abort,
    /// slow-transaction, group-commit, checkpoint-chunk and durable-ack
    /// events, globally ordered by sequence number. Draining resets the
    /// rings; events are overwritten oldest-first when a ring wraps. Empty
    /// when tracing is disabled ([`reactdb_common::TracingConfig::off`]).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner.metrics.drain_trace()
    }

    /// Closes the current epoch and forces one group commit (flush, fsync,
    /// durable-epoch advance), making every transaction committed so far
    /// durable. Returns the resulting durable epoch. Errors distinguish the
    /// two failure modes: durability not configured, and a group commit
    /// that failed with an I/O error (also counted in
    /// [`DbStats::log_sync_failures`]). Tests use this instead of waiting
    /// for the group-commit daemon.
    pub fn wal_sync(&self) -> Result<u64> {
        let wal = self
            .inner
            .wal
            .as_ref()
            .ok_or_else(|| TxnError::Runtime("durability is off".into()))?;
        // Commits already in flight keep the epoch they read; advancing
        // first guarantees the fence lies beyond every *completed* commit.
        self.inner.epoch.advance();
        wal.sync()
            .map_err(|e| TxnError::Runtime(format!("group commit failed: {e}")))
    }

    /// Highest epoch whose transactions are guaranteed durable; `None` when
    /// durability is off.
    pub fn durable_epoch(&self) -> Option<u64> {
        self.inner.wal.as_ref().map(|w| w.durable_epoch())
    }

    /// Takes one checkpoint right now, concurrently with live transactions:
    /// snapshots every table against the stable epoch across the parallel
    /// writer pool, waits until the capture is durable, commits the
    /// manifest and truncates every log segment the checkpoint covers.
    /// Returns a [`CheckpointReport`] — rows, bytes, part count, whether it
    /// was a delta capture, and the cover epoch — so callers and tests need
    /// not scrape `DbStats`. Requires durability; see `CheckpointConfig` on
    /// the deployment for the periodic background variant.
    pub fn checkpoint_now(&self) -> Result<CheckpointReport> {
        let checkpointer = self
            .inner
            .checkpointer
            .as_ref()
            .ok_or_else(|| TxnError::Runtime("durability is off".into()))?;
        checkpointer
            .checkpoint_now()
            .map_err(|e| TxnError::Runtime(format!("checkpoint failed: {e}")))
    }

    /// Tears the database down as a crash would: worker threads stop, but
    /// the write-ahead log is *not* flushed, so every redo record buffered
    /// since the last group commit is lost. Recover with
    /// [`ReactDB::recover`] on the same deployment config.
    pub fn simulate_crash(mut self) {
        self.crashed = true;
        // Drop runs the ordinary shutdown, minus the final WAL flush.
    }

    /// Number of transaction executors.
    pub fn executor_count(&self) -> usize {
        self.inner.executors.len()
    }

    /// Number of containers.
    pub fn container_count(&self) -> usize {
        self.inner.containers.len()
    }

    /// Opens a new client session: the primary surface for running root
    /// transactions (§2.2.1 — "asynchronous function calls returning
    /// promises"). Each call creates an independent session with its own
    /// statistics; the returned [`Client`] is cheaply cloneable, and clones
    /// share the session. Many transactions may be in flight per session
    /// ([`Client::submit`] / [`Client::submit_batch`] pipeline without
    /// waiting).
    pub fn client(&self) -> Client {
        Client::new(Arc::clone(&self.inner), SessionShared::new())
    }

    /// Invokes a root transaction: `proc(args)` on the reactor named
    /// `reactor`, blocking until it commits or aborts (§2.2.3 root
    /// transactions are the unit clients interact with).
    ///
    /// Sync convenience over the session API, equivalent to
    /// `db.client().invoke(..)` but routed through a shared default session.
    /// Delegates to the default session's [`Client::invoke_with`] at
    /// [`AckLevel::Validated`]; pipelined submission, stronger ack levels
    /// and OCC retries live on [`ReactDB::client`].
    pub fn invoke(&self, reactor: &str, proc: &str, args: Vec<Value>) -> Result<Value> {
        Client::new(
            Arc::clone(&self.inner),
            Arc::clone(&self.inner.default_session),
        )
        .invoke_with(reactor, proc, args, AckLevel::Validated)
    }

    /// Non-transactional bulk load of one row into a reactor's relation.
    /// Only for benchmark loaders before measurement starts.
    ///
    /// With durability enabled the load is logged as a redo record, and the
    /// row is installed under the *same* real TID that is logged (drawn
    /// from executor 0's generator, dominating any version previously in
    /// the slot). Matching physical and logged TIDs is what keeps
    /// TID-ordered replay consistent with the conflict order: any later
    /// commit that touches the row observes this TID and must exceed it,
    /// while unrelated commits may order either way, harmlessly.
    pub fn load_row(&self, reactor: &str, relation: &str, row: Tuple) -> Result<()> {
        let inner = &self.inner;
        if inner.is_read_only() {
            // A follower's state comes exclusively from the shipped log; a
            // local load would be WAL-logged here and diverge the replica.
            return Err(TxnError::Runtime(
                "read-only follower: bulk loads are rejected".into(),
            ));
        }
        let reactor_idx = inner.spec.reactor_id(reactor)?;
        let reactor_id = ReactorId(reactor_idx as u64);
        let table = self.table(reactor, relation)?;
        let Some(wal) = &inner.wal else {
            return table.load_row(row);
        };
        // Validate before touching the primary key: key extraction panics
        // on malformed rows, and the durability-off path reports
        // BadArguments instead — keep the two paths behaviourally equal.
        table.schema().validate(table.name(), row.values())?;
        let _gate = wal.commit_guard();
        let key = row.primary_key(table.schema());
        // Dominate whatever version occupies the slot (e.g. a replayed
        // delete from a previous life of this database).
        let observed = table
            .get(&key)
            .map(|record| record.tid().unlocked())
            .unwrap_or_else(|| reactdb_storage::TidWord::committed(0, 0));
        let tid = inner.executors[0]
            .tidgen()
            .next(inner.epoch.current(), observed);
        table.load_row_with_tid(row.clone(), tid)?;
        wal.writer(0).log_commit(
            tid,
            &[reactdb_txn::RedoRecord {
                container: inner.router.container_of(reactor_id),
                reactor: reactor_id,
                relation: relation.to_owned(),
                key,
                payload: reactdb_txn::RedoPayload::Full(row),
            }],
        );
        Ok(())
    }

    /// Direct access to a reactor's relation (bulk loading and test
    /// assertions; transactional access goes through procedures).
    pub fn table(&self, reactor: &str, relation: &str) -> Result<Arc<Table>> {
        let inner = &self.inner;
        let idx = inner.spec.reactor_id(reactor)?;
        let reactor_id = ReactorId(idx as u64);
        let container = inner.router.container_of(reactor_id);
        inner.containers[container.index()]
            .partition()
            .table(reactor_id, relation)
    }

    /// Marks this instance as a read-only replication follower (or clears
    /// the mark). While set, root transactions with a write set and bulk
    /// loads are rejected — state changes arrive exclusively through
    /// [`ReactDB::apply_redo`] — while read-only transactions keep serving
    /// against the applied snapshot. [`ReactDB::promote`] is the sanctioned
    /// way out of follower mode.
    pub fn set_read_only(&self, read_only: bool) {
        self.inner
            .read_only
            .store(read_only, std::sync::atomic::Ordering::Release);
    }

    /// True while this instance is a read-only replication follower.
    pub fn is_read_only(&self) -> bool {
        self.inner.is_read_only()
    }

    /// Promotes a read-only follower into a serving primary after a primary
    /// failure: writes are accepted immediately. The epoch advances first so
    /// post-promotion commits land strictly beyond every applied epoch.
    /// Everything applied through [`ReactDB::apply_redo`] before the call is
    /// preserved — promotion loses no replicated-acknowledged work — and
    /// nothing else exists on the replica to resurrect (writes were
    /// rejected throughout follower mode).
    pub fn promote(&self) {
        self.inner.epoch.advance();
        self.set_read_only(false);
    }

    /// Applies replicated redo state to this live instance: optional
    /// checkpoint base rows first, then logged transaction batches in TID
    /// order — the same TID-aware, reactor-partitioned replay crash
    /// recovery uses ([`ReactDB::recover`]), but incremental, against a
    /// serving database. Concurrent read-only transactions stay sound:
    /// `Table::replay` installs whole versions idempotently by TID, so a
    /// reader validates against either the old or the new version, never a
    /// torn one.
    ///
    /// Every applied record is re-logged through this instance's own WAL
    /// (when durability is on), so the follower's durability is
    /// self-contained: after `wal_sync` the applied prefix survives a
    /// follower crash and can itself be shipped onward. The epoch clock and
    /// TID generators advance beyond everything applied, keeping
    /// post-promotion commits dominant. Returns the number of transaction
    /// batches applied. `workers == 0` uses the available parallelism.
    pub fn apply_redo(
        &self,
        checkpoint_rows: &[(reactdb_storage::TidWord, reactdb_txn::RedoRecord)],
        batches: &[(reactdb_storage::TidWord, Vec<reactdb_txn::RedoRecord>)],
        workers: usize,
    ) -> Result<usize> {
        let inner = &self.inner;
        let n_reactors = inner.spec.reactor_count();
        let replay_one = |tid: reactdb_storage::TidWord,
                          record: &reactdb_txn::RedoRecord|
         -> std::io::Result<()> {
            // Route by the *current* reactor-to-container mapping, exactly
            // as recovery does; records for reactors this spec does not
            // declare have no home and are skipped.
            if record.reactor.index() >= n_reactors {
                return Ok(());
            }
            let container = inner.router.container_of(record.reactor);
            if let Ok(table) = inner.containers[container.index()]
                .partition()
                .table(record.reactor, &record.relation)
            {
                match &record.payload {
                    reactdb_txn::RedoPayload::Full(image) => {
                        table.replay(&record.key, Some(image), tid);
                    }
                    reactdb_txn::RedoPayload::Delete => {
                        table.replay(&record.key, None, tid);
                    }
                    reactdb_txn::RedoPayload::Delta(row_delta) => {
                        table
                            .replay_delta(&record.key, row_delta.base, &row_delta.delta, tid)
                            .map_err(|e| {
                                std::io::Error::other(format!("corrupt delta chain: {e}"))
                            })?;
                    }
                }
            }
            Ok(())
        };
        let workers = match workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        let started = Instant::now();
        reactdb_wal::replay_partitioned(checkpoint_rows, batches, workers, replay_one)
            .map_err(|e| TxnError::Runtime(format!("replicated apply failed: {e}")))?;
        inner
            .metrics
            .record_elapsed(Phase::FollowerApply, usize::MAX, started);

        // Re-log through the replica's own WAL under the commit gate, so a
        // concurrent group commit cannot fence an epoch these records
        // belong to out from under them.
        if let Some(wal) = &inner.wal {
            let _gate = wal.commit_guard();
            let writer = wal.writer(0);
            for (tid, record) in checkpoint_rows {
                writer.log_commit(*tid, std::slice::from_ref(record));
            }
            for (tid, records) in batches {
                writer.log_commit(*tid, records);
            }
        }

        // Advance the clocks beyond everything applied: replayed TIDs must
        // dominate nothing the replica issues later, and the epoch clock
        // must never reissue a shipped epoch after promotion.
        let mut max_tid = reactdb_storage::TidWord(0);
        let mut max_epoch = 0u64;
        for tid in checkpoint_rows
            .iter()
            .map(|(tid, _)| *tid)
            .chain(batches.iter().map(|(tid, _)| *tid))
        {
            if tid.version() > max_tid.version() {
                max_tid = tid;
            }
            max_epoch = max_epoch.max(tid.epoch());
        }
        if max_epoch > 0 {
            inner.epoch.advance_to(max_epoch + 1);
        }
        for exec in &inner.executors {
            exec.tidgen().observe(max_tid);
        }
        inner.stats.record_recovered(batches.len() as u64);
        if !checkpoint_rows.is_empty() {
            inner
                .stats
                .record_recovered_checkpoint_rows(checkpoint_rows.len() as u64);
        }
        Ok(batches.len())
    }

    /// Stops every worker thread, the epoch advancer and the group-commit
    /// daemon (flushing the log unless a crash is being simulated). Called
    /// by `Drop`; explicit shutdown lets callers join deterministically.
    pub fn shutdown(&mut self) {
        self.inner
            .shutdown
            .store(true, std::sync::atomic::Ordering::Release);
        if self.threads.is_empty() {
            return;
        }
        for exec in &self.inner.executors {
            for _ in 0..exec.mpl() {
                let _ = exec.enqueue(Request::Shutdown);
            }
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // Workers are gone. Close each queue *before* draining it: a
        // submitter that raced past the shutdown flag either enqueued
        // before the close (the drain below drops its request) or is
        // rejected by the closed queue (the request is dropped at the
        // submission site). Dropping a request resolves its future with a
        // runtime error and fires the session hook, so clients get a
        // prompt error instead of a timeout, in-flight accounting
        // balances, and no queued hook's `Arc<Inner>` can keep the
        // database alive as a cycle.
        for exec in &self.inner.executors {
            exec.close();
            while exec.try_recv().is_some() {}
        }
        self.inner.epoch.stop();
        if let Some(handle) = self.epoch_thread.take() {
            let _ = handle.join();
        }
        // Checkpointer before WAL: the daemon (and any in-flight
        // checkpoint) must be gone before the log directory is released.
        if let Some(checkpointer) = &self.inner.checkpointer {
            checkpointer.shutdown();
        }
        if let Some(wal) = &self.inner.wal {
            wal.shutdown(!self.crashed);
        }
    }
}

impl Drop for ReactDB {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: Arc<Inner>, executor_idx: usize) {
    let exec = Arc::clone(&inner.executors[executor_idx]);
    while let Some(request) = exec.recv() {
        if matches!(request, Request::Shutdown) {
            break;
        }
        // Busy time is measured only here, at the top level: requests
        // drained cooperatively while this one waits on a remote future run
        // *inside* this span and must not be double-counted.
        let clock = inner.metrics.clock();
        inner.process(executor_idx, request);
        if let Some(started) = clock {
            inner
                .metrics
                .add_busy(executor_idx, started.elapsed().as_nanos() as u64);
        }
    }
}

/// Wait hook installed on remote-call futures: while the caller waits, its
/// executor keeps draining requests (cooperative multitasking).
struct ExecutorWaitHook {
    inner: Arc<Inner>,
    executor_idx: usize,
}

impl WaitHook for ExecutorWaitHook {
    fn run_once(&self) -> bool {
        match self.inner.executors[self.executor_idx].try_recv() {
            Some(Request::Shutdown) => {
                // Not ours to handle here; put it back for the worker loop.
                let _ = self.inner.executors[self.executor_idx].enqueue(Request::Shutdown);
                false
            }
            Some(request) => {
                self.inner.process(self.executor_idx, request);
                true
            }
            None => false,
        }
    }
}

impl Inner {
    /// True while the database accepts new root transactions.
    pub(crate) fn is_accepting(&self) -> bool {
        !self.shutdown.load(std::sync::atomic::Ordering::Acquire)
    }

    /// True while this instance is a read-only replication follower.
    pub(crate) fn is_read_only(&self) -> bool {
        self.read_only.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Everything that can reject a root-transaction submission, checked
    /// *before* any request or accounting exists: shutdown state and the
    /// reactor name. Returns the resolved reactor id for
    /// [`Inner::enqueue_root`].
    pub(crate) fn validate_root(&self, reactor: &str) -> Result<ReactorId> {
        if !self.is_accepting() {
            return Err(TxnError::Runtime("database has shut down".into()));
        }
        let reactor_idx = self.spec.reactor_id(reactor)?;
        Ok(ReactorId(reactor_idx as u64))
    }

    /// Enqueues a validated root transaction and returns its future. This
    /// cannot fail: if the executor queue rejects the request, the request
    /// (and the writer inside it) is dropped, which resolves the future
    /// with a runtime error and fires `hook`. Callers may therefore do
    /// submission accounting between [`Inner::validate_root`] and this call
    /// and rely on `hook` firing exactly once afterwards.
    pub(crate) fn enqueue_root(
        &self,
        reactor: ReactorId,
        proc: &str,
        args: Vec<Value>,
        hook: Option<FulfillHook>,
    ) -> ReactorFuture {
        let root = RootTxn::new(self.txn_ids.next());
        let (future, mut writer) = ReactorFuture::pending();
        if let Some(hook) = hook {
            writer.on_fulfill(hook);
        }
        let exec = self.router.route_root(reactor);
        let _ = self.executors[exec.index()].enqueue(Request::Root {
            root,
            reactor,
            proc: proc.to_owned(),
            args,
            writer,
        });
        future
    }

    fn process(self: &Arc<Self>, executor_idx: usize, request: Request) {
        match request {
            Request::Root {
                root,
                reactor,
                proc,
                args,
                writer,
            } => {
                let clock = self.metrics.clock();
                let result =
                    self.run_subtxn(executor_idx, &root, reactor, SubTxnId(0), &proc, &args);
                let execute_ns = clock
                    .map(|started| {
                        self.metrics
                            .record_elapsed(Phase::Execute, executor_idx, started)
                    })
                    .unwrap_or(0);
                let mut probe = self.metrics.commit_probe(executor_idx);
                let outcome = match result {
                    Ok(value) => self
                        .commit_root(executor_idx, &root, probe.as_mut())
                        .map(|epoch| (value, epoch)),
                    Err(e) => {
                        // Nothing was installed; drop the buffered
                        // participants — but still account their scan work.
                        let participants = root.take_participants();
                        self.stats
                            .record_scan_ops(participants.iter().map(|p| p.scan_count()).sum());
                        Err(e)
                    }
                };
                match &outcome {
                    Ok(_) => self.stats.record_commit(),
                    Err(e) => self.stats.record_abort(AbortReason::classify(e)),
                }
                self.trace_root(executor_idx, &root, &outcome, execute_ns, probe.as_ref());
                // Thread the commit epoch into the future so durability-
                // aware clients can gate their acknowledgement on the
                // epoch's group commit.
                match outcome {
                    Ok((value, epoch)) => writer.fulfill_at(Ok(value), epoch),
                    Err(e) => writer.fulfill(Err(e)),
                }
            }
            Request::Sub {
                root,
                reactor,
                sub,
                proc,
                args,
                writer,
            } => {
                let result = self.run_subtxn(executor_idx, &root, reactor, sub, &proc, &args);
                writer.fulfill(result);
            }
            Request::Shutdown => {}
        }
    }

    /// Commits a root transaction's participants. On success returns the
    /// epoch of the commit TID — the epoch whose group commit makes the
    /// transaction durable — or `None` for transactions that touched no
    /// container (nothing to validate or log, so durability is trivial).
    fn commit_root(
        self: &Arc<Self>,
        executor_idx: usize,
        root: &Arc<RootTxn>,
        probe: Option<&mut CommitProbe<'_>>,
    ) -> Result<Option<u64>> {
        let mut participants = root.take_participants();
        self.stats
            .record_scan_ops(participants.iter().map(|p| p.scan_count()).sum());
        if participants.is_empty() {
            return Ok(None);
        }
        // Follower gate: reads commit normally (they validate against the
        // applied snapshot), but anything with a write set is rejected —
        // on a replica every state change must come through the shipped
        // log, or promotion could resurrect writes the primary never had.
        if self.is_read_only() && participants.iter().any(|p| !p.is_read_only()) {
            return Err(TxnError::Runtime(
                "read-only follower: write transactions are rejected until promotion".into(),
            ));
        }
        // Hold the WAL's commit gate across the serialization point and the
        // log append: the group-commit daemon drains these guards before
        // declaring an epoch durable (see `reactdb_wal::Wal::sync`).
        let wal = self.wal.as_deref();
        let _commit_gate = wal.map(|w| w.commit_guard());
        let sink = wal.map(|w| &**w.writer(executor_idx) as &dyn LogSink);
        Coordinator::commit_observed(
            &mut participants,
            &self.epoch,
            self.executors[executor_idx].tidgen(),
            sink,
            probe,
        )
        .map(|tid| Some(tid.epoch()))
    }

    /// Emits the trace events for one resolved root transaction: the
    /// commit/abort event, and — when the end-to-end latency exceeded the
    /// configured threshold — a slow-transaction marker plus its per-phase
    /// breakdown. No-op when tracing is off (`execute_ns` is 0 and no probe
    /// exists, but the early return keeps even that work off the hot path).
    fn trace_root(
        &self,
        executor_idx: usize,
        root: &Arc<RootTxn>,
        outcome: &Result<(Value, Option<u64>)>,
        execute_ns: u64,
        probe: Option<&CommitProbe<'_>>,
    ) {
        if !self.metrics.enabled() {
            return;
        }
        let txn = root.id().0;
        let commit_ns = probe.map(|p| p.total_ns()).unwrap_or(0);
        let total_ns = execute_ns + commit_ns;
        match outcome {
            Ok(_) => self
                .metrics
                .trace(executor_idx, txn, TraceKind::Commit, total_ns),
            Err(e) => self.metrics.trace(
                executor_idx,
                txn,
                TraceKind::Abort(AbortReason::classify(e)),
                total_ns,
            ),
        }
        if total_ns > self.metrics.slow_txn_ns() {
            self.metrics
                .trace(executor_idx, txn, TraceKind::SlowTxn, total_ns);
            self.metrics.trace(
                executor_idx,
                txn,
                TraceKind::CommitPhase(Phase::Execute),
                execute_ns,
            );
            if let Some(p) = probe {
                for (phase, ns) in p.phase_durs() {
                    self.metrics
                        .trace(executor_idx, txn, TraceKind::CommitPhase(phase), ns);
                }
            }
        }
    }

    /// Runs one (sub-)transaction: enforces the active-set safety condition,
    /// executes the procedure, then waits for all of its children.
    fn run_subtxn(
        self: &Arc<Self>,
        executor_idx: usize,
        root: &Arc<RootTxn>,
        reactor: ReactorId,
        sub: SubTxnId,
        proc: &str,
        args: &[Value],
    ) -> Result<Value> {
        let reactor_name = self
            .spec
            .reactor_name(reactor.index())
            .cloned()
            .ok_or_else(|| TxnError::UnknownReactor(format!("#{}", reactor.raw())))?;
        let entry = self.active.enter(reactor, &reactor_name, root.id(), sub)?;
        let result =
            self.run_procedure_body(executor_idx, root, reactor, &reactor_name, sub, proc, args);
        self.active.exit(entry);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_procedure_body(
        self: &Arc<Self>,
        executor_idx: usize,
        root: &Arc<RootTxn>,
        reactor: ReactorId,
        reactor_name: &str,
        sub: SubTxnId,
        proc: &str,
        args: &[Value],
    ) -> Result<Value> {
        let reactor_type = self
            .spec
            .reactor_type(reactor.index())
            .ok_or_else(|| TxnError::UnknownReactor(reactor_name.to_owned()))?;
        let procedure = reactor_type.procedure(proc)?;

        let container = self.router.container_of(reactor);
        let partition = self.containers[container.index()].partition();
        let participant = root.participant(container);

        let backend = EngineBackend {
            inner: Arc::clone(self),
            executor_idx,
            root: Arc::clone(root),
            caller_reactor: reactor,
            caller_sub: sub,
        };
        let mut ctx = ReactorCtx::new(
            reactor_name.to_owned(),
            reactor,
            partition,
            participant,
            &backend,
        );
        let mut result = procedure(&mut ctx, args);

        // Completion rule (§2.2.3): wait for every nested sub-transaction,
        // whether or not the procedure awaited it; any child failure aborts
        // the enclosing (sub-)transaction.
        for child in ctx.take_pending() {
            let child_result = child.get();
            if result.is_ok() {
                if let Err(e) = child_result {
                    result = Err(e);
                }
            }
        }
        result
    }

    /// Dispatch decision for a sub-transaction call (§3.2.1–3.2.2).
    #[allow(clippy::too_many_arguments)]
    fn dispatch_call(
        self: &Arc<Self>,
        executor_idx: usize,
        root: &Arc<RootTxn>,
        caller_reactor: ReactorId,
        caller_sub: SubTxnId,
        target: &str,
        proc: &str,
        args: Vec<Value>,
    ) -> Result<ReactorFuture> {
        let target_idx = self.spec.reactor_id(target)?;
        let target_id = ReactorId(target_idx as u64);
        let target_container = self.router.container_of(target_id);
        let caller_container = self.executors[executor_idx].container();

        // Self-call: inlined into the calling sub-transaction, executed
        // synchronously (§2.2.4).
        if target_id == caller_reactor {
            self.stats.record_sub_inline();
            let result = self.run_subtxn(executor_idx, root, target_id, caller_sub, proc, &args);
            return Ok(ReactorFuture::resolved(result));
        }

        // Same container: a distinct sub-transaction, but executed
        // synchronously on the calling executor to avoid migration of
        // control (§3.2.1).
        if target_container == caller_container {
            self.stats.record_sub_inline();
            let sub = root.next_sub();
            let result = self.run_subtxn(executor_idx, root, target_id, sub, proc, &args);
            return Ok(ReactorFuture::resolved(result));
        }

        // Cross-container: route to the affinity executor of the target
        // reactor and return a pending future.
        self.stats.record_sub_dispatch();
        let sub = root.next_sub();
        let target_exec = self.router.route_sub(target_id);
        let hook = Arc::new(ExecutorWaitHook {
            inner: Arc::clone(self),
            executor_idx,
        });
        let (future, writer) = ReactorFuture::pending_with_hook(hook);
        let ok = self.executors[target_exec.index()].enqueue(Request::Sub {
            root: Arc::clone(root),
            reactor: target_id,
            sub,
            proc: proc.to_owned(),
            args,
            writer,
        });
        if !ok {
            return Err(TxnError::Runtime("target executor queue closed".into()));
        }
        Ok(future)
    }
}

/// The [`CallBackend`] the engine hands to procedures.
struct EngineBackend {
    inner: Arc<Inner>,
    executor_idx: usize,
    root: Arc<RootTxn>,
    caller_reactor: ReactorId,
    caller_sub: SubTxnId,
}

impl CallBackend for EngineBackend {
    fn call(&self, target: &ReactorName, proc: &str, args: Vec<Value>) -> Result<ReactorFuture> {
        self.inner.dispatch_call(
            self.executor_idx,
            &self.root,
            self.caller_reactor,
            self.caller_sub,
            target,
            proc,
            args,
        )
    }

    fn current_reactor(&self) -> &str {
        self.inner
            .spec
            .reactor_name(self.caller_reactor.index())
            .map(|s| s.as_str())
            .unwrap_or("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_common::Key;
    use reactdb_core::ReactorType;
    use reactdb_storage::{ColumnType, RelationDef, Schema};

    /// A minimal two-type reactor database used across the engine tests:
    /// `Account` reactors hold a single-row `balance` relation and support
    /// `deposit`, `balance`, and `transfer_in` procedures; `transfer` on an
    /// account invokes `transfer_in` on the destination account reactor.
    fn bank_spec() -> ReactorDatabaseSpec {
        let account = ReactorType::new("Account")
            .with_relation(RelationDef::new(
                "balance",
                Schema::of(
                    &[("id", ColumnType::Int), ("amount", ColumnType::Float)],
                    &["id"],
                ),
            ))
            .with_procedure("init", |ctx, _args| {
                ctx.insert("balance", Tuple::of([Value::Int(0), Value::Float(0.0)]))?;
                Ok(Value::Null)
            })
            .with_procedure("deposit", |ctx, args| {
                let amount = args[0].as_float();
                let row = ctx.update_with("balance", &Key::Int(0), |t| {
                    let cur = t.at(1).as_float();
                    t.values_mut()[1] = Value::Float(cur + amount);
                })?;
                Ok(Value::Float(row.at(1).as_float()))
            })
            .with_procedure("balance", |ctx, _args| {
                let row = ctx.get_expected("balance", &Key::Int(0))?;
                Ok(Value::Float(row.at(1).as_float()))
            })
            .with_procedure("transfer", |ctx, args| {
                // args: [dst reactor name, amount]
                let dst = args[0].as_str().to_owned();
                let amount = args[1].as_float();
                // Withdraw locally, deposit remotely (asynchronously).
                ctx.update_with("balance", &Key::Int(0), |t| {
                    let cur = t.at(1).as_float();
                    t.values_mut()[1] = Value::Float(cur - amount);
                })?;
                ctx.call(&dst, "deposit", vec![Value::Float(amount)])?;
                Ok(Value::Null)
            })
            .with_procedure("slow_deposit", |ctx, args| {
                // A deposit that holds the reactor busy long enough for the
                // dangerous-structure race below to manifest reliably.
                let amount = args[0].as_float();
                ctx.busy_work(30_000_000);
                let row = ctx.update_with("balance", &Key::Int(0), |t| {
                    let cur = t.at(1).as_float();
                    t.values_mut()[1] = Value::Float(cur + amount);
                })?;
                Ok(Value::Float(row.at(1).as_float()))
            })
            .with_procedure("dangerous_fanout", |ctx, args| {
                // Invokes slow_deposit twice asynchronously on the *same*
                // target reactor: a dangerous structure that the runtime
                // must abort.
                let dst = args[0].as_str().to_owned();
                ctx.call(&dst, "slow_deposit", vec![Value::Float(1.0)])?;
                ctx.call(&dst, "slow_deposit", vec![Value::Float(1.0)])?;
                Ok(Value::Null)
            })
            .with_procedure("failing_remote", |ctx, args| {
                let dst = args[0].as_str().to_owned();
                ctx.update_with("balance", &Key::Int(0), |t| {
                    t.values_mut()[1] = Value::Float(12345.0);
                })?;
                ctx.call(&dst, "always_abort", vec![])?;
                Ok(Value::Null)
            })
            .with_procedure("always_abort", |ctx, _| ctx.abort("no"))
            .with_procedure("self_call", |ctx, _| {
                // A synchronous call to the own reactor must be inlined.
                let own_name = ctx.reactor_name().to_owned();
                let v = ctx.call_sync(&own_name, "balance", vec![])?;
                Ok(v)
            });

        let mut spec = ReactorDatabaseSpec::new();
        spec.add_type(account);
        for i in 0..4 {
            spec.add_reactor(format!("acct-{i}"), "Account");
        }
        spec
    }

    fn boot(config: DeploymentConfig) -> ReactDB {
        let db = ReactDB::boot(bank_spec(), config);
        for i in 0..4 {
            db.invoke(&format!("acct-{i}"), "init", vec![]).unwrap();
        }
        db
    }

    fn all_deployments() -> Vec<DeploymentConfig> {
        vec![
            DeploymentConfig::shared_everything_without_affinity(2),
            DeploymentConfig::shared_everything_with_affinity(2),
            DeploymentConfig::shared_nothing(4),
        ]
    }

    #[test]
    fn deposit_and_balance_roundtrip_under_every_deployment() {
        for config in all_deployments() {
            let db = boot(config);
            let v = db
                .invoke("acct-0", "deposit", vec![Value::Float(10.0)])
                .unwrap();
            assert_eq!(v, Value::Float(10.0));
            db.invoke("acct-0", "deposit", vec![Value::Float(5.0)])
                .unwrap();
            let bal = db.invoke("acct-0", "balance", vec![]).unwrap();
            assert_eq!(bal, Value::Float(15.0));
            assert_eq!(db.stats().committed(), 4 + 3);
        }
    }

    #[test]
    fn cross_reactor_transfer_is_atomic_under_every_deployment() {
        for config in all_deployments() {
            let db = boot(config);
            db.invoke("acct-0", "deposit", vec![Value::Float(100.0)])
                .unwrap();
            db.invoke(
                "acct-0",
                "transfer",
                vec![Value::Str("acct-3".into()), Value::Float(40.0)],
            )
            .unwrap();
            assert_eq!(
                db.invoke("acct-0", "balance", vec![]).unwrap(),
                Value::Float(60.0)
            );
            assert_eq!(
                db.invoke("acct-3", "balance", vec![]).unwrap(),
                Value::Float(40.0)
            );
        }
    }

    #[test]
    fn remote_abort_rolls_back_the_whole_root_transaction() {
        for config in all_deployments() {
            let db = boot(config);
            let err = db
                .invoke(
                    "acct-0",
                    "failing_remote",
                    vec![Value::Str("acct-3".into())],
                )
                .unwrap_err();
            assert!(err.is_user_abort(), "expected user abort, got {err:?}");
            // The local write of failing_remote was not installed.
            assert_eq!(
                db.invoke("acct-0", "balance", vec![]).unwrap(),
                Value::Float(0.0)
            );
        }
    }

    #[test]
    fn dangerous_structures_are_rejected_in_shared_nothing() {
        // Two asynchronous sub-transactions of the same root on the same
        // reactor violate the safety condition of §2.2.4. In shared-nothing
        // the second dispatch races with the first; the runtime must either
        // abort with DangerousStructure or (if the first already completed)
        // execute both. Under shared-everything the calls are inlined
        // sequentially, which is always safe.
        let db = boot(DeploymentConfig::shared_nothing(4));
        let mut saw_dangerous = false;
        for _ in 0..8 {
            match db.invoke(
                "acct-0",
                "dangerous_fanout",
                vec![Value::Str("acct-1".into())],
            ) {
                Err(e) if e.is_dangerous_structure() => saw_dangerous = true,
                Err(e) => panic!("unexpected error {e:?}"),
                Ok(_) => {}
            }
            if saw_dangerous {
                break;
            }
        }
        // The target reactor is kept busy for tens of milliseconds per
        // sub-transaction, so the two asynchronous invocations overlap and
        // the safety condition fires.
        assert!(
            saw_dangerous,
            "expected at least one DangerousStructure abort"
        );
        assert!(db.stats().dangerous_aborts() >= 1);
    }

    #[test]
    fn self_calls_are_inlined() {
        let db = boot(DeploymentConfig::shared_nothing(4));
        db.invoke("acct-2", "deposit", vec![Value::Float(7.0)])
            .unwrap();
        let v = db.invoke("acct-2", "self_call", vec![]).unwrap();
        assert_eq!(v, Value::Float(7.0));
        assert!(db.stats().sub_txns_inlined() >= 1);
    }

    #[test]
    fn unknown_names_are_reported() {
        let db = boot(DeploymentConfig::shared_everything_with_affinity(1));
        assert!(matches!(
            db.invoke("nope", "balance", vec![]).unwrap_err(),
            TxnError::UnknownReactor(_)
        ));
        assert!(matches!(
            db.invoke("acct-0", "nope", vec![]).unwrap_err(),
            TxnError::UnknownProcedure { .. }
        ));
        assert!(db.table("acct-0", "balance").is_ok());
        assert!(db.table("acct-0", "nope").is_err());
    }

    #[test]
    fn concurrent_transfers_conserve_money() {
        let db = Arc::new(boot(DeploymentConfig::shared_nothing(4)));
        for i in 0..4 {
            db.invoke(&format!("acct-{i}"), "deposit", vec![Value::Float(1000.0)])
                .unwrap();
        }
        let threads: Vec<_> = (0..4)
            .map(|worker| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let mut committed = 0;
                    let mut attempts = 0;
                    while committed < 25 && attempts < 2000 {
                        attempts += 1;
                        let src = worker;
                        let dst = (worker + 1) % 4;
                        match db.invoke(
                            &format!("acct-{src}"),
                            "transfer",
                            vec![Value::Str(format!("acct-{dst}")), Value::Float(1.0)],
                        ) {
                            Ok(_) => committed += 1,
                            Err(e) if e.is_cc_abort() || e.is_dangerous_structure() => {}
                            Err(e) => panic!("unexpected error {e:?}"),
                        }
                    }
                    committed
                })
            })
            .collect();
        let total_transfers: i32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(total_transfers > 0);
        let total: f64 = (0..4)
            .map(|i| {
                db.invoke(&format!("acct-{i}"), "balance", vec![])
                    .unwrap()
                    .as_float()
            })
            .sum();
        assert!(
            (total - 4000.0).abs() < 1e-6,
            "money not conserved: {total}"
        );
    }

    fn wal_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!(
            "reactdb-engine-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn durable_deployment_logs_commits_and_recovers_them() {
        use reactdb_common::DurabilityConfig;
        let dir = wal_dir("roundtrip");
        // Manual group commit (interval 0) keeps the test deterministic.
        let config = DeploymentConfig::shared_nothing(2)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));

        let db = boot(config.clone());
        db.invoke("acct-0", "deposit", vec![Value::Float(25.0)])
            .unwrap();
        db.invoke("acct-1", "deposit", vec![Value::Float(5.0)])
            .unwrap();
        // Cross-container 2PC transaction: both participants' writes must be
        // in the same logged batch.
        db.invoke(
            "acct-0",
            "transfer",
            vec![Value::Str("acct-1".into()), Value::Float(10.0)],
        )
        .unwrap();
        assert!(db.stats().log_bytes() > 0);
        assert!(db.stats().log_records() >= 4);

        // Everything so far becomes durable; the next write is lost in the
        // crash.
        db.wal_sync().unwrap();
        assert!(db.stats().log_syncs() >= 1);
        db.invoke("acct-0", "deposit", vec![Value::Float(1000.0)])
            .unwrap();
        db.simulate_crash();

        let recovered = ReactDB::recover(bank_spec(), config).unwrap();
        assert!(recovered.stats().recovered_txns() >= 5);
        assert_eq!(
            recovered.invoke("acct-0", "balance", vec![]).unwrap(),
            Value::Float(15.0),
            "synced prefix survives, unsynced deposit is lost"
        );
        assert_eq!(
            recovered.invoke("acct-1", "balance", vec![]).unwrap(),
            Value::Float(15.0)
        );
        // The recovered database keeps committing.
        recovered
            .invoke("acct-0", "deposit", vec![Value::Float(2.0)])
            .unwrap();
        assert_eq!(
            recovered.invoke("acct-0", "balance", vec![]).unwrap(),
            Value::Float(17.0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_logging_shrinks_the_log_and_recovers_identically() {
        use reactdb_common::DurabilityConfig;
        let dir = wal_dir("delta-roundtrip");
        let config = DeploymentConfig::shared_everything_with_affinity(1).with_durability(
            DurabilityConfig::epoch_sync(&dir)
                .with_interval_ms(0)
                .with_delta_logging(true),
        );
        let db = boot(config.clone());
        // Repeat updates of one balance row: everything after the insert
        // ships as a field-level delta.
        for _ in 0..20 {
            db.invoke("acct-0", "deposit", vec![Value::Float(1.0)])
                .unwrap();
        }
        assert!(
            db.stats().log_delta_records() >= 19,
            "repeat updates are delta-logged, got {}",
            db.stats().log_delta_records()
        );
        assert!(db.stats().log_bytes_saved() > 0);
        db.wal_sync().unwrap();
        db.invoke("acct-0", "deposit", vec![Value::Float(500.0)])
            .unwrap();
        db.simulate_crash();

        let recovered = ReactDB::recover(bank_spec(), config).unwrap();
        assert_eq!(
            recovered.invoke("acct-0", "balance", vec![]).unwrap(),
            Value::Float(20.0),
            "delta chains replay to the exact durable state"
        );
        // The recovered instance keeps delta-logging new commits.
        recovered
            .invoke("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap();
        recovered
            .invoke("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap();
        assert!(recovered.stats().log_delta_records() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_tids_stay_monotonic_over_replayed_state() {
        use reactdb_common::DurabilityConfig;
        let dir = wal_dir("monotonic");
        let config = DeploymentConfig::shared_everything_with_affinity(1)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));

        let db = boot(config.clone());
        for _ in 0..5 {
            db.invoke("acct-0", "deposit", vec![Value::Float(1.0)])
                .unwrap();
        }
        db.wal_sync().unwrap();
        db.simulate_crash();

        let recovered = ReactDB::recover(bank_spec(), config).unwrap();
        let table = recovered.table("acct-0", "balance").unwrap();
        let replayed_tid = table.get(&reactdb_common::Key::Int(0)).unwrap().tid();
        assert!(
            replayed_tid.version() > 0,
            "replay restores real commit TIDs"
        );
        recovered
            .invoke("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap();
        let new_tid = table.get(&reactdb_common::Key::Int(0)).unwrap().tid();
        assert!(
            new_tid.version() > replayed_tid.version(),
            "post-recovery commits dominate every replayed TID"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_shutdown_makes_every_commit_durable() {
        use reactdb_common::DurabilityConfig;
        let dir = wal_dir("clean");
        let config = DeploymentConfig::shared_nothing(2)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));
        let mut db = boot(config.clone());
        db.invoke("acct-2", "deposit", vec![Value::Float(42.0)])
            .unwrap();
        db.shutdown();
        drop(db);
        let recovered = ReactDB::recover(bank_spec(), config).unwrap();
        assert_eq!(
            recovered.invoke("acct-2", "balance", vec![]).unwrap(),
            Value::Float(42.0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn boot_refuses_a_log_directory_with_existing_state() {
        use reactdb_common::DurabilityConfig;
        let dir = wal_dir("refuse-reuse");
        let config = DeploymentConfig::shared_everything_with_affinity(1)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));
        let db = boot(config.clone());
        db.invoke("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap();
        db.wal_sync().unwrap();
        db.simulate_crash();
        // A plain boot over the surviving segments would restart at epoch 1
        // and reissue TIDs the old segments already contain; it must refuse.
        let result = std::panic::catch_unwind(|| ReactDB::boot(bank_spec(), config.clone()));
        assert!(result.is_err(), "boot over existing WAL state must refuse");
        // Recovery remains the sanctioned way in.
        let recovered = ReactDB::recover(bank_spec(), config).unwrap();
        assert_eq!(
            recovered.invoke("acct-0", "balance", vec![]).unwrap(),
            Value::Float(1.0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_bounds_recovery_to_the_log_tail() {
        use reactdb_common::DurabilityConfig;
        let dir = wal_dir("checkpoint-bound");
        let config = DeploymentConfig::shared_nothing(2)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));

        let db = boot(config.clone());
        for i in 0..30 {
            db.invoke(
                &format!("acct-{}", i % 4),
                "deposit",
                vec![Value::Float(1.0)],
            )
            .unwrap();
        }
        db.wal_sync().unwrap();
        let total_before = db.stats().log_bytes();
        let outcome = db.checkpoint_now().unwrap();
        assert_eq!(outcome.rows, 4, "one balance row per account");
        assert!(outcome.bytes > 0);
        assert!(db.stats().checkpoints_taken() >= 1);
        assert_eq!(db.stats().checkpoint_bytes(), outcome.bytes);
        assert!(
            outcome.truncated_segments >= 1 && db.stats().log_truncated_bytes() > 0,
            "the pre-checkpoint history segments are reclaimed"
        );
        // Per-table accounting observed the deposits.
        let usage = db.stats().log_bytes_per_table();
        assert!(!usage.is_empty());
        assert!(usage.iter().any(|u| u.relation == "balance" && u.bytes > 0));
        assert!(
            usage.iter().map(|u| u.bytes).sum::<u64>() <= total_before,
            "per-table bytes are a breakdown of total log bytes"
        );

        // A short durable tail plus one lost (unsynced) deposit.
        db.invoke("acct-0", "deposit", vec![Value::Float(5.0)])
            .unwrap();
        db.wal_sync().unwrap();
        db.invoke("acct-0", "deposit", vec![Value::Float(1000.0)])
            .unwrap();
        db.simulate_crash();

        let recovered = ReactDB::recover(bank_spec(), config).unwrap();
        assert_eq!(
            recovered.stats().recovered_checkpoint_rows(),
            4,
            "the checkpoint supplies the base state"
        );
        assert!(
            recovered.stats().recovered_txns() <= 3,
            "recovery replays only the post-checkpoint tail, got {}",
            recovered.stats().recovered_txns()
        );
        // acct-0: init 0 + 8 pre-checkpoint deposits (i % 4 == 0 of 0..30)
        // + 5 durable tail - lost 1000.
        assert_eq!(
            recovered.invoke("acct-0", "balance", vec![]).unwrap(),
            Value::Float(13.0)
        );
        assert_eq!(
            recovered.invoke("acct-1", "balance", vec![]).unwrap(),
            Value::Float(8.0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_checkpoint_daemon_fires_on_epoch_intervals() {
        use reactdb_common::{CheckpointConfig, DurabilityConfig};
        let dir = wal_dir("checkpoint-daemon");
        let config = DeploymentConfig::shared_everything_with_affinity(2)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(1))
            .with_checkpoint(CheckpointConfig::every_epochs(2).with_chunk_size(2));
        let mut db = boot(config.clone());
        // The engine's epoch advancer ticks every 10 ms; keep committing
        // until the daemon has demonstrably fired.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while db.stats().checkpoints_taken() < 2 {
            db.invoke("acct-0", "deposit", vec![Value::Float(1.0)])
                .unwrap();
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never checkpointed"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(db.stats().checkpoint_failures(), 0);
        let committed = db.invoke("acct-0", "balance", vec![]).unwrap().as_float();
        db.shutdown();
        drop(db);
        let recovered = ReactDB::recover(bank_spec(), config).unwrap();
        assert!(recovered.stats().recovered_checkpoint_rows() >= 1);
        assert_eq!(
            recovered.invoke("acct-0", "balance", vec![]).unwrap(),
            Value::Float(committed),
            "clean shutdown after background checkpoints loses nothing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_requires_durability() {
        let db = boot(DeploymentConfig::shared_nothing(2));
        assert!(matches!(
            db.checkpoint_now().unwrap_err(),
            TxnError::Runtime(_)
        ));
        assert_eq!(db.stats().checkpoints_taken(), 0);
        assert!(db.stats().log_bytes_per_table().is_empty());
    }

    #[test]
    fn durability_off_keeps_stats_at_zero() {
        let db = boot(DeploymentConfig::shared_nothing(2));
        db.invoke("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap();
        assert!(db.wal().is_none());
        assert!(
            db.wal_sync().is_err(),
            "sync without durability is an error"
        );
        assert_eq!(db.durable_epoch(), None);
        assert_eq!(db.stats().log_bytes(), 0);
        assert_eq!(db.stats().log_syncs(), 0);
    }

    #[test]
    fn load_row_bypasses_transactions_for_bulk_loading() {
        let db = ReactDB::boot(bank_spec(), DeploymentConfig::shared_nothing(2));
        db.load_row(
            "acct-1",
            "balance",
            Tuple::of([Value::Int(0), Value::Float(500.0)]),
        )
        .unwrap();
        assert_eq!(
            db.invoke("acct-1", "balance", vec![]).unwrap(),
            Value::Float(500.0)
        );
        assert_eq!(db.table("acct-1", "balance").unwrap().visible_len(), 1);
    }

    #[test]
    fn client_pipelines_handles_and_tracks_session_stats() {
        // MPL 1 serializes the deposits on their executor (no OCC aborts);
        // the pipelining under test lives in the queue, not in intra-
        // reactor parallelism.
        let db = boot(DeploymentConfig::shared_nothing(4).with_mpl(1));
        let client = db.client();
        // slow_deposit keeps the executor busy long enough that all three
        // handles are genuinely in flight at once.
        let handles: Vec<_> = (0..3)
            .map(|_| {
                client
                    .submit("acct-0", "slow_deposit", vec![Value::Float(1.0)])
                    .unwrap()
            })
            .collect();
        let stats = client.stats();
        assert_eq!(stats.submitted, 3);
        assert!(stats.in_flight >= 2, "pipelined handles overlap");
        for handle in &handles {
            handle.wait().unwrap();
        }
        let stats = client.stats();
        assert_eq!(stats.committed, 3);
        assert_eq!(stats.aborted, 0);
        assert_eq!(stats.in_flight, 0);
        assert!(stats.in_flight_hwm >= 2);
        assert_eq!(
            db.invoke("acct-0", "balance", vec![]).unwrap(),
            Value::Float(3.0)
        );
        // The same outcomes are visible database-wide.
        assert!(db.stats().client_committed() >= 3);
        assert!(db.stats().handles_in_flight_hwm() >= 2);
        assert_eq!(db.stats().handles_in_flight(), 0);
    }

    #[test]
    fn submit_batch_runs_every_call_and_fails_fast_on_bad_names() {
        use crate::client::Call;
        let db = boot(DeploymentConfig::shared_everything_with_affinity(2));
        let client = db.client();
        let handles = client
            .submit_batch((0..4).map(|i| {
                Call::new(
                    format!("acct-{i}"),
                    "deposit",
                    vec![Value::Float(1.0 + i as f64)],
                )
            }))
            .unwrap();
        let results: Vec<Value> = handles.iter().map(|h| h.wait().unwrap()).collect();
        assert_eq!(results[3], Value::Float(4.0));
        assert!(matches!(
            client
                .submit_batch([Call::new("nope", "deposit", vec![])])
                .unwrap_err(),
            TxnError::UnknownReactor(_)
        ));
    }

    #[test]
    fn handles_expose_commit_epoch_and_try_result() {
        let db = boot(DeploymentConfig::shared_nothing(2));
        let client = db.client();
        let handle = client
            .submit("acct-1", "deposit", vec![Value::Float(2.0)])
            .unwrap();
        assert_eq!(handle.wait().unwrap(), Value::Float(2.0));
        assert!(handle.is_resolved());
        assert!(handle.try_result().unwrap().is_ok());
        assert!(
            handle.commit_epoch().is_some(),
            "a committed write carries its epoch"
        );
        // Aborts carry no commit epoch.
        let aborted = client.submit("acct-1", "always_abort", vec![]).unwrap();
        assert!(aborted.wait().is_err());
        assert_eq!(aborted.commit_epoch(), None);
        assert_eq!(client.stats().aborted, 1);
    }

    #[test]
    fn wait_durable_blocks_until_the_commit_epoch_is_synced() {
        use reactdb_common::DurabilityConfig;
        let dir = wal_dir("durable-ack");
        // Interval 0: no daemon, so wait_durable must kick the group commit
        // itself — the strictest path.
        let config = DeploymentConfig::shared_nothing(2)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));
        let db = boot(config);
        let client = db.client();
        let handle = client
            .submit("acct-0", "deposit", vec![Value::Float(9.0)])
            .unwrap();
        let value = handle.wait_durable().unwrap();
        assert_eq!(value, Value::Float(9.0));
        let commit_epoch = handle.commit_epoch().expect("committed write");
        assert!(
            db.durable_epoch().unwrap() >= commit_epoch,
            "acknowledgement implies the epoch group-committed"
        );
        assert!(db.stats().durable_waits() >= 1);
        // With durability off, wait_durable degrades to wait.
        let volatile = boot(DeploymentConfig::shared_nothing(2));
        let h = volatile
            .client()
            .submit("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap();
        assert_eq!(h.wait_durable().unwrap(), Value::Float(1.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_log_directory_refuses_a_second_instance() {
        use reactdb_common::DurabilityConfig;
        let dir = wal_dir("second-instance");
        let config = DeploymentConfig::shared_everything_with_affinity(1)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));
        let db = boot(config.clone());
        db.invoke("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap();
        // While the first instance lives, the advisory lock refuses any
        // second instance — including a recovery, which would otherwise
        // compact segments out from under the live writer.
        assert!(ReactDB::recover(bank_spec(), config.clone()).is_err());
        drop(db);
        // The lock dies with the instance; recovery then proceeds.
        let recovered = ReactDB::recover(bank_spec(), config).unwrap();
        assert_eq!(
            recovered.invoke("acct-0", "balance", vec![]).unwrap(),
            Value::Float(1.0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invoke_with_retry_commits_and_propagates_user_aborts() {
        use crate::client::RetryPolicy;
        let db = boot(DeploymentConfig::shared_nothing(2));
        let client = db.client();
        let v = client
            .invoke_with_retry(
                "acct-0",
                "deposit",
                vec![Value::Float(5.0)],
                &RetryPolicy::occ(),
            )
            .unwrap();
        assert_eq!(v, Value::Float(5.0));
        let err = client
            .invoke_with_retry("acct-0", "always_abort", vec![], &RetryPolicy::occ())
            .unwrap_err();
        assert!(err.is_user_abort(), "user aborts are not retried");
    }

    #[test]
    fn metrics_snapshot_covers_the_commit_path_end_to_end() {
        use reactdb_common::DurabilityConfig;
        let dir = wal_dir("metrics-surface");
        let config = DeploymentConfig::shared_nothing(2)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));
        let db = boot(config);
        let client = db.client();
        for _ in 0..5 {
            let handle = client
                .submit("acct-0", "deposit", vec![Value::Float(1.0)])
                .unwrap();
            handle.wait_durable().unwrap();
        }
        let _ = client
            .submit("acct-1", "always_abort", vec![])
            .unwrap()
            .wait();
        db.checkpoint_now().unwrap();

        let snapshot = db.metrics();
        assert_eq!(snapshot.counter("txn_committed"), Some(9), "4 init + 5");
        assert_eq!(
            snapshot.counter("txn_aborts{reason=\"user_abort\"}"),
            Some(1)
        );
        assert_eq!(snapshot.counter("txn_aborts{reason=\"phantom\"}"), Some(0));
        assert!(snapshot.counter("log_bytes").unwrap() > 0);
        assert!(snapshot.counter("durable_waits").unwrap() >= 1);
        assert!(
            snapshot
                .counters
                .iter()
                .any(|c| c.name.starts_with("table_log_bytes{") && c.value > 0),
            "per-table log accounting is exported"
        );
        for phase in [
            Phase::Execute,
            Phase::Lock,
            Phase::Fence,
            Phase::Validate,
            Phase::Write,
            Phase::Log,
            Phase::DurableAck,
            Phase::WalSyncWait,
            Phase::WalFsync,
            Phase::CheckpointChunk,
            Phase::SessionWait,
        ] {
            let name = format!("phase_{}_ns", phase.name());
            let h = snapshot.histogram(&name).expect("histogram exported");
            assert!(h.count > 0, "{name} recorded nothing");
            assert!(h.max_ns >= h.p50_ns, "{name} percentiles are ordered");
        }
        assert!(
            snapshot
                .gauges
                .iter()
                .any(|g| g.name.starts_with("executor_utilization{") && g.value > 0.0),
            "busy-time accounting observed the deposits"
        );
        // The same values round-trip through both renderers.
        let parsed = MetricsSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(parsed, snapshot);
        assert!(snapshot
            .to_prometheus_text()
            .contains("reactdb_txn_committed 9"));

        let events = db.trace_events();
        assert!(
            events.iter().any(|e| matches!(e.kind, TraceKind::Commit)),
            "commit events traced"
        );
        assert!(
            events.iter().any(
                |e| matches!(e.kind, TraceKind::Abort(reason) if reason == AbortReason::UserAbort)
            ),
            "the abort event carries its classified reason"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, TraceKind::CheckpointChunk)),
            "checkpoint chunks traced"
        );
        assert!(db.trace_events().is_empty(), "draining resets the rings");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracing_off_keeps_every_observability_surface_empty() {
        use reactdb_common::TracingConfig;
        let db = boot(DeploymentConfig::shared_nothing(2).with_tracing(TracingConfig::off()));
        db.invoke("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap();
        let snapshot = db.metrics();
        // Counters still work (they are not gated on tracing)...
        assert_eq!(snapshot.counter("txn_committed"), Some(5));
        // ...but no clock is ever read: histograms and traces stay empty.
        for h in &snapshot.histograms {
            assert_eq!(h.count, 0, "{} recorded with tracing off", h.name);
        }
        assert!(db.trace_events().is_empty());
        assert!(snapshot
            .gauges
            .iter()
            .filter(|g| g.name.starts_with("executor_utilization"))
            .all(|g| g.value == 0.0));
    }

    #[test]
    fn invoke_with_honours_every_ack_level() {
        use reactdb_common::DurabilityConfig;
        let dir = wal_dir("ack-levels");
        let config = DeploymentConfig::shared_nothing(2)
            .with_durability(DurabilityConfig::epoch_sync(&dir).with_interval_ms(0));
        let db = boot(config);
        let client = db.client();
        for (i, level) in AckLevel::ALL.into_iter().enumerate() {
            let v = client
                .invoke_with("acct-0", "deposit", vec![Value::Float(1.0)], level)
                .unwrap();
            assert_eq!(v, Value::Float(1.0 + i as f64));
            if level.requires_durable() {
                // The handle's commit epoch must already be group-committed.
                let durable = db.durable_epoch().unwrap();
                assert!(durable >= 1, "durable ack implies a group commit ran");
            }
        }
        // The deprecated-doc wrappers stay behaviourally identical.
        let h = client
            .submit_with(
                "acct-0",
                "deposit",
                vec![Value::Float(1.0)],
                AckLevel::Durable,
            )
            .unwrap();
        assert_eq!(h.ack_level(), AckLevel::Durable);
        h.wait_acked().unwrap();
        assert!(db.durable_epoch().unwrap() >= h.commit_epoch().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_follower_rejects_writes_until_promoted() {
        let db = boot(DeploymentConfig::shared_nothing(2));
        db.invoke("acct-0", "deposit", vec![Value::Float(3.0)])
            .unwrap();
        db.set_read_only(true);
        assert!(db.is_read_only());
        let err = db
            .invoke("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap_err();
        assert!(
            matches!(err, TxnError::Runtime(_)),
            "write rejected: {err:?}"
        );
        let err = db
            .load_row(
                "acct-1",
                "balance",
                Tuple::of([Value::Int(0), Value::Float(9.0)]),
            )
            .unwrap_err();
        assert!(
            matches!(err, TxnError::Runtime(_)),
            "load rejected: {err:?}"
        );
        // Read-only transactions keep serving against the applied state.
        assert_eq!(
            db.invoke("acct-0", "balance", vec![]).unwrap(),
            Value::Float(3.0)
        );
        db.promote();
        assert!(!db.is_read_only());
        assert_eq!(
            db.invoke("acct-0", "deposit", vec![Value::Float(1.0)])
                .unwrap(),
            Value::Float(4.0)
        );
    }

    #[test]
    fn apply_redo_installs_batches_and_promotion_dominates_them() {
        let db = ReactDB::boot(bank_spec(), DeploymentConfig::shared_nothing(2));
        db.set_read_only(true);
        let record = |amount: f64| reactdb_txn::RedoRecord {
            container: ContainerId(0),
            reactor: ReactorId(0),
            relation: "balance".into(),
            key: Key::Int(0),
            payload: reactdb_txn::RedoPayload::Full(Tuple::of([
                Value::Int(0),
                Value::Float(amount),
            ])),
        };
        // A checkpoint base row plus two incremental batches, as a follower
        // would apply them from the shipped stream.
        let base = reactdb_storage::TidWord::committed(2, 1);
        db.apply_redo(&[(base, record(10.0))], &[], 2).unwrap();
        db.apply_redo(
            &[],
            &[
                (
                    reactdb_storage::TidWord::committed(3, 1),
                    vec![record(20.0)],
                ),
                (
                    reactdb_storage::TidWord::committed(4, 1),
                    vec![record(30.0)],
                ),
            ],
            2,
        )
        .unwrap();
        assert_eq!(
            db.invoke("acct-0", "balance", vec![]).unwrap(),
            Value::Float(30.0),
            "follower serves the applied snapshot"
        );
        db.promote();
        db.invoke("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap();
        assert_eq!(
            db.invoke("acct-0", "balance", vec![]).unwrap(),
            Value::Float(31.0)
        );
        let table = db.table("acct-0", "balance").unwrap();
        let tid = table.get(&Key::Int(0)).unwrap().tid();
        assert!(
            tid.epoch() > 4,
            "post-promotion commits land beyond every applied epoch, got {}",
            tid.epoch()
        );
    }

    #[test]
    fn shutdown_is_idempotent_and_drops_cleanly() {
        let mut db = boot(DeploymentConfig::shared_everything_with_affinity(2));
        db.invoke("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap();
        db.shutdown();
        db.shutdown();
        // Submitting after shutdown reports a runtime error rather than
        // hanging.
        let err = db
            .invoke("acct-0", "deposit", vec![Value::Float(1.0)])
            .unwrap_err();
        assert!(matches!(err, TxnError::Runtime(_)));
    }
}
