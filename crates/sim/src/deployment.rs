//! Simulated deployments: the three architecture strategies of §3.3 mapped
//! onto virtual executors.

use serde::{Deserialize, Serialize};

/// The deployment strategies evaluated in the paper, as they affect the
/// simulator's routing and inlining decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimStrategy {
    /// S1: one container; root transactions are routed round-robin over the
    /// executors; all sub-transactions are inlined on the root's executor.
    SharedEverythingWithoutAffinity,
    /// S2: one container; root transactions are routed by reactor affinity;
    /// all sub-transactions are inlined on the root's executor.
    SharedEverythingWithAffinity,
    /// S3: one container per executor; sub-transactions targeting reactors
    /// owned by other executors are dispatched there (and, depending on the
    /// program formulation, possibly overlapped).
    SharedNothing,
}

/// A simulated deployment: a strategy plus the executor count and the
/// reactor-to-executor affinity map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimDeployment {
    /// Strategy in effect.
    pub strategy: SimStrategy,
    /// Number of virtual executors (cores).
    pub executors: usize,
    /// For every reactor (dense index), the executor that owns it.
    pub executor_of_reactor: Vec<usize>,
}

impl SimDeployment {
    /// Builds a deployment in which reactors are striped over `executors`
    /// executors (`reactor % executors`), matching the engine's default
    /// affinity mapping.
    pub fn striped(strategy: SimStrategy, executors: usize, reactors: usize) -> Self {
        assert!(executors > 0, "need at least one executor");
        Self {
            strategy,
            executors,
            executor_of_reactor: (0..reactors).map(|r| r % executors).collect(),
        }
    }

    /// Builds a deployment with an explicit reactor-to-executor map.
    pub fn explicit(
        strategy: SimStrategy,
        executors: usize,
        executor_of_reactor: Vec<usize>,
    ) -> Self {
        assert!(executors > 0, "need at least one executor");
        assert!(
            executor_of_reactor.iter().all(|e| *e < executors),
            "reactor mapped to a nonexistent executor"
        );
        Self {
            strategy,
            executors,
            executor_of_reactor,
        }
    }

    /// Executor owning `reactor`.
    pub fn executor_of(&self, reactor: usize) -> usize {
        self.executor_of_reactor
            .get(reactor)
            .copied()
            .unwrap_or(reactor % self.executors)
    }

    /// True when sub-transactions are always inlined on the calling executor
    /// (the shared-everything strategies).
    pub fn inlines_subtxns(&self) -> bool {
        matches!(
            self.strategy,
            SimStrategy::SharedEverythingWithoutAffinity
                | SimStrategy::SharedEverythingWithAffinity
        )
    }

    /// Number of reactors known to the deployment.
    pub fn reactor_count(&self) -> usize {
        self.executor_of_reactor.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_mapping() {
        let d = SimDeployment::striped(SimStrategy::SharedNothing, 4, 10);
        assert_eq!(d.executor_of(0), 0);
        assert_eq!(d.executor_of(5), 1);
        assert_eq!(d.reactor_count(), 10);
        assert!(!d.inlines_subtxns());
    }

    #[test]
    fn shared_everything_inlines() {
        let d = SimDeployment::striped(SimStrategy::SharedEverythingWithAffinity, 4, 8);
        assert!(d.inlines_subtxns());
        let d = SimDeployment::striped(SimStrategy::SharedEverythingWithoutAffinity, 4, 8);
        assert!(d.inlines_subtxns());
    }

    #[test]
    #[should_panic(expected = "nonexistent executor")]
    fn explicit_mapping_validates_bounds() {
        SimDeployment::explicit(SimStrategy::SharedNothing, 2, vec![0, 1, 2]);
    }
}
