//! The virtual-time scheduler.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::deployment::{SimDeployment, SimStrategy};
use crate::profile::SimTxn;
use crate::report::{SimReport, TxnSample};

/// Calibrated virtual costs, in microseconds. Defaults follow the paper's
/// calibration methodology (§4.2.2, Appendix F.3): single-digit µs
/// communication costs with `Cr` more expensive than `Cs` (thread switch on
/// the receive path vs. atomic enqueue on the send path), a ~20 µs
/// containerization/dispatch overhead per transaction invocation, and a
/// commit cost that grows with the number of containers spanned (2PC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimCosts {
    /// Cost of sending a sub-transaction invocation to another executor.
    pub cs_us: f64,
    /// Cost of receiving a sub-transaction result from another executor.
    pub cr_us: f64,
    /// Per-root-transaction dispatch overhead (client worker to executor).
    pub dispatch_us: f64,
    /// Base commit cost (OCC validation + write phase).
    pub commit_us: f64,
    /// Additional commit cost per extra container spanned (2PC).
    pub commit_remote_us: f64,
    /// Input-generation time included in reported latencies (§4.1.2).
    pub input_gen_us: f64,
}

impl Default for SimCosts {
    fn default() -> Self {
        Self {
            cs_us: 2.0,
            cr_us: 6.0,
            dispatch_us: 10.0,
            commit_us: 8.0,
            commit_remote_us: 4.0,
            input_gen_us: 2.0,
        }
    }
}

/// A workload generator for the simulator: produces one fork-join
/// transaction profile per invocation. Implemented by the workload crates
/// from the same parameters that drive the real engine.
pub trait SimWorkload {
    /// Generates the next transaction for `worker`.
    fn next_txn(&mut self, worker: usize, rng: &mut StdRng) -> SimTxn;
}

impl<F> SimWorkload for F
where
    F: FnMut(usize, &mut StdRng) -> SimTxn,
{
    fn next_txn(&mut self, worker: usize, rng: &mut StdRng) -> SimTxn {
        self(worker, rng)
    }
}

/// The virtual-time simulator of a ReactDB deployment.
#[derive(Debug, Clone)]
pub struct Simulator {
    deployment: SimDeployment,
    costs: SimCosts,
}

impl Simulator {
    /// Creates a simulator for the given deployment and cost calibration.
    pub fn new(deployment: SimDeployment, costs: SimCosts) -> Self {
        Self { deployment, costs }
    }

    /// The deployment being simulated.
    pub fn deployment(&self) -> &SimDeployment {
        &self.deployment
    }

    /// The cost calibration in effect.
    pub fn costs(&self) -> &SimCosts {
        &self.costs
    }

    /// Runs `workers` closed-loop client workers, each issuing
    /// `txns_per_worker` transactions produced by `workload`, and returns
    /// the aggregate report. Fully deterministic for a given seed.
    pub fn run(
        &self,
        workload: &mut dyn SimWorkload,
        workers: usize,
        txns_per_worker: usize,
        seed: u64,
    ) -> SimReport {
        assert!(workers > 0, "need at least one worker");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = SimState {
            free_at: vec![0.0; self.deployment.executors],
            busy_us: vec![0.0; self.deployment.executors],
            round_robin: 0,
        };
        let mut worker_ready = vec![0.0f64; workers];
        let mut issued = vec![0usize; workers];
        let mut samples = Vec::with_capacity(workers * txns_per_worker);
        let mut makespan = 0.0f64;

        loop {
            // Pick the worker whose next transaction starts earliest.
            let mut next: Option<usize> = None;
            for w in 0..workers {
                if issued[w] < txns_per_worker
                    && next.is_none_or(|n| worker_ready[w] < worker_ready[n])
                {
                    next = Some(w);
                }
            }
            let Some(w) = next else { break };
            issued[w] += 1;

            let txn = workload.next_txn(w, &mut rng);
            let start = worker_ready[w];
            let end = self.run_root(&txn, start, &mut state);
            samples.push(TxnSample {
                worker: w,
                start_us: start,
                end_us: end,
            });
            worker_ready[w] = end;
            makespan = makespan.max(end);
        }

        SimReport {
            samples,
            busy_us: state.busy_us,
            makespan_us: makespan,
        }
    }

    /// Executes one root transaction starting (from the client's point of
    /// view) at `start`, returning its completion time.
    fn run_root(&self, txn: &SimTxn, start: f64, state: &mut SimState) -> f64 {
        let root_exec = match self.deployment.strategy {
            SimStrategy::SharedEverythingWithoutAffinity => {
                let e = state.round_robin % self.deployment.executors;
                state.round_robin += 1;
                e
            }
            SimStrategy::SharedEverythingWithAffinity | SimStrategy::SharedNothing => {
                self.deployment.executor_of(txn.reactor)
            }
        };

        let arrival = start + self.costs.input_gen_us;
        let mut touched = vec![false; self.deployment.executors];
        let body_done = self.run_sub(txn, root_exec, arrival, state, &mut touched);

        // Commit on the root executor: base cost plus 2PC surcharge per
        // additional container, plus the per-invocation dispatch overhead.
        let containers = touched.iter().filter(|t| **t).count().max(1);
        let overhead = self.costs.dispatch_us
            + self.costs.commit_us
            + self.costs.commit_remote_us * (containers - 1) as f64;
        let commit_start = body_done.max(state.free_at[root_exec]);
        let end = commit_start + overhead;
        state.busy_us[root_exec] += overhead;
        state.free_at[root_exec] = end;
        end
    }

    /// Executes a (sub-)transaction on `exec`, arriving at `arrival`.
    /// Returns its completion time.
    fn run_sub(
        &self,
        sub: &SimTxn,
        exec: usize,
        arrival: f64,
        state: &mut SimState,
        touched: &mut [bool],
    ) -> f64 {
        touched[exec] = true;
        let mut now = arrival.max(state.free_at[exec]);

        // Sequential processing.
        state.busy_us[exec] += sub.p_seq_us;
        now += sub.p_seq_us;

        // Synchronously invoked children: each completes before the next
        // statement of this procedure.
        for child in &sub.sync_children {
            let child_exec = self.child_executor(child, exec);
            if child_exec == exec {
                state.free_at[exec] = now;
                now = self.run_sub(child, exec, now, state, touched);
            } else {
                state.busy_us[exec] += self.costs.cs_us;
                now += self.costs.cs_us;
                state.free_at[exec] = now;
                let done = self.run_sub(child, child_exec, now, state, touched);
                now = now.max(done);
                state.busy_us[exec] += self.costs.cr_us;
                now += self.costs.cr_us;
            }
        }

        // Asynchronously invoked children: dispatched back-to-back, then
        // joined after the overlapped processing.
        let mut remote_completions = Vec::new();
        for child in &sub.async_children {
            let child_exec = self.child_executor(child, exec);
            if child_exec == exec {
                // Same executor: no parallelism is available — the call is
                // executed synchronously (matching the engine's same
                // container inlining).
                state.free_at[exec] = now;
                now = self.run_sub(child, exec, now, state, touched);
            } else {
                state.busy_us[exec] += self.costs.cs_us;
                now += self.costs.cs_us;
                let done = self.run_sub(child, child_exec, now, state, touched);
                remote_completions.push(done);
            }
        }

        // Processing overlapped with the in-flight children.
        state.busy_us[exec] += sub.p_ovp_us;
        now += sub.p_ovp_us;

        // Join every asynchronous child. A child's result is available Cr
        // after the child completes; result deliveries overlap with waiting
        // for later children (matching the fourth component of the cost
        // model in Figure 3), so only the latest delivery lands on the
        // critical path. The receive work itself still occupies this
        // executor for utilization accounting.
        for done in remote_completions {
            state.busy_us[exec] += self.costs.cr_us;
            now = now.max(done + self.costs.cr_us);
        }

        state.free_at[exec] = state.free_at[exec].max(now);
        now
    }

    fn child_executor(&self, child: &SimTxn, caller_exec: usize) -> usize {
        if self.deployment.inlines_subtxns() {
            caller_exec
        } else {
            self.deployment.executor_of(child.reactor)
        }
    }
}

struct SimState {
    free_at: Vec<f64>,
    busy_us: Vec<f64>,
    round_robin: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> SimCosts {
        SimCosts {
            cs_us: 2.0,
            cr_us: 6.0,
            dispatch_us: 10.0,
            commit_us: 8.0,
            commit_remote_us: 4.0,
            input_gen_us: 2.0,
        }
    }

    fn leaf_workload(processing: f64) -> impl FnMut(usize, &mut StdRng) -> SimTxn {
        move |worker, _rng| SimTxn::leaf(worker, processing)
    }

    #[test]
    fn single_leaf_latency_is_processing_plus_overheads() {
        let sim = Simulator::new(
            SimDeployment::striped(SimStrategy::SharedNothing, 4, 4),
            costs(),
        );
        let report = sim.run(&mut leaf_workload(100.0), 1, 10, 1);
        assert_eq!(report.committed(), 10);
        // input_gen + processing + dispatch + commit = 2 + 100 + 10 + 8
        assert!((report.avg_latency_us() - 120.0).abs() < 1e-9);
        assert!((report.throughput_tps() - 1e6 / 120.0).abs() < 1.0);
    }

    #[test]
    fn async_children_overlap_under_shared_nothing_but_not_shared_everything() {
        // Root on reactor 0, five asynchronous children on reactors 1..=5,
        // each doing 300 µs of work (the new-order-delay shape of §4.3.2).
        let txn = |_: usize, _: &mut StdRng| {
            let mut t = SimTxn::leaf(0, 10.0);
            for r in 1..=5 {
                t = t.with_async(SimTxn::leaf(r, 300.0));
            }
            t
        };
        let sn = Simulator::new(
            SimDeployment::striped(SimStrategy::SharedNothing, 8, 8),
            costs(),
        );
        let se = Simulator::new(
            SimDeployment::striped(SimStrategy::SharedEverythingWithAffinity, 8, 8),
            costs(),
        );
        let sn_report = sn.run(&mut { txn }, 1, 20, 1);
        let se_report = se.run(&mut { txn }, 1, 20, 1);
        // Shared-everything serializes the five children: >= 1500 µs.
        assert!(se_report.avg_latency_us() > 1500.0);
        // Shared-nothing overlaps them: roughly 300 µs plus overheads.
        assert!(sn_report.avg_latency_us() < 450.0);
        assert!(sn_report.throughput_tps() > 2.0 * se_report.throughput_tps());
    }

    #[test]
    fn queueing_degrades_latency_when_workers_exceed_executors() {
        let sim = Simulator::new(
            SimDeployment::striped(SimStrategy::SharedEverythingWithAffinity, 1, 1),
            costs(),
        );
        let light = sim.run(&mut leaf_workload(0.0), 1, 50, 1);
        let heavy = sim.run(&mut leaf_workload(0.0), 4, 50, 1);
        // Four closed-loop workers sharing one executor: ~4x the latency.
        assert!(heavy.avg_latency_us() > 3.0 * light.avg_latency_us());
        // Throughput saturates at the single executor's service rate: adding
        // workers closes the idle gap left by input generation (~10%) but
        // cannot scale further.
        assert!(heavy.throughput_tps() <= light.throughput_tps() * 1.25);
        assert!(heavy.throughput_tps() >= light.throughput_tps());
    }

    #[test]
    fn round_robin_spreads_load_but_affinity_keeps_it_local() {
        // Transactions always target reactor 0; with round-robin routing all
        // four executors see work, with affinity only one does.
        let wl = |_: usize, _: &mut StdRng| SimTxn::leaf(0, 50.0);
        let rr = Simulator::new(
            SimDeployment::striped(SimStrategy::SharedEverythingWithoutAffinity, 4, 4),
            costs(),
        );
        let aff = Simulator::new(
            SimDeployment::striped(SimStrategy::SharedEverythingWithAffinity, 4, 4),
            costs(),
        );
        let rr_report = rr.run(&mut { wl }, 2, 40, 1);
        let aff_report = aff.run(&mut { wl }, 2, 40, 1);
        let rr_used = rr_report.busy_us.iter().filter(|b| **b > 0.0).count();
        let aff_used = aff_report.busy_us.iter().filter(|b| **b > 0.0).count();
        assert_eq!(rr_used, 4);
        assert_eq!(aff_used, 1);
    }

    #[test]
    fn two_pc_surcharge_applies_only_to_multi_container_transactions() {
        let local = |_: usize, _: &mut StdRng| SimTxn::leaf(0, 10.0);
        let remote =
            |_: usize, _: &mut StdRng| SimTxn::leaf(0, 10.0).with_sync(SimTxn::leaf(1, 0.0));
        let sim = Simulator::new(
            SimDeployment::striped(SimStrategy::SharedNothing, 2, 2),
            costs(),
        );
        let l = sim.run(&mut { local }, 1, 10, 1);
        let r = sim.run(&mut { remote }, 1, 10, 1);
        // remote adds Cs + Cr + one 2PC surcharge = 2 + 6 + 4
        assert!((r.avg_latency_us() - l.avg_latency_us() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let wl = |w: usize, rng: &mut StdRng| {
            use rand::Rng;
            SimTxn::leaf(w % 4, rng.gen_range(1.0..100.0))
        };
        let sim = Simulator::new(
            SimDeployment::striped(SimStrategy::SharedNothing, 4, 4),
            costs(),
        );
        let a = sim.run(&mut { wl }, 3, 30, 42);
        let b = sim.run(&mut { wl }, 3, 30, 42);
        assert_eq!(a.samples, b.samples);
        let c = sim.run(&mut { wl }, 3, 30, 43);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn utilization_rises_with_load() {
        let wl = |_: usize, _: &mut StdRng| {
            let mut t = SimTxn::leaf(0, 50.0);
            for r in 1..4 {
                t = t.with_async(SimTxn::leaf(r, 50.0));
            }
            t
        };
        let sim = Simulator::new(
            SimDeployment::striped(SimStrategy::SharedNothing, 4, 4),
            costs(),
        );
        let low = sim.run(&mut { wl }, 1, 50, 1);
        let high = sim.run(&mut { wl }, 8, 50, 1);
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&high.utilization()) > avg(&low.utilization()));
    }
}
