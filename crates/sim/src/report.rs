//! Simulation results: per-transaction samples and aggregate metrics.

use serde::{Deserialize, Serialize};

/// One completed (simulated) root transaction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxnSample {
    /// Worker that issued the transaction.
    pub worker: usize,
    /// Virtual time at which the worker issued it (µs).
    pub start_us: f64,
    /// Virtual time at which it completed, including commit (µs).
    pub end_us: f64,
}

impl TxnSample {
    /// Latency of the transaction in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Aggregate outcome of a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// All completed transactions.
    pub samples: Vec<TxnSample>,
    /// Busy virtual time accumulated per executor (µs).
    pub busy_us: Vec<f64>,
    /// Virtual time at which the last transaction completed (µs).
    pub makespan_us: f64,
}

impl SimReport {
    /// Number of committed transactions.
    pub fn committed(&self) -> usize {
        self.samples.len()
    }

    /// Average latency in microseconds.
    pub fn avg_latency_us(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(TxnSample::latency_us).sum::<f64>() / self.samples.len() as f64
    }

    /// Average latency in milliseconds (the unit of most of the paper's
    /// latency figures).
    pub fn avg_latency_ms(&self) -> f64 {
        self.avg_latency_us() / 1000.0
    }

    /// Throughput in transactions per second of virtual time.
    pub fn throughput_tps(&self) -> f64 {
        if self.makespan_us <= 0.0 {
            return 0.0;
        }
        self.samples.len() as f64 / (self.makespan_us / 1_000_000.0)
    }

    /// Utilization of each executor: busy time over makespan (0..=1).
    pub fn utilization(&self) -> Vec<f64> {
        if self.makespan_us <= 0.0 {
            return vec![0.0; self.busy_us.len()];
        }
        self.busy_us
            .iter()
            .map(|b| (b / self.makespan_us).min(1.0))
            .collect()
    }

    /// p-th latency percentile in microseconds.
    pub fn percentile_latency_us(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut lats: Vec<f64> = self.samples.iter().map(TxnSample::latency_us).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((lats.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        lats[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            samples: vec![
                TxnSample {
                    worker: 0,
                    start_us: 0.0,
                    end_us: 100.0,
                },
                TxnSample {
                    worker: 0,
                    start_us: 100.0,
                    end_us: 300.0,
                },
                TxnSample {
                    worker: 1,
                    start_us: 0.0,
                    end_us: 200.0,
                },
            ],
            busy_us: vec![150.0, 300.0],
            makespan_us: 300.0,
        }
    }

    #[test]
    fn aggregate_metrics() {
        let r = report();
        assert_eq!(r.committed(), 3);
        assert!((r.avg_latency_us() - (100.0 + 200.0 + 200.0) / 3.0).abs() < 1e-9);
        assert!((r.throughput_tps() - 3.0 / (300.0 / 1e6)).abs() < 1e-6);
        assert_eq!(r.utilization(), vec![0.5, 1.0]);
        assert_eq!(r.percentile_latency_us(1.0), 200.0);
        assert_eq!(r.percentile_latency_us(0.0), 100.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport::default();
        assert_eq!(r.avg_latency_us(), 0.0);
        assert_eq!(r.throughput_tps(), 0.0);
        assert_eq!(r.percentile_latency_us(0.5), 0.0);
    }
}
