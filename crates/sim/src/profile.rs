//! Transaction profiles: fork-join trees of sub-transaction descriptors.

use serde::{Deserialize, Serialize};

/// A (sub-)transaction as seen by the simulator: where it runs, how much
/// sequential and overlapped processing it performs, and which children it
/// invokes synchronously or asynchronously. The structure mirrors the
/// fork-join programs of the cost model (§2.4) and is produced by the
/// workload generators from the *same* parameters that drive the real
/// engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimTxn {
    /// Dense index of the reactor this (sub-)transaction executes on.
    pub reactor: usize,
    /// Sequential processing before the fork point, in microseconds.
    pub p_seq_us: f64,
    /// Processing overlapped with the asynchronous children, in
    /// microseconds.
    pub p_ovp_us: f64,
    /// Children invoked synchronously (each completes before the next
    /// statement).
    pub sync_children: Vec<SimTxn>,
    /// Children invoked asynchronously at the fork point and joined at the
    /// end.
    pub async_children: Vec<SimTxn>,
}

impl SimTxn {
    /// A leaf sub-transaction on `reactor` with the given processing cost.
    pub fn leaf(reactor: usize, p_seq_us: f64) -> Self {
        Self {
            reactor,
            p_seq_us,
            p_ovp_us: 0.0,
            sync_children: Vec::new(),
            async_children: Vec::new(),
        }
    }

    /// Adds a synchronously invoked child.
    pub fn with_sync(mut self, child: SimTxn) -> Self {
        self.sync_children.push(child);
        self
    }

    /// Adds an asynchronously invoked child.
    pub fn with_async(mut self, child: SimTxn) -> Self {
        self.async_children.push(child);
        self
    }

    /// Sets the overlapped processing cost.
    pub fn with_overlap(mut self, p_ovp_us: f64) -> Self {
        self.p_ovp_us = p_ovp_us;
        self
    }

    /// Total processing in the tree (lower bound on work).
    pub fn total_processing_us(&self) -> f64 {
        self.p_seq_us
            + self.p_ovp_us
            + self
                .sync_children
                .iter()
                .chain(self.async_children.iter())
                .map(SimTxn::total_processing_us)
                .sum::<f64>()
    }

    /// Number of sub-transactions in the tree (including this one).
    pub fn subtxn_count(&self) -> usize {
        1 + self
            .sync_children
            .iter()
            .chain(self.async_children.iter())
            .map(SimTxn::subtxn_count)
            .sum::<usize>()
    }

    /// Distinct reactors touched by the tree.
    pub fn reactors_touched(&self) -> Vec<usize> {
        let mut out = vec![self.reactor];
        for c in self.sync_children.iter().chain(self.async_children.iter()) {
            out.extend(c.reactors_touched());
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let t = SimTxn::leaf(0, 5.0)
            .with_sync(SimTxn::leaf(1, 2.0))
            .with_async(SimTxn::leaf(2, 3.0))
            .with_async(SimTxn::leaf(2, 3.0))
            .with_overlap(1.0);
        assert_eq!(t.total_processing_us(), 14.0);
        assert_eq!(t.subtxn_count(), 4);
        assert_eq!(t.reactors_touched(), vec![0, 1, 2]);
    }

    #[test]
    fn leaf_has_no_children() {
        let t = SimTxn::leaf(3, 1.0);
        assert_eq!(t.subtxn_count(), 1);
        assert_eq!(t.reactors_touched(), vec![3]);
    }
}
