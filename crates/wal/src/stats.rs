//! Durability counters exposed to the engine's statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing the write-ahead log's activity. Shared
/// between the WAL and `reactdb-engine`'s `DbStats`.
#[derive(Debug, Default)]
pub struct WalStats {
    bytes_logged: AtomicU64,
    records_logged: AtomicU64,
    batches_logged: AtomicU64,
    syncs: AtomicU64,
    sync_failures: AtomicU64,
    durable_epoch: AtomicU64,
    durable_waits: AtomicU64,
}

impl WalStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_batch(&self, bytes: u64, records: u64) {
        self.bytes_logged.fetch_add(bytes, Ordering::Relaxed);
        self.records_logged.fetch_add(records, Ordering::Relaxed);
        self.batches_logged.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_sync(&self, durable_epoch: u64) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.durable_epoch
            .fetch_max(durable_epoch, Ordering::Relaxed);
    }

    pub(crate) fn record_sync_failure(&self) {
        self.sync_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_durable_wait(&self) {
        self.durable_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Seeds the durable epoch from an on-disk marker at open, without
    /// counting a group commit.
    pub(crate) fn seed_durable_epoch(&self, durable_epoch: u64) {
        self.durable_epoch
            .fetch_max(durable_epoch, Ordering::Relaxed);
    }

    /// Total bytes of redo frames appended to log buffers.
    pub fn bytes_logged(&self) -> u64 {
        self.bytes_logged.load(Ordering::Relaxed)
    }

    /// Total redo records logged.
    pub fn records_logged(&self) -> u64 {
        self.records_logged.load(Ordering::Relaxed)
    }

    /// Total commit batches logged.
    pub fn batches_logged(&self) -> u64 {
        self.batches_logged.load(Ordering::Relaxed)
    }

    /// Number of group commits (flush + fsync + marker advance) performed.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Number of group commits that failed with an I/O error. A non-zero,
    /// climbing value with a stalled [`WalStats::durable_epoch`] means the
    /// log device is unhealthy and acknowledged commits are accumulating in
    /// the at-risk window.
    pub fn sync_failures(&self) -> u64 {
        self.sync_failures.load(Ordering::Relaxed)
    }

    /// Highest epoch declared durable so far (0 before the first sync).
    pub fn durable_epoch(&self) -> u64 {
        self.durable_epoch.load(Ordering::Relaxed)
    }

    /// Durable-epoch waits that actually had to block (a `wait_durable`
    /// call whose target epoch was already covered is not counted).
    pub fn durable_waits(&self) -> u64 {
        self.durable_waits.load(Ordering::Relaxed)
    }
}
