//! Durability counters exposed to the engine's statistics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use reactdb_common::ReactorId;

/// Log-space usage of one table (one reactor's relation), accumulated on the
/// commit path as redo frames are appended. Truncation does not subtract
/// from these: they measure what was *written* per table, which together
/// with [`WalStats::log_truncated_bytes`] makes truncation effectiveness
/// observable (bytes written vs. bytes reclaimed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableLogUsage {
    /// Reactor whose state the relation belongs to.
    pub reactor: ReactorId,
    /// Relation name within the reactor.
    pub relation: String,
    /// Redo-frame bytes attributed to this table.
    pub bytes: u64,
    /// Redo records logged for this table.
    pub records: u64,
}

/// Monotonic counters describing the write-ahead log's activity. Shared
/// between the WAL and `reactdb-engine`'s `DbStats`.
#[derive(Debug, Default)]
pub struct WalStats {
    bytes_logged: AtomicU64,
    records_logged: AtomicU64,
    batches_logged: AtomicU64,
    delta_records: AtomicU64,
    delta_bytes_saved: AtomicU64,
    syncs: AtomicU64,
    sync_failures: AtomicU64,
    durable_epoch: AtomicU64,
    durable_waits: AtomicU64,
    checkpoints_taken: AtomicU64,
    checkpoints_delta: AtomicU64,
    checkpoint_bytes: AtomicU64,
    checkpoint_failures: AtomicU64,
    log_truncated_bytes: AtomicU64,
    log_truncated_segments: AtomicU64,
    /// Per-table append accounting, keyed by (reactor, relation).
    per_table: Mutex<BTreeMap<(ReactorId, String), (u64, u64)>>,
}

impl WalStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_batch(&self, bytes: u64, records: u64) {
        self.bytes_logged.fetch_add(bytes, Ordering::Relaxed);
        self.records_logged.fetch_add(records, Ordering::Relaxed);
        self.batches_logged.fetch_add(1, Ordering::Relaxed);
    }

    /// Attributes `bytes` of one redo record to its table. Called under the
    /// owning writer's mutex, once per record.
    pub(crate) fn record_table_bytes(&self, reactor: ReactorId, relation: &str, bytes: u64) {
        let mut map = self.per_table.lock();
        let entry = map.entry((reactor, relation.to_owned())).or_insert((0, 0));
        entry.0 += bytes;
        entry.1 += 1;
    }

    /// Records one redo record shipped as a field-level delta, with the
    /// bytes it saved relative to the full-image encoding of the same row.
    pub(crate) fn record_delta(&self, bytes_saved: u64) {
        self.delta_records.fetch_add(1, Ordering::Relaxed);
        self.delta_bytes_saved
            .fetch_add(bytes_saved, Ordering::Relaxed);
    }

    pub(crate) fn record_sync(&self, durable_epoch: u64) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.durable_epoch
            .fetch_max(durable_epoch, Ordering::Relaxed);
    }

    pub(crate) fn record_sync_failure(&self) {
        self.sync_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_durable_wait(&self) {
        self.durable_waits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_checkpoint(&self, bytes: u64, delta: bool) {
        self.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
        if delta {
            self.checkpoints_delta.fetch_add(1, Ordering::Relaxed);
        }
        self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_checkpoint_failure(&self) {
        self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_truncation(&self, bytes: u64, segments: u64) {
        self.log_truncated_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.log_truncated_segments
            .fetch_add(segments, Ordering::Relaxed);
    }

    /// Seeds the durable epoch from an on-disk marker at open, without
    /// counting a group commit.
    pub(crate) fn seed_durable_epoch(&self, durable_epoch: u64) {
        self.durable_epoch
            .fetch_max(durable_epoch, Ordering::Relaxed);
    }

    /// Total bytes of redo frames appended to log buffers.
    pub fn bytes_logged(&self) -> u64 {
        self.bytes_logged.load(Ordering::Relaxed)
    }

    /// Total redo records logged.
    pub fn records_logged(&self) -> u64 {
        self.records_logged.load(Ordering::Relaxed)
    }

    /// Total commit batches logged.
    pub fn batches_logged(&self) -> u64 {
        self.batches_logged.load(Ordering::Relaxed)
    }

    /// Redo records shipped as field-level deltas instead of full images.
    pub fn delta_records(&self) -> u64 {
        self.delta_records.load(Ordering::Relaxed)
    }

    /// Log bytes saved by delta records: the full-image encoding size of
    /// each delta-logged row minus its delta encoding size, accumulated.
    /// Compare against [`WalStats::bytes_logged`] for the effective
    /// commit-path bandwidth reduction.
    pub fn delta_bytes_saved(&self) -> u64 {
        self.delta_bytes_saved.load(Ordering::Relaxed)
    }

    /// Number of group commits (flush + fsync + marker advance) performed.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Number of group commits that failed with an I/O error. A non-zero,
    /// climbing value with a stalled [`WalStats::durable_epoch`] means the
    /// log device is unhealthy and acknowledged commits are accumulating in
    /// the at-risk window.
    pub fn sync_failures(&self) -> u64 {
        self.sync_failures.load(Ordering::Relaxed)
    }

    /// Highest epoch declared durable so far (0 before the first sync).
    pub fn durable_epoch(&self) -> u64 {
        self.durable_epoch.load(Ordering::Relaxed)
    }

    /// Durable-epoch waits that actually had to block (a `wait_durable`
    /// call whose target epoch was already covered is not counted).
    pub fn durable_waits(&self) -> u64 {
        self.durable_waits.load(Ordering::Relaxed)
    }

    /// Background/explicit checkpoints completed.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken.load(Ordering::Relaxed)
    }

    /// Completed checkpoints that were delta captures (dirty rows only)
    /// rather than full table walks. Always ≤ [`WalStats::checkpoints_taken`].
    pub fn checkpoints_delta(&self) -> u64 {
        self.checkpoints_delta.load(Ordering::Relaxed)
    }

    /// Total bytes of checkpoint data files written (cumulative across
    /// checkpoints).
    pub fn checkpoint_bytes(&self) -> u64 {
        self.checkpoint_bytes.load(Ordering::Relaxed)
    }

    /// Checkpoint attempts that failed with an I/O error (the previous
    /// checkpoint, if any, remains in effect).
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures.load(Ordering::Relaxed)
    }

    /// Log-segment bytes reclaimed by online truncation (segments entirely
    /// covered by a completed checkpoint).
    pub fn log_truncated_bytes(&self) -> u64 {
        self.log_truncated_bytes.load(Ordering::Relaxed)
    }

    /// Log segments deleted by online truncation.
    pub fn log_truncated_segments(&self) -> u64 {
        self.log_truncated_segments.load(Ordering::Relaxed)
    }

    /// Per-table log-space accounting: bytes and records appended per
    /// (reactor, relation), sorted by descending byte count.
    pub fn per_table(&self) -> Vec<TableLogUsage> {
        let map = self.per_table.lock();
        let mut usage: Vec<TableLogUsage> = map
            .iter()
            .map(|((reactor, relation), (bytes, records))| TableLogUsage {
                reactor: *reactor,
                relation: relation.clone(),
                bytes: *bytes,
                records: *records,
            })
            .collect();
        usage.sort_by_key(|usage| std::cmp::Reverse(usage.bytes));
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_table_accounting_accumulates_and_sorts() {
        let s = WalStats::new();
        s.record_table_bytes(ReactorId(0), "savings", 100);
        s.record_table_bytes(ReactorId(0), "savings", 50);
        s.record_table_bytes(ReactorId(1), "checking", 400);
        let usage = s.per_table();
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].relation, "checking");
        assert_eq!(usage[0].bytes, 400);
        assert_eq!(usage[1].bytes, 150);
        assert_eq!(usage[1].records, 2);
    }

    #[test]
    fn checkpoint_and_truncation_counters_accumulate() {
        let s = WalStats::new();
        s.record_checkpoint(1000, false);
        s.record_checkpoint(500, true);
        s.record_checkpoint_failure();
        s.record_truncation(300, 2);
        assert_eq!(s.checkpoints_taken(), 2);
        assert_eq!(s.checkpoints_delta(), 1);
        assert_eq!(s.checkpoint_bytes(), 1500);
        assert_eq!(s.checkpoint_failures(), 1);
        assert_eq!(s.log_truncated_bytes(), 300);
        assert_eq!(s.log_truncated_segments(), 2);
    }
}
