//! Fault injection for the durability and replication paths.
//!
//! A *failpoint* is a named site in production code where a test (or an
//! operator armed with `--failpoints` / `REACTDB_FAILPOINTS`) can inject a
//! failure: an injected I/O error, or a stall of a configured duration.
//! The chaos suite uses them to drive checkpoint-truncation storms and
//! feeder faults through the exact code paths a real race would take.
//!
//! Design constraints, in order:
//!
//! * **Zero cost when disarmed.** The hot path is a single relaxed load of
//!   one static `AtomicBool`; no lock, no map lookup, no allocation. Only
//!   a process that armed at least one failpoint ever pays more.
//! * **No new dependencies.** The registry is a `Mutex<Vec<_>>` behind a
//!   `OnceLock`; specs parse from a plain string.
//! * **Deterministic budgets.** A spec may cap how many times a point
//!   fires (`name=err:2` fires twice, then goes quiet), so a test can
//!   inject exactly one truncation race and then let the system heal.
//!
//! Spec grammar (comma-separated, whitespace ignored):
//!
//! ```text
//! ship-mid-file=err            err every time the point is passed
//! truncate-under-cursor=err:1  err once, then disarmed
//! feeder-stall=stall:50        stall 50 ms every pass
//! ack-drop=err:3               (ack-drop treats err as "drop the ack")
//! ```
//!
//! Arming merges into the existing registry; [`clear`] disarms everything
//! (tests run with `arm` + `clear` pairs; the env var is read once at
//! first use).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Fast-path switch: false until the first point is armed. Never reset to
/// false by [`clear`] — a once-armed process keeps paying the (tiny) slow
/// path, which keeps the fast path a single relaxed load with no races
/// against concurrent arming.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Environment variable read (once) for process-level arming.
pub const ENV_VAR: &str = "REACTDB_FAILPOINTS";

/// What an armed failpoint does when passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpAction {
    /// Fail the site: the caller injects its site-specific error (an I/O
    /// error on ship paths, a dropped ack on the ack path).
    Err,
    /// Stall the site for the given duration, then continue normally.
    Stall(Duration),
}

#[derive(Debug)]
struct FpEntry {
    name: String,
    action: FpAction,
    /// Remaining fires; `None` = unlimited.
    budget: Option<u64>,
    /// Times this point actually fired (survives budget exhaustion).
    hits: u64,
}

fn registry() -> &'static Mutex<Vec<FpEntry>> {
    static REGISTRY: OnceLock<Mutex<Vec<FpEntry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut entries = Vec::new();
        if let Ok(spec) = std::env::var(ENV_VAR) {
            match parse_spec(&spec) {
                Ok(parsed) => entries = parsed,
                Err(e) => eprintln!("ignoring malformed {ENV_VAR}: {e}"),
            }
        }
        if !entries.is_empty() {
            ARMED.store(true, Ordering::Release);
        }
        Mutex::new(entries)
    })
}

fn parse_one(clause: &str) -> Result<FpEntry, String> {
    let (name, rhs) = clause
        .split_once('=')
        .ok_or_else(|| format!("clause {clause:?} lacks '='"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(format!("clause {clause:?} has an empty name"));
    }
    let mut parts = rhs.trim().split(':');
    let kind = parts.next().unwrap_or("");
    let (action, budget) = match kind {
        "err" => {
            let budget = match parts.next() {
                None => None,
                Some(n) => Some(
                    n.parse::<u64>()
                        .map_err(|_| format!("budget {n:?} in {clause:?} is not a number"))?,
                ),
            };
            (FpAction::Err, budget)
        }
        "stall" => {
            let ms: u64 = parts
                .next()
                .ok_or_else(|| format!("stall in {clause:?} needs a duration: stall:MS"))?
                .parse()
                .map_err(|_| format!("stall duration in {clause:?} is not a number"))?;
            let budget = match parts.next() {
                None => None,
                Some(n) => Some(
                    n.parse::<u64>()
                        .map_err(|_| format!("budget {n:?} in {clause:?} is not a number"))?,
                ),
            };
            (FpAction::Stall(Duration::from_millis(ms)), budget)
        }
        other => return Err(format!("unknown action {other:?} in {clause:?}")),
    };
    if parts.next().is_some() {
        return Err(format!("trailing fields in {clause:?}"));
    }
    Ok(FpEntry {
        name: name.to_string(),
        action,
        budget,
        hits: 0,
    })
}

fn parse_spec(spec: &str) -> Result<Vec<FpEntry>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|c| !c.is_empty())
        .map(parse_one)
        .collect()
}

/// Arms failpoints from a spec string (see the module doc for the
/// grammar). Replaces any existing entry of the same name; other entries
/// survive. Errors on a malformed spec without changing anything.
pub fn arm(spec: &str) -> Result<(), String> {
    let parsed = parse_spec(spec)?;
    if parsed.is_empty() {
        return Ok(());
    }
    let mut entries = registry().lock().unwrap();
    for entry in parsed {
        entries.retain(|e| e.name != entry.name);
        entries.push(entry);
    }
    ARMED.store(true, Ordering::Release);
    Ok(())
}

/// Disarms every failpoint and zeroes the hit counters.
pub fn clear() {
    registry().lock().unwrap().clear();
}

/// The injection site: returns what the armed failpoint `name` wants, or
/// `None` (the overwhelmingly common case — one relaxed atomic load).
/// A budgeted point past its budget returns `None` but keeps its hit
/// count. A `Stall` is slept *here*, then reported, so call sites treat
/// any `Some(FpAction::Stall)` as "already stalled, continue".
pub fn fire(name: &str) -> Option<FpAction> {
    fire_entry(|entry| entry == name)
}

/// Like [`fire`], but the site also offers a `scope` (e.g. the log
/// directory name): an entry armed as `name@scope` matches only that
/// site instance, an entry armed as the bare `name` matches every
/// instance. Scoped arming lets concurrently running tests inject into
/// *their* cursor without tripping anyone else's.
pub fn fire_scoped(name: &str, scope: &str) -> Option<FpAction> {
    fire_entry(|entry| {
        entry == name
            || entry
                .strip_prefix(name)
                .and_then(|rest| rest.strip_prefix('@'))
                .is_some_and(|s| s == scope)
    })
}

fn fire_entry(matches: impl Fn(&str) -> bool) -> Option<FpAction> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let action = {
        let mut entries = registry().lock().unwrap();
        let entry = entries.iter_mut().find(|e| matches(&e.name))?;
        match entry.budget {
            Some(0) => return None,
            Some(ref mut left) => *left -= 1,
            None => {}
        }
        entry.hits += 1;
        entry.action
    };
    if let FpAction::Stall(pause) = action {
        std::thread::sleep(pause);
    }
    Some(action)
}

/// Convenience for I/O sites: `Err` fires as an injected `io::Error`
/// naming the point, a stall just delays. Call as
/// `failpoint::check("name")?;`.
pub fn check(name: &str) -> std::io::Result<()> {
    to_io(name, fire(name))
}

/// [`check`] with a site scope (see [`fire_scoped`]).
pub fn check_scoped(name: &str, scope: &str) -> std::io::Result<()> {
    to_io(name, fire_scoped(name, scope))
}

fn to_io(name: &str, fired: Option<FpAction>) -> std::io::Result<()> {
    match fired {
        Some(FpAction::Err) => Err(std::io::Error::other(format!(
            "failpoint {name} injected an error"
        ))),
        Some(FpAction::Stall(_)) | None => Ok(()),
    }
}

/// Times the failpoint `name` has fired (for test assertions). Zero for
/// unknown names.
pub fn hits(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap()
        .iter()
        .find(|e| e.name == name)
        .map_or(0, |e| e.hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so these tests use distinct point
    // names and never rely on global emptiness.

    #[test]
    fn disarmed_points_fire_nothing() {
        assert_eq!(fire("fp-test-never-armed"), None);
        assert!(check("fp-test-never-armed").is_ok());
        assert_eq!(hits("fp-test-never-armed"), 0);
    }

    #[test]
    fn err_budget_counts_down_and_hits_count_up() {
        arm("fp-test-budget=err:2").unwrap();
        assert_eq!(fire("fp-test-budget"), Some(FpAction::Err));
        assert!(check("fp-test-budget").is_err());
        assert_eq!(fire("fp-test-budget"), None, "budget of 2 is spent");
        assert_eq!(hits("fp-test-budget"), 2);
    }

    #[test]
    fn stall_sleeps_then_continues() {
        arm("fp-test-stall=stall:20:1").unwrap();
        let start = std::time::Instant::now();
        assert!(check("fp-test-stall").is_ok(), "a stall is not an error");
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(hits("fp-test-stall"), 1);
    }

    #[test]
    fn rearming_replaces_only_the_named_point() {
        arm("fp-test-a=err:1, fp-test-b=err").unwrap();
        assert_eq!(fire("fp-test-a"), Some(FpAction::Err));
        arm("fp-test-a=err:1").unwrap(); // fresh budget
        assert_eq!(fire("fp-test-a"), Some(FpAction::Err));
        assert_eq!(fire("fp-test-b"), Some(FpAction::Err), "b untouched");
    }

    #[test]
    fn scoped_entries_hit_only_their_scope() {
        arm("fp-test-scoped@dir-1=err").unwrap();
        assert_eq!(fire_scoped("fp-test-scoped", "dir-2"), None);
        assert_eq!(fire("fp-test-scoped"), None, "bare fire ignores scoped");
        assert_eq!(fire_scoped("fp-test-scoped", "dir-1"), Some(FpAction::Err));
        // A bare entry matches every scope.
        arm("fp-test-global=err").unwrap();
        assert_eq!(
            fire_scoped("fp-test-global", "anywhere"),
            Some(FpAction::Err)
        );
    }

    #[test]
    fn malformed_specs_are_rejected_whole() {
        assert!(arm("no-equals").is_err());
        assert!(arm("x=warp").is_err());
        assert!(arm("x=stall").is_err());
        assert!(arm("x=err:many").is_err());
        assert!(arm("x=err:1:2").is_err());
        assert!(arm("=err").is_err());
        assert!(arm("").is_ok(), "an empty spec arms nothing");
    }
}
