//! Background checkpointing: periodic consistent snapshots that bound
//! recovery time, SiloR-style.
//!
//! Without checkpoints, recovery replays every log segment since the last
//! offline compaction, so a long-lived instance pays a restart cost
//! proportional to its whole commit history. The [`Checkpointer`] removes
//! that bound: it periodically writes an epoch-stamped snapshot of every
//! table *concurrently with live transactions* and then truncates the log
//! segments the snapshot covers, so recovery reads the newest checkpoint
//! plus only the log tail written since it.
//!
//! # Protocol
//!
//! 1. **Stable epoch** — the checkpoint reads `E_ckpt` through
//!    [`reactdb_txn::Coordinator::stable_epoch`] and drains in-flight
//!    commits via the WAL's commit gate ([`Wal::stable_snapshot_epoch`]).
//!    After the drain, every commit with TID epoch `<= E_ckpt` is fully
//!    installed and no future commit can carry such an epoch.
//! 2. **Fuzzy walk** — each table is traversed in key-range chunks under
//!    short read-sections (`Table::snapshot_chunk`); every visible row is
//!    captured with a version-stable read and written to the data file with
//!    its commit TID. No stop-the-world: commits proceed during the walk,
//!    so captured rows may carry epochs beyond `E_ckpt` (up to the *cover
//!    epoch*, the maximum captured TID epoch).
//! 3. **Completion gate** — the checkpoint is complete only once the WAL's
//!    durable epoch covers the cover epoch (`Wal::wait_durable`): every row
//!    the snapshot captured then belongs to a durable transaction, so
//!    loading the checkpoint can never resurrect work a crash would have
//!    lost.
//! 4. **Manifest commit** — the data file is renamed into place and the
//!    manifest is atomically replaced (write temp, fsync, rename, fsync
//!    dir). The manifest rename is the commit point: a crash at any earlier
//!    step leaves the previous checkpoint in effect.
//! 5. **Rotation and truncation** — live writers rotate onto a fresh
//!    segment generation ([`Wal::rotate_segments`]), then every non-live
//!    segment whose records are entirely `<= E_ckpt` is deleted
//!    ([`Wal::truncate_stale_segments`], sharing the retention policy of
//!    offline compaction). A crash between manifest commit and truncation
//!    only causes re-replay of covered records, which TID-aware replay
//!    makes a no-op.
//!
//! # Recovery contract
//!
//! `recover_and_compact` loads the newest complete checkpoint and then
//! replays only log frames with epochs in `(E_ckpt, durable]`. Consistency
//! of the fuzzy capture is restored by TID-aware replay: a log record older
//! than the captured row it addresses is skipped, a newer one wins.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use reactdb_common::{ContainerId, ReactorId};
use reactdb_storage::{Table, TidWord};
use reactdb_txn::{EpochManager, RedoRecord};

use crate::{codec, sync_dir, Wal};

/// File name of the checkpoint manifest.
pub const MANIFEST_FILE: &str = "checkpoint-manifest";
/// Magic bytes opening the manifest.
const MANIFEST_MAGIC: [u8; 8] = *b"RDBCKMF1";
/// Poll period of the checkpoint daemon (it fires on epoch thresholds, not
/// on this period).
const DAEMON_POLL: Duration = Duration::from_millis(2);

/// One table the checkpointer captures: where it lives in the deployment
/// plus the storage handle to walk.
#[derive(Debug, Clone)]
pub struct CheckpointTable {
    /// Container hosting the table (recorded in the captured rows so they
    /// replay like redo records).
    pub container: ContainerId,
    /// Reactor whose state the relation belongs to.
    pub reactor: ReactorId,
    /// Relation name within the reactor.
    pub relation: String,
    /// The table to walk.
    pub table: Arc<Table>,
}

/// What one completed checkpoint did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointOutcome {
    /// Sequence number of the checkpoint.
    pub seq: u64,
    /// Stable epoch the snapshot began at (`E_ckpt`): every commit with a
    /// TID epoch `<=` this is fully contained in the checkpoint.
    pub epoch: u64,
    /// Highest TID epoch among captured rows; the checkpoint completed only
    /// after the durable epoch covered it.
    pub cover_epoch: u64,
    /// Rows captured.
    pub rows: u64,
    /// Bytes of the checkpoint data file.
    pub bytes: u64,
    /// Log bytes reclaimed by the truncation that followed.
    pub truncated_bytes: u64,
    /// Log segments deleted by the truncation that followed.
    pub truncated_segments: u64,
}

/// The manifest of the newest complete checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Manifest {
    seq: u64,
    epoch: u64,
    cover_epoch: u64,
    rows: u64,
    bytes: u64,
    file: String,
}

/// A checkpoint as loaded by recovery.
#[derive(Debug)]
pub struct RecoveredCheckpoint {
    /// Sequence number of the checkpoint.
    pub seq: u64,
    /// Stable epoch stamp (`E_ckpt`): commits with TID epochs `<=` this are
    /// fully covered, so recovery skips their log frames.
    pub epoch: u64,
    /// Highest TID epoch among the rows (durability of the capture was
    /// gated on this).
    pub cover_epoch: u64,
    /// The captured rows, each with the commit TID its image corresponds
    /// to. Replayed before the log tail via TID-aware replay.
    pub rows: Vec<(TidWord, RedoRecord)>,
    /// Size of the data file read.
    pub bytes: u64,
    /// Data file name (relative to the log dir), used to protect it from
    /// orphan cleanup.
    pub file: String,
}

fn data_file_name(seq: u64) -> String {
    format!("ckpt-{seq:06}.dat")
}

/// Serializes and atomically installs the manifest (write temp, fsync,
/// rename, fsync dir) — the checkpoint's commit point.
fn write_manifest(dir: &Path, manifest: &Manifest) -> io::Result<()> {
    let mut payload = Vec::with_capacity(64);
    payload.extend_from_slice(&manifest.seq.to_le_bytes());
    payload.extend_from_slice(&manifest.epoch.to_le_bytes());
    payload.extend_from_slice(&manifest.cover_epoch.to_le_bytes());
    payload.extend_from_slice(&manifest.rows.to_le_bytes());
    payload.extend_from_slice(&manifest.bytes.to_le_bytes());
    let name = manifest.file.as_bytes();
    payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
    payload.extend_from_slice(name);

    let mut bytes = Vec::with_capacity(payload.len() + 12);
    bytes.extend_from_slice(&MANIFEST_MAGIC);
    bytes.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = dir.join("checkpoint-manifest.tmp");
    fs::write(&tmp, &bytes)?;
    let file = fs::File::open(&tmp)?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    sync_dir(dir)
}

/// Reads the manifest; `None` when absent or corrupt (both mean "no
/// complete checkpoint is installed").
fn read_manifest(dir: &Path) -> io::Result<Option<Manifest>> {
    let bytes = match fs::read(dir.join(MANIFEST_FILE)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < 12 || bytes[..8] != MANIFEST_MAGIC {
        return Ok(None);
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("len 4"));
    let payload = &bytes[12..];
    if codec::crc32(payload) != crc || payload.len() < 42 {
        return Ok(None);
    }
    let u64_at = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().expect("len 8"));
    let name_len = u16::from_le_bytes(payload[40..42].try_into().expect("len 2")) as usize;
    let Some(name) = payload.get(42..42 + name_len) else {
        return Ok(None);
    };
    let Ok(file) = String::from_utf8(name.to_vec()) else {
        return Ok(None);
    };
    Ok(Some(Manifest {
        seq: u64_at(0),
        epoch: u64_at(8),
        cover_epoch: u64_at(16),
        rows: u64_at(24),
        bytes: u64_at(32),
        file,
    }))
}

/// Loads the newest complete checkpoint for recovery. Returns `None` — and
/// recovery falls back to the full log — when no manifest is installed, the
/// manifest or data file is corrupt or torn, the stamps disagree, or the
/// durable epoch does not cover the fuzzy capture (possible only if the
/// durable-epoch marker itself was lost: the completion gate orders the
/// marker advance before the manifest commit).
pub(crate) fn load_checkpoint(
    dir: &Path,
    durable_epoch: u64,
) -> io::Result<Option<RecoveredCheckpoint>> {
    let Some(manifest) = read_manifest(dir)? else {
        return Ok(None);
    };
    if durable_epoch < manifest.cover_epoch {
        return Ok(None);
    }
    let data = match fs::read(dir.join(&manifest.file)) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let Some(scan) = codec::decode_checkpoint(&data) else {
        return Ok(None);
    };
    if scan.scan.truncated_tail || scan.seq != manifest.seq || scan.epoch != manifest.epoch {
        return Ok(None);
    }
    let mut rows = Vec::with_capacity(scan.scan.batches.len());
    for (tid, mut records) in scan.scan.batches {
        // One captured row per frame by construction.
        let Some(record) = records.pop() else {
            return Ok(None);
        };
        rows.push((tid, record));
    }
    if rows.len() as u64 != manifest.rows {
        return Ok(None);
    }
    Ok(Some(RecoveredCheckpoint {
        seq: manifest.seq,
        epoch: manifest.epoch,
        cover_epoch: manifest.cover_epoch,
        rows,
        bytes: data.len() as u64,
        file: manifest.file,
    }))
}

/// Recovery-time orphan cleanup. Unlike the post-checkpoint cleanup, this
/// keys the file to keep off the *manifest* alone — even when
/// [`load_checkpoint`] rejected the checkpoint (torn data file, stamp
/// mismatch, uncovered capture), the manifest-referenced data file may be
/// the only remaining copy of already-truncated history and must be
/// preserved as evidence, never deleted. When the manifest file exists but
/// does not parse, nothing is deleted at all: the reference is unknown, so
/// every data file is potential evidence.
pub(crate) fn clean_orphans_for_recovery(dir: &Path) -> io::Result<()> {
    let manifest = read_manifest(dir)?;
    if manifest.is_none() && dir.join(MANIFEST_FILE).exists() {
        return Ok(()); // corrupt manifest: preserve everything
    }
    clean_orphans(dir, manifest.as_ref().map(|m| m.file.as_str()))
}

/// Deletes checkpoint debris a crash may have left behind: data files not
/// referenced by the installed manifest (superseded or never committed) and
/// stale temp files. `keep` names the live data file.
pub(crate) fn clean_orphans(dir: &Path, keep: Option<&str>) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut removed = false;
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let orphan_data = name.starts_with("ckpt-") && name.ends_with(".dat") && Some(name) != keep;
        let stale_tmp = name == "ckpt.tmp" || name == "checkpoint-manifest.tmp";
        if orphan_data || stale_tmp {
            let _ = fs::remove_file(&path);
            removed = true;
        }
    }
    if removed {
        sync_dir(dir)?;
    }
    Ok(())
}

/// The background checkpointer of one database instance. Also serves
/// explicit `checkpoint_now` requests; executions are serialized, so the
/// daemon and manual calls never interleave.
pub struct Checkpointer {
    wal: Arc<Wal>,
    tables: Vec<CheckpointTable>,
    chunk_size: usize,
    /// Next checkpoint sequence number; consumed per attempt, success or
    /// not (see `run_once`).
    next_seq: Mutex<u64>,
    /// Serializes checkpoint executions (daemon vs. explicit calls).
    run_lock: Mutex<()>,
    stop: AtomicBool,
    daemon: Mutex<Option<JoinHandle<()>>>,
}

impl Checkpointer {
    /// Creates a checkpointer over the given tables. The next sequence
    /// number continues from the installed manifest, so checkpoint files
    /// never collide across instance lifetimes.
    pub fn new(
        wal: Arc<Wal>,
        tables: Vec<CheckpointTable>,
        chunk_size: usize,
    ) -> io::Result<Arc<Self>> {
        let next_seq = read_manifest(wal.dir())?.map(|m| m.seq + 1).unwrap_or(1);
        Ok(Arc::new(Self {
            wal,
            tables,
            chunk_size: chunk_size.max(1),
            next_seq: Mutex::new(next_seq),
            run_lock: Mutex::new(()),
            stop: AtomicBool::new(false),
            daemon: Mutex::new(None),
        }))
    }

    /// Takes one checkpoint now, returning what it did. On error the
    /// previous checkpoint (if any) remains in effect and the failure is
    /// counted in the WAL stats.
    pub fn checkpoint_now(&self) -> io::Result<CheckpointOutcome> {
        let result = self.run_once();
        if result.is_err() {
            self.wal.stats().record_checkpoint_failure();
        }
        result
    }

    fn run_once(&self) -> io::Result<CheckpointOutcome> {
        let _serial = self.run_lock.lock();
        // The sequence number is consumed even if this attempt fails: a
        // failure *after* the manifest commit (rotation or truncation)
        // must not lead a retry to reuse the seq and rename fresh data
        // over the installed checkpoint's file — the stamp mismatch would
        // invalidate the only checkpoint covering already-truncated
        // history. Gaps in the sequence are harmless.
        let seq = {
            let mut next_seq = self.next_seq.lock();
            let seq = *next_seq;
            *next_seq = seq + 1;
            seq
        };
        let dir = self.wal.dir().to_path_buf();

        // 1. Stable epoch: fence + drain (see module docs).
        let epoch = self.wal.stable_snapshot_epoch()?;

        // 2. Fuzzy walk: capture every table in chunks, appending one frame
        // per visible row to the temp data file.
        let tmp = dir.join("ckpt.tmp");
        let mut file = fs::File::create(&tmp)?;
        let mut header = Vec::with_capacity(24);
        codec::encode_checkpoint_header(&mut header, seq, epoch);
        file.write_all(&header)?;
        let mut bytes = header.len() as u64;
        let mut rows = 0u64;
        let mut cover_epoch = epoch;
        let mut buf = Vec::new();
        let obs = self.wal.observability();
        for entry in &self.tables {
            let mut cursor = None;
            loop {
                let chunk_started = obs.map(|_| std::time::Instant::now());
                let chunk = entry.table.snapshot_chunk(cursor.as_ref(), self.chunk_size);
                buf.clear();
                for (key, tid, image) in chunk.rows {
                    cover_epoch = cover_epoch.max(tid.epoch());
                    rows += 1;
                    codec::encode_batch(
                        &mut buf,
                        tid,
                        &[RedoRecord {
                            container: entry.container,
                            reactor: entry.reactor,
                            relation: entry.relation.clone(),
                            key,
                            payload: reactdb_txn::RedoPayload::Full(image),
                        }],
                    );
                }
                file.write_all(&buf)?;
                bytes += buf.len() as u64;
                if let (Some(m), Some(started)) = (obs, chunk_started) {
                    use reactdb_obs::{Phase, TraceKind};
                    let ns = m.record_elapsed(Phase::CheckpointChunk, usize::MAX, started);
                    m.trace(usize::MAX, 0, TraceKind::CheckpointChunk, ns);
                }
                match chunk.next {
                    Some(next) => cursor = Some(next),
                    None => break,
                }
            }
        }
        file.sync_data()?;
        drop(file);

        // 3. Completion gate: every captured row must be durable before the
        // checkpoint may be trusted — otherwise loading it could resurrect
        // a transaction the crash lost.
        self.wal.wait_durable(cover_epoch)?;

        // 4. Commit: data file into place, then the manifest (the commit
        // point), then retire the superseded checkpoint's data file.
        let data_name = data_file_name(seq);
        fs::rename(&tmp, dir.join(&data_name))?;
        sync_dir(&dir)?;
        write_manifest(
            &dir,
            &Manifest {
                seq,
                epoch,
                cover_epoch,
                rows,
                bytes,
                file: data_name.clone(),
            },
        )?;
        clean_orphans(&dir, Some(&data_name))?;

        // 5. Rotate live writers onto a fresh generation, then truncate
        // every segment the checkpoint fully covers.
        self.wal.rotate_segments()?;
        let (truncated_bytes, truncated_segments) = self.wal.truncate_stale_segments(epoch)?;

        self.wal.stats().record_checkpoint(bytes);
        Ok(CheckpointOutcome {
            seq,
            epoch,
            cover_epoch,
            rows,
            bytes,
            truncated_bytes,
            truncated_segments,
        })
    }

    /// Starts the background daemon: a checkpoint is taken whenever the
    /// global epoch has advanced `interval_epochs` beyond the last
    /// checkpoint's stamp. A zero interval means no daemon (explicit
    /// [`Checkpointer::checkpoint_now`] calls only).
    pub fn start_daemon(self: &Arc<Self>, interval_epochs: u64, epoch: Arc<EpochManager>) {
        if interval_epochs == 0 {
            return;
        }
        let ckpt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("reactdb-checkpoint".into())
            .spawn(move || {
                let mut last = epoch.current();
                while !ckpt.stop.load(Ordering::Acquire) {
                    std::thread::sleep(DAEMON_POLL);
                    let current = epoch.current();
                    if current < last.saturating_add(interval_epochs) {
                        continue;
                    }
                    // Errors leave the previous checkpoint in effect; back
                    // off a full interval so a persistently failing disk is
                    // not hammered.
                    match ckpt.checkpoint_now() {
                        Ok(outcome) => last = outcome.cover_epoch.max(current),
                        Err(_) => last = current,
                    }
                }
            })
            .expect("spawn checkpoint daemon");
        *self.daemon.lock() = Some(handle);
    }

    /// Stops the daemon and waits for any in-flight checkpoint to finish.
    /// Called by the engine before the WAL shuts down.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.daemon.lock().take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer")
            .field("tables", &self.tables.len())
            .field("chunk_size", &self.chunk_size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover_and_compact;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "reactdb-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_roundtrip_and_corruption_handling() {
        let dir = temp_dir("manifest");
        assert_eq!(read_manifest(&dir).unwrap(), None);
        let manifest = Manifest {
            seq: 4,
            epoch: 17,
            cover_epoch: 19,
            rows: 1234,
            bytes: 99_000,
            file: "ckpt-000004.dat".into(),
        };
        write_manifest(&dir, &manifest).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(manifest.clone()));
        // Corruption is detected and treated as "no checkpoint".
        let mut bytes = fs::read(dir.join(MANIFEST_FILE)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(dir.join(MANIFEST_FILE), &bytes).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), None);
        fs::write(dir.join(MANIFEST_FILE), b"short").unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incomplete_checkpoints_are_ignored_by_recovery_load() {
        let dir = temp_dir("incomplete");
        // No manifest: nothing to load, even with a data file present.
        fs::write(dir.join("ckpt-000001.dat"), b"whatever").unwrap();
        assert!(load_checkpoint(&dir, u64::MAX).unwrap().is_none());
        // Manifest referencing a missing file.
        let manifest = Manifest {
            seq: 2,
            epoch: 5,
            cover_epoch: 6,
            rows: 0,
            bytes: 0,
            file: "ckpt-000002.dat".into(),
        };
        write_manifest(&dir, &manifest).unwrap();
        assert!(load_checkpoint(&dir, u64::MAX).unwrap().is_none());
        // A valid empty data file loads...
        let mut data = Vec::new();
        codec::encode_checkpoint_header(&mut data, 2, 5);
        fs::write(dir.join("ckpt-000002.dat"), &data).unwrap();
        let loaded = load_checkpoint(&dir, u64::MAX).unwrap().expect("complete");
        assert_eq!(loaded.epoch, 5);
        assert!(loaded.rows.is_empty());
        // ...but not when the durable marker fails to cover the capture.
        assert!(load_checkpoint(&dir, 5).unwrap().is_none());
        // A data file whose stamp disagrees with the manifest is rejected.
        let mut wrong = Vec::new();
        codec::encode_checkpoint_header(&mut wrong, 2, 4);
        fs::write(dir.join("ckpt-000002.dat"), &wrong).unwrap();
        assert!(load_checkpoint(&dir, u64::MAX).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_covered_segments_and_bounds_recovery_to_the_tail() {
        use reactdb_common::{DurabilityConfig, DurabilityMode, Key, Value};
        use reactdb_storage::{ColumnType, Schema, Tuple};

        let dir = temp_dir("e2e");
        let config = DurabilityConfig {
            mode: DurabilityMode::EpochSync,
            log_dir: Some(dir.to_string_lossy().into_owned()),
            group_commit_interval_ms: 0,
            ..DurabilityConfig::default()
        };
        let epoch = Arc::new(EpochManager::new());
        let wal = Wal::open(&config, 1, Arc::clone(&epoch)).unwrap().unwrap();
        let schema = Schema::of(
            &[("id", ColumnType::Int), ("balance", ColumnType::Float)],
            &["id"],
        );
        let table = Arc::new(Table::new("savings", schema.clone()));
        let make_record = |key: i64, value: f64| RedoRecord {
            container: ContainerId(0),
            reactor: ReactorId(0),
            relation: "savings".into(),
            key: Key::Int(key),
            payload: reactdb_txn::RedoPayload::Full(Tuple::of([
                Value::Int(key),
                Value::Float(value),
            ])),
        };
        let mut seq = 0u64;
        let mut commit = |key: i64, value: f64| {
            seq += 1;
            let tid = TidWord::committed(epoch.current(), seq);
            let record = make_record(key, value);
            use reactdb_txn::LogSink;
            wal.writer(0).log_commit(tid, std::slice::from_ref(&record));
            table.replay(&record.key, record.image(), tid);
        };

        // A multi-epoch history: 60 commits over several synced epochs.
        for i in 0..60i64 {
            commit(i % 20, i as f64);
            if i % 10 == 9 {
                epoch.advance();
                wal.sync().unwrap();
            }
        }
        let logged_before = wal.stats().bytes_logged();
        assert!(logged_before > 0);

        let ckpt = Checkpointer::new(
            Arc::clone(&wal),
            vec![CheckpointTable {
                container: ContainerId(0),
                reactor: ReactorId(0),
                relation: "savings".into(),
                table: Arc::clone(&table),
            }],
            7,
        )
        .unwrap();
        let outcome = ckpt.checkpoint_now().unwrap();
        assert_eq!(outcome.seq, 1);
        assert_eq!(outcome.rows, 20, "20 distinct keys are visible");
        assert!(outcome.cover_epoch >= outcome.epoch);
        assert!(
            outcome.truncated_segments >= 1,
            "the rotated-out history segment is entirely covered"
        );
        assert!(outcome.truncated_bytes > 0);
        assert_eq!(wal.stats().checkpoints_taken(), 1);
        assert_eq!(wal.stats().log_truncated_bytes(), outcome.truncated_bytes);

        // Tail: three more commits beyond the checkpoint, synced.
        for i in 0..3i64 {
            commit(100 + i, 7.0);
        }
        epoch.advance();
        wal.sync().unwrap();
        drop(wal); // crash

        let recovered = recover_and_compact(&dir, DurabilityMode::EpochSync).unwrap();
        let loaded = recovered.checkpoint.as_ref().expect("checkpoint installed");
        assert_eq!(loaded.rows.len(), 20);
        assert_eq!(loaded.epoch, outcome.epoch);
        assert_eq!(
            recovered.batches.len(),
            3,
            "only the post-checkpoint tail is replayed"
        );
        assert!(
            recovered.log_bytes_scanned < logged_before,
            "truncation keeps recovery from re-reading the full history"
        );

        // Replaying checkpoint + tail reproduces the pre-crash state.
        let replayed = Table::new("savings", schema);
        for (tid, record) in &loaded.rows {
            replayed.replay(&record.key, record.image(), *tid);
        }
        for (tid, records) in &recovered.batches {
            for record in records {
                replayed.replay(&record.key, record.image(), *tid);
            }
        }
        assert_eq!(replayed.visible_len(), table.visible_len());
        for (key, record) in table.scan() {
            let got = replayed.get(&key).expect("key recovered");
            assert_eq!(got.read_unguarded(), record.read_unguarded(), "{key:?}");
            assert_eq!(got.tid().version(), record.tid().version());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_cleanup_preserves_rejected_checkpoint_evidence() {
        let dir = temp_dir("evidence");
        // Manifest referencing a torn data file: load rejects it, but the
        // file may be the only copy of truncated history — cleanup must
        // keep it (and still remove genuine debris).
        write_manifest(
            &dir,
            &Manifest {
                seq: 3,
                epoch: 8,
                cover_epoch: 9,
                rows: 10,
                bytes: 4,
                file: "ckpt-000003.dat".into(),
            },
        )
        .unwrap();
        fs::write(dir.join("ckpt-000003.dat"), b"torn").unwrap();
        fs::write(dir.join("ckpt-000001.dat"), b"superseded").unwrap();
        fs::write(dir.join("ckpt.tmp"), b"debris").unwrap();
        assert!(load_checkpoint(&dir, u64::MAX).unwrap().is_none());
        clean_orphans_for_recovery(&dir).unwrap();
        assert!(
            dir.join("ckpt-000003.dat").exists(),
            "manifest-referenced file is evidence even when rejected"
        );
        assert!(!dir.join("ckpt-000001.dat").exists());
        assert!(!dir.join("ckpt.tmp").exists());
        // Corrupt manifest: the reference is unknown, so nothing at all is
        // deleted.
        fs::write(dir.join(MANIFEST_FILE), b"garbage").unwrap();
        fs::write(dir.join("ckpt-000001.dat"), b"maybe evidence").unwrap();
        clean_orphans_for_recovery(&dir).unwrap();
        assert!(dir.join("ckpt-000003.dat").exists());
        assert!(dir.join("ckpt-000001.dat").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_sequence_is_consumed_even_by_failed_attempts() {
        use reactdb_common::{DurabilityConfig, DurabilityMode};
        let dir = temp_dir("seq-consume");
        let config = DurabilityConfig {
            mode: DurabilityMode::EpochSync,
            log_dir: Some(dir.to_string_lossy().into_owned()),
            group_commit_interval_ms: 0,
            ..DurabilityConfig::default()
        };
        let epoch = Arc::new(EpochManager::new());
        let wal = Wal::open(&config, 1, Arc::clone(&epoch)).unwrap().unwrap();
        let ckpt = Checkpointer::new(Arc::clone(&wal), Vec::new(), 4).unwrap();
        let first = ckpt.checkpoint_now().unwrap();
        assert_eq!(first.seq, 1);
        // Retire the WAL: the next attempt fails mid-protocol...
        wal.shutdown(true);
        assert!(ckpt.checkpoint_now().is_err());
        assert_eq!(wal.stats().checkpoint_failures(), 1);
        // ...and a later attempt must NOT reuse the failed attempt's seq —
        // a retry that renamed fresh data over an installed checkpoint's
        // file would invalidate it via the stamp mismatch.
        assert_eq!(*ckpt.next_seq.lock(), 3, "seq 2 was consumed by failure");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_cleanup_spares_the_live_data_file() {
        let dir = temp_dir("orphans");
        fs::write(dir.join("ckpt-000001.dat"), b"old").unwrap();
        fs::write(dir.join("ckpt-000002.dat"), b"live").unwrap();
        fs::write(dir.join("ckpt.tmp"), b"torn").unwrap();
        fs::write(dir.join("checkpoint-manifest.tmp"), b"torn").unwrap();
        fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
        clean_orphans(&dir, Some("ckpt-000002.dat")).unwrap();
        assert!(!dir.join("ckpt-000001.dat").exists());
        assert!(dir.join("ckpt-000002.dat").exists());
        assert!(!dir.join("ckpt.tmp").exists());
        assert!(!dir.join("checkpoint-manifest.tmp").exists());
        assert!(dir.join("unrelated.txt").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
