//! Background checkpointing: periodic consistent snapshots that bound
//! recovery time, SiloR-style — captured in parallel and, optionally,
//! incrementally.
//!
//! Without checkpoints, recovery replays every log segment since the last
//! offline compaction, so a long-lived instance pays a restart cost
//! proportional to its whole commit history. The [`Checkpointer`] removes
//! that bound: it periodically writes an epoch-stamped snapshot of every
//! table *concurrently with live transactions* and then truncates the log
//! segments the snapshot covers, so recovery reads the newest checkpoint
//! plus only the log tail written since it.
//!
//! # Protocol
//!
//! 1. **Stable epoch** — the checkpoint reads `E_ckpt` through
//!    [`reactdb_txn::Coordinator::stable_epoch`] and drains in-flight
//!    commits via the WAL's commit gate ([`Wal::stable_snapshot_epoch`]).
//!    After the drain, every commit with TID epoch `<= E_ckpt` is fully
//!    installed and no future commit can carry such an epoch.
//! 2. **Parallel fuzzy walk** — the tables are partitioned round-robin
//!    across a pool of writer threads; each thread traverses its tables in
//!    key-range chunks under short read-sections (`Table::snapshot_chunk`),
//!    streaming every visible row with a version-stable read into its own
//!    checksummed part file (`ckpt-SSSSSS-pNN.dat`, same `RDBCKPT1` frame
//!    format, header additionally stamped with the part index). No
//!    stop-the-world: commits proceed during the walk, so captured rows may
//!    carry epochs beyond `E_ckpt` (up to the *cover epoch*, the maximum
//!    captured TID epoch across all parts).
//! 3. **Completion gate** — the checkpoint is complete only once the WAL's
//!    durable epoch covers the cover epoch (`Wal::wait_durable`): every row
//!    the snapshot captured then belongs to a durable transaction, so
//!    loading the checkpoint can never resurrect work a crash would have
//!    lost.
//! 4. **Manifest commit** — the part files are renamed into place and the
//!    manifest is atomically replaced (write temp, fsync, rename, fsync
//!    dir). The manifest commits the *entire part set* — and, with delta
//!    checkpoints, the entire layer chain — in one rename: a crash at any
//!    earlier step leaves the previous checkpoint in effect.
//! 5. **Rotation and truncation** — live writers rotate onto a fresh
//!    segment generation ([`Wal::rotate_segments`]), then every non-live
//!    segment whose records are entirely `<= E_ckpt` is deleted
//!    ([`Wal::truncate_stale_segments`], sharing the retention policy of
//!    offline compaction). A crash between manifest commit and truncation
//!    only causes re-replay of covered records, which TID-aware replay
//!    makes a no-op.
//!
//! # Delta checkpoints
//!
//! With `CheckpointConfig::full_every >= 2`, a checkpoint captures only the
//! rows *dirty since the last completed checkpoint* (tracked per log writer
//! by [`crate::LogWriter`], including deletes — a tombstone row ends the
//! key in the delta layer, or recovery would resurrect it from the full
//! root). The manifest then records a *chain* of layers: one full root
//! followed by up to `full_every - 1` deltas, after which the next capture
//! is full again and restarts the chain. Dirty-set clearing is
//! epoch-stamped: after a checkpoint whose stable epoch is `E`, only
//! entries last dirtied at `<= E` are dropped — the drain guarantees their
//! captured image is current, while keys re-dirtied during the fuzzy walk
//! carry a higher epoch and stay for the next delta. The first checkpoint
//! of every instance lifetime is forced full: commits replayed by recovery
//! predate dirty tracking, and a first-delta would lose them once the log
//! is truncated.
//!
//! # Recovery contract
//!
//! `recover_and_compact` loads the newest complete checkpoint chain — all
//! layers, root first, each layer's parts in index order — and then replays
//! only log frames with epochs in `(E_ckpt, durable]`, where `E_ckpt` is
//! the *newest* layer's stable epoch: a commit at epoch `e <= E_ckpt` to
//! key `k` either predates the chain root (captured there) or dirtied `k`
//! after some layer `i` and was captured by the first layer `> i` (the
//! clearing rule above). Consistency of the fuzzy capture is restored by
//! TID-aware replay: a log record older than the captured row it addresses
//! is skipped, a newer one wins.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use reactdb_common::{CheckpointConfig, ContainerId, Key, ReactorId};
use reactdb_storage::{Table, TidWord};
use reactdb_txn::{EpochManager, RedoPayload, RedoRecord};

use crate::{codec, sync_dir, Wal};

/// File name of the checkpoint manifest.
pub const MANIFEST_FILE: &str = "checkpoint-manifest";
/// Magic bytes opening the manifest (v2: layer chain of part sets).
const MANIFEST_MAGIC: [u8; 8] = *b"RDBCKMF2";
/// Poll period of the checkpoint daemon (it fires on epoch/byte thresholds,
/// not on this period).
const DAEMON_POLL: Duration = Duration::from_millis(2);

/// One table the checkpointer captures: where it lives in the deployment
/// plus the storage handle to walk.
#[derive(Debug, Clone)]
pub struct CheckpointTable {
    /// Container hosting the table (recorded in the captured rows so they
    /// replay like redo records).
    pub container: ContainerId,
    /// Reactor whose state the relation belongs to.
    pub reactor: ReactorId,
    /// Relation name within the reactor.
    pub relation: String,
    /// The table to walk.
    pub table: Arc<Table>,
}

/// What one completed checkpoint did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Sequence number of the checkpoint.
    pub seq: u64,
    /// Stable epoch the snapshot began at (`E_ckpt`): every commit with a
    /// TID epoch `<=` this is fully contained in the checkpoint chain.
    pub epoch: u64,
    /// Highest TID epoch among captured rows; the checkpoint completed only
    /// after the durable epoch covered it.
    pub cover_epoch: u64,
    /// Rows captured by this checkpoint (this layer only, not the chain).
    pub rows: u64,
    /// Bytes of the part files this checkpoint wrote.
    pub bytes: u64,
    /// Part files written (the parallel capture fan-out actually used).
    pub parts: u64,
    /// True when this was a delta capture (dirty rows only) rather than a
    /// full table walk.
    pub delta: bool,
    /// Log bytes reclaimed by the truncation that followed.
    pub truncated_bytes: u64,
    /// Log segments deleted by the truncation that followed.
    pub truncated_segments: u64,
}

/// One part file of a checkpoint layer, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Part {
    file: String,
    rows: u64,
    bytes: u64,
}

/// One checkpoint layer: a full root or a delta over the previous layers.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Layer {
    seq: u64,
    epoch: u64,
    cover_epoch: u64,
    delta: bool,
    parts: Vec<Part>,
}

/// The manifest of the newest complete checkpoint chain: a full root layer
/// followed by zero or more delta layers, committed as one unit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Manifest {
    layers: Vec<Layer>,
}

impl Manifest {
    /// The most recent layer (validation guarantees at least one).
    fn newest(&self) -> &Layer {
        self.layers.last().expect("manifest has at least one layer")
    }

    /// Highest cover epoch across the chain — the durability gate recovery
    /// must check before trusting any layer.
    fn cover_epoch(&self) -> u64 {
        self.layers
            .iter()
            .map(|layer| layer.cover_epoch)
            .max()
            .unwrap_or(0)
    }

    /// Every part file the chain references, in (layer, part) order.
    fn files(&self) -> Vec<String> {
        self.layers
            .iter()
            .flat_map(|layer| layer.parts.iter().map(|part| part.file.clone()))
            .collect()
    }
}

/// A checkpoint chain as loaded by recovery.
#[derive(Debug)]
pub struct RecoveredCheckpoint {
    /// Sequence number of the newest layer.
    pub seq: u64,
    /// Newest layer's stable epoch stamp (`E_ckpt`): commits with TID
    /// epochs `<=` this are fully covered by the chain, so recovery skips
    /// their log frames.
    pub epoch: u64,
    /// Highest TID epoch among the captured rows of any layer (durability
    /// of the capture was gated on this).
    pub cover_epoch: u64,
    /// The captured rows — root layer first, each layer's parts in index
    /// order — each with the commit TID its image corresponds to. Replayed
    /// before the log tail via TID-aware replay, which also reconciles a
    /// delta layer's newer image (or tombstone) against the root's.
    pub rows: Vec<(TidWord, RedoRecord)>,
    /// Total size of the part files read.
    pub bytes: u64,
    /// Layers in the chain (1 = a single full checkpoint).
    pub layers: u64,
    /// Part file names (relative to the log dir), used to protect them from
    /// orphan cleanup.
    pub files: Vec<String>,
}

fn part_file_name(seq: u64, part: u32) -> String {
    format!("ckpt-{seq:06}-p{part:02}.dat")
}

fn part_tmp_name(part: u32) -> String {
    format!("ckpt-p{part:02}.tmp")
}

/// Serializes and atomically installs the manifest (write temp, fsync,
/// rename, fsync dir) — the checkpoint's commit point.
fn write_manifest(dir: &Path, manifest: &Manifest) -> io::Result<()> {
    let mut payload = Vec::with_capacity(64 * manifest.layers.len());
    payload.extend_from_slice(&(manifest.layers.len() as u16).to_le_bytes());
    for layer in &manifest.layers {
        payload.extend_from_slice(&layer.seq.to_le_bytes());
        payload.extend_from_slice(&layer.epoch.to_le_bytes());
        payload.extend_from_slice(&layer.cover_epoch.to_le_bytes());
        payload.push(layer.delta as u8);
        payload.extend_from_slice(&(layer.parts.len() as u16).to_le_bytes());
        for part in &layer.parts {
            let name = part.file.as_bytes();
            payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
            payload.extend_from_slice(name);
            payload.extend_from_slice(&part.rows.to_le_bytes());
            payload.extend_from_slice(&part.bytes.to_le_bytes());
        }
    }

    let mut bytes = Vec::with_capacity(payload.len() + 12);
    bytes.extend_from_slice(&MANIFEST_MAGIC);
    bytes.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = dir.join("checkpoint-manifest.tmp");
    fs::write(&tmp, &bytes)?;
    let file = fs::File::open(&tmp)?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    sync_dir(dir)
}

/// Byte-cursor for manifest parsing; every accessor returns `None` past the
/// end, which the caller maps to "corrupt manifest".
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

fn parse_manifest(payload: &[u8]) -> Option<Manifest> {
    let mut r = Cursor {
        bytes: payload,
        pos: 0,
    };
    let layer_count = r.u16()? as usize;
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        let seq = r.u64()?;
        let epoch = r.u64()?;
        let cover_epoch = r.u64()?;
        let delta = match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let part_count = r.u16()? as usize;
        let mut parts = Vec::with_capacity(part_count);
        for _ in 0..part_count {
            let name_len = r.u16()? as usize;
            let file = String::from_utf8(r.take(name_len)?.to_vec()).ok()?;
            let rows = r.u64()?;
            let bytes = r.u64()?;
            parts.push(Part { file, rows, bytes });
        }
        layers.push(Layer {
            seq,
            epoch,
            cover_epoch,
            delta,
            parts,
        });
    }
    if r.pos != payload.len() || layers.is_empty() || layers[0].delta {
        return None;
    }
    // The chain must be internally consistent: seqs strictly increase
    // (every attempt consumes one) and stable epochs never regress.
    let ordered = layers
        .windows(2)
        .all(|pair| pair[1].seq > pair[0].seq && pair[1].epoch >= pair[0].epoch);
    if !ordered {
        return None;
    }
    Some(Manifest { layers })
}

/// Reads the manifest; `None` when absent or corrupt (both mean "no
/// complete checkpoint is installed").
fn read_manifest(dir: &Path) -> io::Result<Option<Manifest>> {
    let bytes = match fs::read(dir.join(MANIFEST_FILE)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < 12 || bytes[..8] != MANIFEST_MAGIC {
        return Ok(None);
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("len 4"));
    let payload = &bytes[12..];
    if codec::crc32(payload) != crc {
        return Ok(None);
    }
    Ok(parse_manifest(payload))
}

/// One decoded part file: its captured rows plus its on-disk byte size.
type DecodedPart = (Vec<(TidWord, RedoRecord)>, u64);

/// One part file's decoded rows, or `None` when the part is missing, torn,
/// or stamped inconsistently with the manifest.
fn decode_part(
    dir: &Path,
    layer: &Layer,
    part_idx: u32,
    part: &Part,
) -> io::Result<Option<DecodedPart>> {
    let data = match fs::read(dir.join(&part.file)) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let Some(scan) = codec::decode_checkpoint(&data) else {
        return Ok(None);
    };
    if scan.scan.truncated_tail
        || scan.seq != layer.seq
        || scan.epoch != layer.epoch
        || scan.part != part_idx
    {
        return Ok(None);
    }
    let mut rows = Vec::with_capacity(scan.scan.batches.len());
    for (tid, mut records) in scan.scan.batches {
        // One captured row per frame by construction.
        let Some(record) = records.pop() else {
            return Ok(None);
        };
        rows.push((tid, record));
    }
    if rows.len() as u64 != part.rows {
        return Ok(None);
    }
    Ok(Some((rows, data.len() as u64)))
}

/// Loads the newest complete checkpoint chain for recovery, decoding part
/// files across up to `workers` threads (the result is deterministic: parts
/// are reassembled in (layer, part) order regardless of the fan-out).
/// Returns `None` — and recovery falls back to the full log — when no
/// manifest is installed, the manifest or any part file is corrupt or torn,
/// the stamps disagree, or the durable epoch does not cover the fuzzy
/// capture (possible only if the durable-epoch marker itself was lost: the
/// completion gate orders the marker advance before the manifest commit).
///
/// Public beyond recovery because a replication follower boots the same
/// way: the primary ships its checkpoint files raw, and the follower loads
/// the staged chain with the shipped durable epoch before tailing the log.
pub fn load_checkpoint(
    dir: &Path,
    durable_epoch: u64,
    workers: usize,
) -> io::Result<Option<RecoveredCheckpoint>> {
    let Some(manifest) = read_manifest(dir)? else {
        return Ok(None);
    };
    if durable_epoch < manifest.cover_epoch() {
        return Ok(None);
    }
    // Flatten the chain into per-part work items, then stripe them across
    // the decode threads; slot `i` of the output is part `i` of the chain.
    let specs: Vec<(&Layer, u32, &Part)> = manifest
        .layers
        .iter()
        .flat_map(|layer| {
            layer
                .parts
                .iter()
                .enumerate()
                .map(move |(idx, part)| (layer, idx as u32, part))
        })
        .collect();
    let workers = workers.max(1).min(specs.len().max(1));
    let mut slots: Vec<Option<DecodedPart>> = Vec::new();
    slots.resize_with(specs.len(), || None);
    let decoded: Vec<Vec<(usize, io::Result<Option<DecodedPart>>)>> = std::thread::scope(|s| {
        let specs = &specs;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < specs.len() {
                        let (layer, idx, part) = specs[i];
                        out.push((i, decode_part(dir, layer, idx, part)));
                        i += workers;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("checkpoint part decoder panicked"))
            .collect()
    });
    for (i, result) in decoded.into_iter().flatten() {
        match result? {
            Some(part) => slots[i] = Some(part),
            // One bad part rejects the whole chain: a partially-applied
            // chain is not a consistent snapshot at any epoch.
            None => return Ok(None),
        }
    }
    let mut rows = Vec::new();
    let mut bytes = 0u64;
    for slot in slots {
        let (part_rows, part_bytes) = slot.expect("every slot filled or rejected");
        rows.extend(part_rows);
        bytes += part_bytes;
    }
    let newest = manifest.newest();
    Ok(Some(RecoveredCheckpoint {
        seq: newest.seq,
        epoch: newest.epoch,
        cover_epoch: manifest.cover_epoch(),
        rows,
        bytes,
        layers: manifest.layers.len() as u64,
        files: manifest.files(),
    }))
}

/// Recovery-time orphan cleanup. Unlike the post-checkpoint cleanup, this
/// keys the files to keep off the *manifest* alone — even when
/// [`load_checkpoint`] rejected the chain (torn part file, stamp mismatch,
/// uncovered capture), the manifest-referenced part files may be the only
/// remaining copy of already-truncated history and must be preserved as
/// evidence, never deleted. When the manifest file exists but does not
/// parse, nothing is deleted at all: the references are unknown, so every
/// part file is potential evidence.
pub(crate) fn clean_orphans_for_recovery(dir: &Path) -> io::Result<()> {
    let manifest = read_manifest(dir)?;
    if manifest.is_none() && dir.join(MANIFEST_FILE).exists() {
        return Ok(()); // corrupt manifest: preserve everything
    }
    let keep = manifest.as_ref().map(Manifest::files).unwrap_or_default();
    clean_orphans(dir, &keep)
}

/// Deletes checkpoint debris a crash may have left behind: part files not
/// referenced by the installed manifest (superseded or never committed) and
/// stale temp files. `keep` names the live chain's part files.
pub(crate) fn clean_orphans(dir: &Path, keep: &[String]) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut removed = false;
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let orphan_data =
            name.starts_with("ckpt-") && name.ends_with(".dat") && !keep.iter().any(|k| k == name);
        let stale_tmp = (name.starts_with("ckpt") && name.ends_with(".tmp"))
            || name == "checkpoint-manifest.tmp";
        if orphan_data || stale_tmp {
            let _ = fs::remove_file(&path);
            removed = true;
        }
    }
    if removed {
        sync_dir(dir)?;
    }
    Ok(())
}

/// One capture thread's work unit: a whole table (full checkpoint) or the
/// dirty keys of one table (delta checkpoint).
enum CaptureUnit<'a> {
    Full(&'a CheckpointTable),
    Dirty(&'a CheckpointTable, Vec<Key>),
}

/// What one part writer produced.
struct PartOutcome {
    rows: u64,
    bytes: u64,
    cover_epoch: u64,
}

/// The background checkpointer of one database instance. Also serves
/// explicit `checkpoint_now` requests; executions are serialized, so the
/// daemon and manual calls never interleave.
pub struct Checkpointer {
    wal: Arc<Wal>,
    tables: Vec<CheckpointTable>,
    config: CheckpointConfig,
    /// Next checkpoint sequence number; consumed per attempt, success or
    /// not (see `run_once`).
    next_seq: Mutex<u64>,
    /// The first checkpoint of an instance lifetime must be a full one:
    /// rows replayed by recovery predate dirty tracking, so a first-delta
    /// would lose them once the log is truncated.
    force_full: AtomicBool,
    /// Serializes checkpoint executions (daemon vs. explicit calls).
    run_lock: Mutex<()>,
    stop: AtomicBool,
    daemon: Mutex<Option<JoinHandle<()>>>,
}

impl Checkpointer {
    /// Creates a checkpointer over the given tables. The next sequence
    /// number continues from the installed manifest, so checkpoint files
    /// never collide across instance lifetimes. When the config enables
    /// delta checkpoints, dirty-key tracking is switched on in every log
    /// writer here — before any tracked commit can matter, since the first
    /// capture is forced full anyway.
    pub fn new(
        wal: Arc<Wal>,
        tables: Vec<CheckpointTable>,
        config: CheckpointConfig,
    ) -> io::Result<Arc<Self>> {
        let next_seq = read_manifest(wal.dir())?
            .map(|m| m.newest().seq + 1)
            .unwrap_or(1);
        if config.delta_checkpoints() {
            for writer in wal.writers() {
                writer.set_track_dirty(true);
            }
        }
        Ok(Arc::new(Self {
            wal,
            tables,
            config,
            next_seq: Mutex::new(next_seq),
            force_full: AtomicBool::new(true),
            run_lock: Mutex::new(()),
            stop: AtomicBool::new(false),
            daemon: Mutex::new(None),
        }))
    }

    /// Takes one checkpoint now, returning what it did. On error the
    /// previous checkpoint (if any) remains in effect and the failure is
    /// counted in the WAL stats.
    pub fn checkpoint_now(&self) -> io::Result<CheckpointReport> {
        let result = self.run_once();
        if result.is_err() {
            self.wal.stats().record_checkpoint_failure();
        }
        result
    }

    /// Writes part `part` of checkpoint `seq`: walks each assigned unit,
    /// appending one frame per captured row to the part's temp file, and
    /// fsyncs it. Rows captured for dirty keys may have moved on since the
    /// key was dirtied — the capture takes whatever image is current
    /// (version-stable), and the cover-epoch gate plus TID-aware replay
    /// absorb the skew exactly as for the fuzzy full walk.
    fn write_part(
        &self,
        dir: &Path,
        seq: u64,
        epoch: u64,
        part: u32,
        units: &[&CaptureUnit<'_>],
    ) -> io::Result<PartOutcome> {
        let obs = self.wal.observability();
        let part_started = obs.map(|_| std::time::Instant::now());
        let tmp = dir.join(part_tmp_name(part));
        let mut file = fs::File::create(&tmp)?;
        let mut header = Vec::with_capacity(28);
        codec::encode_checkpoint_header(&mut header, seq, epoch, part);
        file.write_all(&header)?;
        let mut bytes = header.len() as u64;
        let mut rows = 0u64;
        let mut cover_epoch = epoch;
        let mut buf = Vec::new();
        let chunk_size = self.config.chunk_size.max(1);
        let mut flush_chunk = |buf: &mut Vec<u8>,
                               file: &mut fs::File,
                               started: Option<std::time::Instant>|
         -> io::Result<()> {
            file.write_all(buf)?;
            bytes += buf.len() as u64;
            buf.clear();
            if let (Some(m), Some(started)) = (obs, started) {
                use reactdb_obs::{Phase, TraceKind};
                let ns = m.record_elapsed(Phase::CheckpointChunk, usize::MAX, started);
                m.trace(usize::MAX, 0, TraceKind::CheckpointChunk, ns);
            }
            Ok(())
        };
        for unit in units {
            match unit {
                CaptureUnit::Full(entry) => {
                    let mut cursor = None;
                    loop {
                        let chunk_started = obs.map(|_| std::time::Instant::now());
                        let chunk = entry.table.snapshot_chunk(cursor.as_ref(), chunk_size);
                        for (key, tid, image) in chunk.rows {
                            cover_epoch = cover_epoch.max(tid.epoch());
                            rows += 1;
                            codec::encode_batch(
                                &mut buf,
                                tid,
                                &[RedoRecord {
                                    container: entry.container,
                                    reactor: entry.reactor,
                                    relation: entry.relation.clone(),
                                    key,
                                    payload: RedoPayload::Full(image),
                                }],
                            );
                        }
                        flush_chunk(&mut buf, &mut file, chunk_started)?;
                        match chunk.next {
                            Some(next) => cursor = Some(next),
                            None => break,
                        }
                    }
                }
                CaptureUnit::Dirty(entry, keys) => {
                    for keys in keys.chunks(chunk_size) {
                        let chunk_started = obs.map(|_| std::time::Instant::now());
                        for key in keys {
                            let Some(slot) = entry.table.get(key) else {
                                continue;
                            };
                            let (tid, image) = slot.read_stable();
                            if tid.version() == 0 {
                                continue; // provisional slot, never committed
                            }
                            // A deleted dirty key is captured as a
                            // tombstone: the delta layer must end the key,
                            // or recovery would resurrect it from the
                            // chain's full root.
                            let payload = if tid.is_absent() {
                                RedoPayload::Delete
                            } else {
                                RedoPayload::Full(image)
                            };
                            cover_epoch = cover_epoch.max(tid.epoch());
                            rows += 1;
                            codec::encode_batch(
                                &mut buf,
                                tid,
                                &[RedoRecord {
                                    container: entry.container,
                                    reactor: entry.reactor,
                                    relation: entry.relation.clone(),
                                    key: key.clone(),
                                    payload,
                                }],
                            );
                        }
                        flush_chunk(&mut buf, &mut file, chunk_started)?;
                    }
                }
            }
        }
        file.sync_data()?;
        drop(file);
        if let (Some(m), Some(started)) = (obs, part_started) {
            use reactdb_obs::Phase;
            m.record_elapsed(Phase::CkptPartWrite, usize::MAX, started);
        }
        Ok(PartOutcome {
            rows,
            bytes,
            cover_epoch,
        })
    }

    fn run_once(&self) -> io::Result<CheckpointReport> {
        let _serial = self.run_lock.lock();
        // The sequence number is consumed even if this attempt fails: a
        // failure *after* the manifest commit (rotation or truncation)
        // must not lead a retry to reuse the seq and rename fresh data
        // over the installed checkpoint's files — the stamp mismatch would
        // invalidate the only checkpoint covering already-truncated
        // history. Gaps in the sequence are harmless.
        let seq = {
            let mut next_seq = self.next_seq.lock();
            let seq = *next_seq;
            *next_seq = seq + 1;
            seq
        };
        let dir = self.wal.dir().to_path_buf();

        // Delta or full? Delta needs an installed chain to layer onto, a
        // chain shorter than `full_every`, and at least one prior full
        // capture this instance lifetime (see `force_full`).
        let prev = read_manifest(&dir)?;
        let delta = self.config.delta_checkpoints()
            && !self.force_full.load(Ordering::Acquire)
            && prev
                .as_ref()
                .is_some_and(|m| (m.layers.len() as u64) < self.config.full_every);

        // 1. Stable epoch: fence + drain (see module docs). For a delta,
        // the dirty sets are snapshotted *after* the drain, so every commit
        // at `<= epoch` has already marked its keys.
        let epoch = self.wal.stable_snapshot_epoch()?;

        // 2. Build the capture units and partition them round-robin across
        // the writer pool.
        let units: Vec<CaptureUnit<'_>> = if delta {
            let mut dirty: HashMap<(ReactorId, String), HashMap<Key, u64>> = HashMap::new();
            for writer in self.wal.writers() {
                for (table, keys) in writer.dirty_snapshot() {
                    let merged = dirty.entry(table).or_default();
                    for (key, last) in keys {
                        let entry = merged.entry(key).or_insert(0);
                        *entry = (*entry).max(last);
                    }
                }
            }
            self.tables
                .iter()
                .filter_map(|entry| {
                    let keys = dirty.remove(&(entry.reactor, entry.relation.clone()))?;
                    let mut keys: Vec<Key> = keys.into_keys().collect();
                    keys.sort();
                    Some(CaptureUnit::Dirty(entry, keys))
                })
                .collect()
        } else {
            self.tables.iter().map(CaptureUnit::Full).collect()
        };
        let configured = if self.config.workers > 0 {
            self.config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let workers = configured.min(units.len());
        let mut partitions: Vec<Vec<&CaptureUnit<'_>>> = vec![Vec::new(); workers];
        for (i, unit) in units.iter().enumerate() {
            partitions[i % workers.max(1)].push(unit);
        }

        // 3. Parallel fuzzy walk: each worker streams its units into its
        // own part file. An empty delta (no dirty keys) writes no parts and
        // still commits a layer, advancing the chain's epoch bound.
        let outcomes: Vec<io::Result<PartOutcome>> = std::thread::scope(|s| {
            let handles: Vec<_> = partitions
                .iter()
                .enumerate()
                .map(|(w, units)| {
                    let dir = &dir;
                    s.spawn(move || self.write_part(dir, seq, epoch, w as u32, units))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("checkpoint part writer panicked"))
                .collect()
        });
        let mut rows = 0u64;
        let mut bytes = 0u64;
        let mut cover_epoch = epoch;
        let mut parts = Vec::with_capacity(workers);
        for (w, outcome) in outcomes.into_iter().enumerate() {
            let outcome = outcome?;
            rows += outcome.rows;
            cover_epoch = cover_epoch.max(outcome.cover_epoch);
            bytes += outcome.bytes;
            parts.push(Part {
                file: part_file_name(seq, w as u32),
                rows: outcome.rows,
                bytes: outcome.bytes,
            });
        }

        // 4. Completion gate: every captured row must be durable before the
        // checkpoint may be trusted — otherwise loading it could resurrect
        // a transaction the crash lost.
        self.wal.wait_durable(cover_epoch)?;

        // 5. Commit: part files into place, then the manifest (the commit
        // point — it references the whole chain, so one rename commits the
        // new layer and everything it depends on), then retire superseded
        // files.
        for w in 0..workers {
            fs::rename(
                dir.join(part_tmp_name(w as u32)),
                dir.join(part_file_name(seq, w as u32)),
            )?;
        }
        sync_dir(&dir)?;
        let layer = Layer {
            seq,
            epoch,
            cover_epoch,
            delta,
            parts,
        };
        let manifest = if delta {
            let mut layers = prev.expect("delta requires an installed chain").layers;
            layers.push(layer);
            Manifest { layers }
        } else {
            Manifest {
                layers: vec![layer],
            }
        };
        write_manifest(&dir, &manifest)?;
        clean_orphans(&dir, &manifest.files())?;

        // 6. Rotate live writers onto a fresh generation, then truncate
        // every segment the checkpoint fully covers.
        self.wal.rotate_segments()?;
        let (truncated_bytes, truncated_segments) = self.wal.truncate_stale_segments(epoch)?;

        // 7. Retire the captured dirty entries: only keys last dirtied at
        // `<= epoch` — the drain guarantees those images were current when
        // walked, while keys re-dirtied during the capture stay for the
        // next delta. Running this only after full success means a failed
        // attempt never loses dirty state.
        if self.config.delta_checkpoints() {
            for writer in self.wal.writers() {
                writer.clear_dirty_through(epoch);
            }
        }
        if !delta {
            self.force_full.store(false, Ordering::Release);
        }

        self.wal.stats().record_checkpoint(bytes, delta);
        Ok(CheckpointReport {
            seq,
            epoch,
            cover_epoch,
            rows,
            bytes,
            parts: workers as u64,
            delta,
            truncated_bytes,
            truncated_segments,
        })
    }

    /// Starts the background daemon. Two independent triggers arm it: the
    /// global epoch advancing `interval_epochs` beyond the last
    /// checkpoint's stamp, and `max_log_bytes` of redo having been logged
    /// since the last checkpoint (so log-heavy workloads checkpoint by
    /// volume, not wall clock). With both knobs zero there is no daemon
    /// (explicit [`Checkpointer::checkpoint_now`] calls only).
    pub fn start_daemon(self: &Arc<Self>, epoch: Arc<EpochManager>) {
        let interval = self.config.interval_epochs;
        let max_bytes = self.config.max_log_bytes;
        if interval == 0 && max_bytes == 0 {
            return;
        }
        let ckpt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("reactdb-checkpoint".into())
            .spawn(move || {
                let mut last_epoch = epoch.current();
                let mut last_bytes = ckpt.wal.stats().bytes_logged();
                while !ckpt.stop.load(Ordering::Acquire) {
                    std::thread::sleep(DAEMON_POLL);
                    let current = epoch.current();
                    let logged = ckpt.wal.stats().bytes_logged();
                    let epoch_due = interval > 0 && current >= last_epoch.saturating_add(interval);
                    let bytes_due = max_bytes > 0 && logged.saturating_sub(last_bytes) >= max_bytes;
                    if !epoch_due && !bytes_due {
                        continue;
                    }
                    // Errors leave the previous checkpoint in effect; back
                    // off a full interval so a persistently failing disk is
                    // not hammered.
                    match ckpt.checkpoint_now() {
                        Ok(report) => {
                            last_epoch = report.cover_epoch.max(current);
                            last_bytes = ckpt.wal.stats().bytes_logged();
                        }
                        Err(_) => {
                            last_epoch = current;
                            last_bytes = logged;
                        }
                    }
                }
            })
            .expect("spawn checkpoint daemon");
        *self.daemon.lock() = Some(handle);
    }

    /// Stops the daemon and waits for any in-flight checkpoint to finish.
    /// Called by the engine before the WAL shuts down.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.daemon.lock().take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer")
            .field("tables", &self.tables.len())
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover_and_compact;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "reactdb-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn full_layer(seq: u64, epoch: u64, cover_epoch: u64, files: &[(&str, u64, u64)]) -> Layer {
        Layer {
            seq,
            epoch,
            cover_epoch,
            delta: false,
            parts: files
                .iter()
                .map(|(file, rows, bytes)| Part {
                    file: (*file).into(),
                    rows: *rows,
                    bytes: *bytes,
                })
                .collect(),
        }
    }

    #[test]
    fn manifest_roundtrip_and_corruption_handling() {
        let dir = temp_dir("manifest");
        assert_eq!(read_manifest(&dir).unwrap(), None);
        let mut delta_layer = full_layer(5, 21, 22, &[("ckpt-000005-p00.dat", 3, 640)]);
        delta_layer.delta = true;
        let manifest = Manifest {
            layers: vec![
                full_layer(
                    4,
                    17,
                    19,
                    &[
                        ("ckpt-000004-p00.dat", 600, 50_000),
                        ("ckpt-000004-p01.dat", 634, 49_000),
                    ],
                ),
                delta_layer,
            ],
        };
        write_manifest(&dir, &manifest).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(manifest.clone()));
        assert_eq!(manifest.cover_epoch(), 22);
        assert_eq!(manifest.files().len(), 3);
        // Corruption is detected and treated as "no checkpoint".
        let mut bytes = fs::read(dir.join(MANIFEST_FILE)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(dir.join(MANIFEST_FILE), &bytes).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), None);
        fs::write(dir.join(MANIFEST_FILE), b"short").unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_rejects_inconsistent_chains() {
        let dir = temp_dir("manifest-chain");
        // A chain whose root is a delta has lost its base: reject.
        let mut orphan_delta = full_layer(3, 9, 9, &[]);
        orphan_delta.delta = true;
        write_manifest(
            &dir,
            &Manifest {
                layers: vec![orphan_delta.clone()],
            },
        )
        .unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), None);
        // Non-increasing seqs are structurally impossible: reject.
        write_manifest(
            &dir,
            &Manifest {
                layers: vec![full_layer(4, 9, 9, &[]), {
                    let mut l = full_layer(4, 10, 10, &[]);
                    l.delta = true;
                    l
                }],
            },
        )
        .unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), None);
        // An empty manifest commits nothing: reject.
        write_manifest(&dir, &Manifest { layers: Vec::new() }).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incomplete_checkpoints_are_ignored_by_recovery_load() {
        let dir = temp_dir("incomplete");
        // No manifest: nothing to load, even with a data file present.
        fs::write(dir.join("ckpt-000001-p00.dat"), b"whatever").unwrap();
        assert!(load_checkpoint(&dir, u64::MAX, 2).unwrap().is_none());
        // Manifest referencing a missing part file.
        let manifest = Manifest {
            layers: vec![full_layer(2, 5, 6, &[("ckpt-000002-p00.dat", 0, 28)])],
        };
        write_manifest(&dir, &manifest).unwrap();
        assert!(load_checkpoint(&dir, u64::MAX, 2).unwrap().is_none());
        // A valid empty part file loads...
        let mut data = Vec::new();
        codec::encode_checkpoint_header(&mut data, 2, 5, 0);
        fs::write(dir.join("ckpt-000002-p00.dat"), &data).unwrap();
        let loaded = load_checkpoint(&dir, u64::MAX, 2)
            .unwrap()
            .expect("complete");
        assert_eq!(loaded.epoch, 5);
        assert_eq!(loaded.layers, 1);
        assert!(loaded.rows.is_empty());
        // ...but not when the durable marker fails to cover the capture.
        assert!(load_checkpoint(&dir, 5, 2).unwrap().is_none());
        // A part whose stamp disagrees with the manifest is rejected —
        // wrong epoch, and separately wrong part index.
        let mut wrong = Vec::new();
        codec::encode_checkpoint_header(&mut wrong, 2, 4, 0);
        fs::write(dir.join("ckpt-000002-p00.dat"), &wrong).unwrap();
        assert!(load_checkpoint(&dir, u64::MAX, 2).unwrap().is_none());
        let mut wrong_part = Vec::new();
        codec::encode_checkpoint_header(&mut wrong_part, 2, 5, 1);
        fs::write(dir.join("ckpt-000002-p00.dat"), &wrong_part).unwrap();
        assert!(load_checkpoint(&dir, u64::MAX, 2).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_covered_segments_and_bounds_recovery_to_the_tail() {
        use reactdb_common::{DurabilityConfig, DurabilityMode, Key, Value};
        use reactdb_storage::{ColumnType, Schema, Tuple};

        let dir = temp_dir("e2e");
        let config = DurabilityConfig {
            mode: DurabilityMode::EpochSync,
            log_dir: Some(dir.to_string_lossy().into_owned()),
            group_commit_interval_ms: 0,
            ..DurabilityConfig::default()
        };
        let epoch = Arc::new(EpochManager::new());
        let wal = Wal::open(&config, 1, Arc::clone(&epoch)).unwrap().unwrap();
        let schema = Schema::of(
            &[("id", ColumnType::Int), ("balance", ColumnType::Float)],
            &["id"],
        );
        let table = Arc::new(Table::new("savings", schema.clone()));
        let make_record = |key: i64, value: f64| RedoRecord {
            container: ContainerId(0),
            reactor: ReactorId(0),
            relation: "savings".into(),
            key: Key::Int(key),
            payload: reactdb_txn::RedoPayload::Full(Tuple::of([
                Value::Int(key),
                Value::Float(value),
            ])),
        };
        let mut seq = 0u64;
        let mut commit = |key: i64, value: f64| {
            seq += 1;
            let tid = TidWord::committed(epoch.current(), seq);
            let record = make_record(key, value);
            use reactdb_txn::LogSink;
            wal.writer(0).log_commit(tid, std::slice::from_ref(&record));
            table.replay(&record.key, record.image(), tid);
        };

        // A multi-epoch history: 60 commits over several synced epochs.
        for i in 0..60i64 {
            commit(i % 20, i as f64);
            if i % 10 == 9 {
                epoch.advance();
                wal.sync().unwrap();
            }
        }
        let logged_before = wal.stats().bytes_logged();
        assert!(logged_before > 0);

        let ckpt = Checkpointer::new(
            Arc::clone(&wal),
            vec![CheckpointTable {
                container: ContainerId(0),
                reactor: ReactorId(0),
                relation: "savings".into(),
                table: Arc::clone(&table),
            }],
            CheckpointConfig::manual()
                .with_chunk_size(7)
                .with_workers(2),
        )
        .unwrap();
        let report = ckpt.checkpoint_now().unwrap();
        assert_eq!(report.seq, 1);
        assert_eq!(report.rows, 20, "20 distinct keys are visible");
        assert_eq!(report.parts, 1, "one table yields one capture unit");
        assert!(!report.delta);
        assert!(report.cover_epoch >= report.epoch);
        assert!(
            report.truncated_segments >= 1,
            "the rotated-out history segment is entirely covered"
        );
        assert!(report.truncated_bytes > 0);
        assert_eq!(wal.stats().checkpoints_taken(), 1);
        assert_eq!(wal.stats().checkpoints_delta(), 0);
        assert_eq!(wal.stats().log_truncated_bytes(), report.truncated_bytes);

        // Tail: three more commits beyond the checkpoint, synced.
        for i in 0..3i64 {
            commit(100 + i, 7.0);
        }
        epoch.advance();
        wal.sync().unwrap();
        drop(wal); // crash

        let recovered = recover_and_compact(&dir, DurabilityMode::EpochSync).unwrap();
        let loaded = recovered.checkpoint.as_ref().expect("checkpoint installed");
        assert_eq!(loaded.rows.len(), 20);
        assert_eq!(loaded.epoch, report.epoch);
        assert_eq!(loaded.layers, 1);
        assert_eq!(
            recovered.batches.len(),
            3,
            "only the post-checkpoint tail is replayed"
        );
        assert!(
            recovered.log_bytes_scanned < logged_before,
            "truncation keeps recovery from re-reading the full history"
        );

        // Replaying checkpoint + tail reproduces the pre-crash state.
        let replayed = Table::new("savings", schema);
        for (tid, record) in &loaded.rows {
            replayed.replay(&record.key, record.image(), *tid);
        }
        for (tid, records) in &recovered.batches {
            for record in records {
                replayed.replay(&record.key, record.image(), *tid);
            }
        }
        assert_eq!(replayed.visible_len(), table.visible_len());
        for (key, record) in table.scan() {
            let got = replayed.get(&key).expect("key recovered");
            assert_eq!(got.read_unguarded(), record.read_unguarded(), "{key:?}");
            assert_eq!(got.tid().version(), record.tid().version());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_capture_splits_tables_across_part_files() {
        use reactdb_common::{DurabilityConfig, DurabilityMode, Key, Value};
        use reactdb_storage::{ColumnType, Schema, Tuple};

        let dir = temp_dir("parallel");
        let config = DurabilityConfig {
            mode: DurabilityMode::EpochSync,
            log_dir: Some(dir.to_string_lossy().into_owned()),
            group_commit_interval_ms: 0,
            ..DurabilityConfig::default()
        };
        let epoch = Arc::new(EpochManager::new());
        let wal = Wal::open(&config, 1, Arc::clone(&epoch)).unwrap().unwrap();
        let schema = Schema::of(&[("id", ColumnType::Int)], &["id"]);
        let tables: Vec<CheckpointTable> = (0..4)
            .map(|r| CheckpointTable {
                container: ContainerId(0),
                reactor: ReactorId(r),
                relation: format!("rel{r}"),
                table: Arc::new(Table::new(format!("rel{r}"), schema.clone())),
            })
            .collect();
        let mut seq = 0u64;
        for entry in &tables {
            for i in 0..10i64 {
                seq += 1;
                let tid = TidWord::committed(epoch.current(), seq);
                let record = RedoRecord {
                    container: entry.container,
                    reactor: entry.reactor,
                    relation: entry.relation.clone(),
                    key: Key::Int(i),
                    payload: RedoPayload::Full(Tuple::of([Value::Int(i)])),
                };
                use reactdb_txn::LogSink;
                wal.writer(0).log_commit(tid, std::slice::from_ref(&record));
                entry.table.replay(&record.key, record.image(), tid);
            }
        }
        epoch.advance();
        wal.sync().unwrap();

        let ckpt = Checkpointer::new(
            Arc::clone(&wal),
            tables.clone(),
            CheckpointConfig::manual().with_workers(3),
        )
        .unwrap();
        let report = ckpt.checkpoint_now().unwrap();
        assert_eq!(report.parts, 3, "4 tables round-robin onto 3 workers");
        assert_eq!(report.rows, 40);
        for part in 0..3u32 {
            assert!(dir.join(part_file_name(report.seq, part)).exists());
        }
        let loaded = load_checkpoint(&dir, u64::MAX, 4)
            .unwrap()
            .expect("complete chain");
        assert_eq!(loaded.rows.len(), 40);
        assert_eq!(loaded.files.len(), 3);
        // Parallel and serial decode agree byte-for-byte.
        let serial = load_checkpoint(&dir, u64::MAX, 1).unwrap().expect("serial");
        let pairs = |rows: &[(TidWord, RedoRecord)]| -> Vec<(u64, ReactorId, Key)> {
            rows.iter()
                .map(|(tid, r)| (tid.version(), r.reactor, r.key.clone()))
                .collect()
        };
        assert_eq!(pairs(&loaded.rows), pairs(&serial.rows));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_checkpoints_chain_capture_dirty_rows_and_tombstones() {
        use reactdb_common::{DurabilityConfig, DurabilityMode, Key, Value};
        use reactdb_storage::{ColumnType, Schema, Tuple};

        let dir = temp_dir("delta");
        let config = DurabilityConfig {
            mode: DurabilityMode::EpochSync,
            log_dir: Some(dir.to_string_lossy().into_owned()),
            group_commit_interval_ms: 0,
            ..DurabilityConfig::default()
        };
        let epoch = Arc::new(EpochManager::new());
        let wal = Wal::open(&config, 1, Arc::clone(&epoch)).unwrap().unwrap();
        let schema = Schema::of(&[("id", ColumnType::Int), ("v", ColumnType::Int)], &["id"]);
        let table = Arc::new(Table::new("kv", schema.clone()));
        let ckpt = Checkpointer::new(
            Arc::clone(&wal),
            vec![CheckpointTable {
                container: ContainerId(0),
                reactor: ReactorId(0),
                relation: "kv".into(),
                table: Arc::clone(&table),
            }],
            CheckpointConfig::manual().with_full_every(4),
        )
        .unwrap();
        let mut seq = 0u64;
        let mut commit = |key: i64, value: Option<i64>| {
            seq += 1;
            let tid = TidWord::committed(epoch.current(), seq);
            let record = RedoRecord {
                container: ContainerId(0),
                reactor: ReactorId(0),
                relation: "kv".into(),
                key: Key::Int(key),
                payload: match value {
                    Some(v) => RedoPayload::Full(Tuple::of([Value::Int(key), Value::Int(v)])),
                    None => RedoPayload::Delete,
                },
            };
            use reactdb_txn::LogSink;
            wal.writer(0).log_commit(tid, std::slice::from_ref(&record));
            table.replay(&record.key, record.image(), tid);
        };

        // Base population, then the forced-full chain root.
        for i in 0..50i64 {
            commit(i, Some(i * 10));
        }
        epoch.advance();
        wal.sync().unwrap();
        let full = ckpt.checkpoint_now().unwrap();
        assert!(!full.delta, "first checkpoint is forced full");
        assert_eq!(full.rows, 50);

        // Touch 5 keys and delete one, then take a delta.
        for i in 0..5i64 {
            commit(i, Some(i * 100));
        }
        commit(42, None);
        epoch.advance();
        wal.sync().unwrap();
        let delta = ckpt.checkpoint_now().unwrap();
        assert!(delta.delta);
        assert_eq!(delta.rows, 6, "5 updates + 1 tombstone");
        assert!(
            delta.bytes * 2 < full.bytes,
            "delta bytes ({}) well under full bytes ({})",
            delta.bytes,
            full.bytes
        );
        assert_eq!(wal.stats().checkpoints_delta(), 1);

        // A second delta captures only what changed since the first.
        commit(7, Some(700));
        epoch.advance();
        wal.sync().unwrap();
        let second = ckpt.checkpoint_now().unwrap();
        assert!(second.delta);
        assert_eq!(second.rows, 1);

        // The chain (full + 2 deltas) recovers to the live state,
        // including the tombstone.
        let loaded = load_checkpoint(&dir, u64::MAX, 2).unwrap().expect("chain");
        assert_eq!(loaded.layers, 3);
        assert_eq!(loaded.epoch, second.epoch, "bound is the newest layer's");
        let replayed = Table::new("kv", schema);
        for (tid, record) in &loaded.rows {
            replayed.replay(&record.key, record.image(), *tid);
        }
        assert_eq!(replayed.visible_len(), table.visible_len());
        assert!(replayed.get(&Key::Int(42)).unwrap().tid().is_absent());
        assert_eq!(
            replayed
                .get(&Key::Int(3))
                .unwrap()
                .read_unguarded()
                .values()[1],
            Value::Int(300)
        );

        // A third delta fills the chain (full + 3 deltas = 4 layers), so
        // the checkpoint after it rolls over to a fresh full root.
        commit(8, Some(800));
        epoch.advance();
        wal.sync().unwrap();
        let third = ckpt.checkpoint_now().unwrap();
        assert!(third.delta);
        let rollover = ckpt.checkpoint_now().unwrap();
        assert!(!rollover.delta, "full_every=4 caps the chain at 4 layers");
        let loaded = load_checkpoint(&dir, u64::MAX, 2).unwrap().expect("root");
        assert_eq!(loaded.layers, 1);
        assert_eq!(loaded.rows.len(), 49, "the tombstoned key is not visible");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_cleanup_preserves_rejected_checkpoint_evidence() {
        let dir = temp_dir("evidence");
        // Manifest referencing a torn part file: load rejects it, but the
        // file may be the only copy of truncated history — cleanup must
        // keep it (and still remove genuine debris).
        write_manifest(
            &dir,
            &Manifest {
                layers: vec![full_layer(3, 8, 9, &[("ckpt-000003-p00.dat", 10, 4)])],
            },
        )
        .unwrap();
        fs::write(dir.join("ckpt-000003-p00.dat"), b"torn").unwrap();
        fs::write(dir.join("ckpt-000001-p00.dat"), b"superseded").unwrap();
        fs::write(dir.join("ckpt.tmp"), b"debris").unwrap();
        fs::write(dir.join("ckpt-p01.tmp"), b"debris").unwrap();
        assert!(load_checkpoint(&dir, u64::MAX, 2).unwrap().is_none());
        clean_orphans_for_recovery(&dir).unwrap();
        assert!(
            dir.join("ckpt-000003-p00.dat").exists(),
            "manifest-referenced file is evidence even when rejected"
        );
        assert!(!dir.join("ckpt-000001-p00.dat").exists());
        assert!(!dir.join("ckpt.tmp").exists());
        assert!(!dir.join("ckpt-p01.tmp").exists());
        // Corrupt manifest: the references are unknown, so nothing at all
        // is deleted.
        fs::write(dir.join(MANIFEST_FILE), b"garbage").unwrap();
        fs::write(dir.join("ckpt-000001-p00.dat"), b"maybe evidence").unwrap();
        clean_orphans_for_recovery(&dir).unwrap();
        assert!(dir.join("ckpt-000003-p00.dat").exists());
        assert!(dir.join("ckpt-000001-p00.dat").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_sequence_is_consumed_even_by_failed_attempts() {
        use reactdb_common::{DurabilityConfig, DurabilityMode};
        let dir = temp_dir("seq-consume");
        let config = DurabilityConfig {
            mode: DurabilityMode::EpochSync,
            log_dir: Some(dir.to_string_lossy().into_owned()),
            group_commit_interval_ms: 0,
            ..DurabilityConfig::default()
        };
        let epoch = Arc::new(EpochManager::new());
        let wal = Wal::open(&config, 1, Arc::clone(&epoch)).unwrap().unwrap();
        let ckpt = Checkpointer::new(
            Arc::clone(&wal),
            Vec::new(),
            CheckpointConfig::manual().with_chunk_size(4),
        )
        .unwrap();
        let first = ckpt.checkpoint_now().unwrap();
        assert_eq!(first.seq, 1);
        assert_eq!(first.parts, 0, "no tables, no part files");
        // Retire the WAL: the next attempt fails mid-protocol...
        wal.shutdown(true);
        assert!(ckpt.checkpoint_now().is_err());
        assert_eq!(wal.stats().checkpoint_failures(), 1);
        // ...and a later attempt must NOT reuse the failed attempt's seq —
        // a retry that renamed fresh data over an installed checkpoint's
        // file would invalidate it via the stamp mismatch.
        assert_eq!(*ckpt.next_seq.lock(), 3, "seq 2 was consumed by failure");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_cleanup_spares_the_live_part_files() {
        let dir = temp_dir("orphans");
        fs::write(dir.join("ckpt-000001-p00.dat"), b"old").unwrap();
        fs::write(dir.join("ckpt-000002-p00.dat"), b"live root").unwrap();
        fs::write(dir.join("ckpt-000003-p00.dat"), b"live delta").unwrap();
        fs::write(dir.join("ckpt.tmp"), b"torn").unwrap();
        fs::write(dir.join("ckpt-p02.tmp"), b"torn").unwrap();
        fs::write(dir.join("checkpoint-manifest.tmp"), b"torn").unwrap();
        fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
        clean_orphans(
            &dir,
            &["ckpt-000002-p00.dat".into(), "ckpt-000003-p00.dat".into()],
        )
        .unwrap();
        assert!(!dir.join("ckpt-000001-p00.dat").exists());
        assert!(dir.join("ckpt-000002-p00.dat").exists());
        assert!(dir.join("ckpt-000003-p00.dat").exists());
        assert!(!dir.join("ckpt.tmp").exists());
        assert!(!dir.join("ckpt-p02.tmp").exists());
        assert!(!dir.join("checkpoint-manifest.tmp").exists());
        assert!(dir.join("unrelated.txt").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
