//! Log shipping: the primary-side cursor that turns a live log directory
//! into a replication stream.
//!
//! Replication reuses durability's on-disk artifacts instead of inventing
//! a second commit path: the shipped stream *is* the WAL. A
//! [`ShipCursor`] walks the primary's log directory and yields
//! [`ShipEvent`]s — raw byte ranges of checkpoint files and log segments,
//! interleaved with durable-epoch markers:
//!
//! * On the first poll the newest installed checkpoint chain is shipped
//!   whole (part files first, manifest last, so the follower never
//!   observes a manifest referencing parts it does not have). The
//!   follower boots from it through the same parallel loader recovery
//!   uses ([`crate::checkpoint::load_checkpoint`]).
//! * Every poll then tails the `wal-*.log` segments: per segment the
//!   cursor remembers how many bytes it shipped and walks the *new*
//!   complete frames, shipping exactly the prefix whose commit epochs the
//!   on-disk durable-epoch marker covers. Within one segment epochs are
//!   non-decreasing, so stopping at the first too-new frame is exact —
//!   nothing volatile ever leaves the primary, which is what lets a
//!   follower acknowledge an epoch as *replicated* without second-guessing
//!   the primary's group commit.
//! * After the file chunks, a [`ShipEvent::DurableEpoch`] announces every
//!   advance of the durable epoch. The follower applies staged frames up
//!   to that epoch and acknowledges it; epochs are the unit of replication
//!   exactly as they are the unit of group commit.
//!
//! The cursor is deliberately decoupled from the live [`crate::Wal`]: it
//! reads the directory like a second recovery would, so it needs no hooks
//! in the commit path and ships only what an actual crash-recovery of the
//! primary would also see. The one race it cannot hide is checkpoint
//! truncation deleting a segment it has not fully shipped; that surfaces
//! as an error and the follower resubscribes from the (new) checkpoint.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use reactdb_storage::TidWord;

use crate::checkpoint::MANIFEST_FILE;
use crate::codec;
use crate::failpoint;

/// Byte length of the fixed segment header (magic + executor + generation).
const SEGMENT_HEADER_LEN: usize = 16;

/// One replication stream event produced by [`ShipCursor::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipEvent {
    /// `bytes` of the log-directory file `name`, starting at byte
    /// `offset`. The follower stages the file at the same name and offset;
    /// names are always plain file names (no directories).
    File {
        /// File name inside the log directory.
        name: String,
        /// Byte offset this chunk starts at.
        offset: u64,
        /// The raw bytes.
        bytes: Vec<u8>,
    },
    /// Every frame with a commit epoch `<= epoch` has been shipped; the
    /// follower may apply through `epoch` and acknowledge it.
    DurableEpoch(u64),
}

/// Primary-side shipping cursor over a live log directory.
///
/// Stateful: remembers which checkpoint it shipped and the shipped byte
/// offset of every segment. One cursor serves one follower subscription;
/// it performs no I/O besides reads and holds no locks, so any number may
/// run against the directory of a live [`crate::Wal`].
#[derive(Debug)]
pub struct ShipCursor {
    dir: PathBuf,
    /// The directory's file name, offered as the failpoint scope so tests
    /// can fault one cursor without tripping every other one in the
    /// process (see [`failpoint::fire_scoped`]).
    scope: String,
    /// Upper bound on one [`ShipEvent::File`] chunk.
    chunk_bytes: usize,
    /// Shipped-byte high-water mark per segment file name.
    offsets: HashMap<String, u64>,
    /// The checkpoint chain is shipped once, on the first poll.
    shipped_checkpoint: bool,
    /// Last durable epoch announced to the follower.
    announced_epoch: u64,
}

impl ShipCursor {
    /// A cursor over `dir` emitting file chunks of at most `chunk_bytes`
    /// (clamped to at least 4 KiB).
    pub fn new(dir: &Path, chunk_bytes: usize) -> Self {
        let scope = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        Self {
            dir: dir.to_path_buf(),
            scope,
            chunk_bytes: chunk_bytes.max(4 * 1024),
            offsets: HashMap::new(),
            shipped_checkpoint: false,
            announced_epoch: 0,
        }
    }

    /// Collects everything newly shippable: checkpoint files on the first
    /// call, then the durable log tail of every segment, then the durable
    /// epoch when it advanced. Returns an empty vector when nothing new is
    /// durable. Errors are fatal to the subscription (the follower
    /// resubscribes with a fresh cursor): a tracked segment shrank or
    /// vanished mid-ship, or the directory itself went away.
    pub fn poll(&mut self) -> io::Result<Vec<ShipEvent>> {
        let mut events = Vec::new();
        let durable = crate::read_marker(&self.dir)?.unwrap_or(0);

        if !self.shipped_checkpoint {
            self.ship_checkpoint(&mut events)?;
            self.shipped_checkpoint = true;
        }

        let segments = crate::list_segments(&self.dir)?;
        // Fault injection: behave exactly as if a checkpoint truncation
        // deleted a tracked segment between the listing and the read.
        if !self.offsets.is_empty() {
            failpoint::check_scoped("truncate-under-cursor", &self.scope).map_err(|e| {
                io::Error::other(format!(
                    "{e}: segment vanished mid-ship (checkpoint truncation?); resubscribe"
                ))
            })?;
        }
        for name in self.offsets.keys() {
            if !segments.iter().any(|p| p.ends_with(name.as_str())) {
                return Err(io::Error::other(format!(
                    "segment {name} vanished mid-ship (checkpoint truncation?); resubscribe"
                )));
            }
        }
        for path in segments {
            self.ship_segment_tail(&path, durable, &mut events)?;
        }

        if durable > self.announced_epoch {
            self.announced_epoch = durable;
            events.push(ShipEvent::DurableEpoch(durable));
        }
        Ok(events)
    }

    /// The last durable epoch announced downstream.
    pub fn announced_epoch(&self) -> u64 {
        self.announced_epoch
    }

    /// Ships the installed checkpoint chain raw: every `ckpt-*.dat` part
    /// file first, the manifest last. Extra (orphaned) part files are
    /// harmless downstream — the loader reads only manifest-referenced
    /// parts. No checkpoint installed means nothing to ship; the follower
    /// then bootstraps from the log alone.
    fn ship_checkpoint(&mut self, events: &mut Vec<ShipEvent>) -> io::Result<()> {
        let manifest_path = self.dir.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            return Ok(());
        }
        let mut parts: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("ckpt-") && name.ends_with(".dat") {
                parts.push(path);
            }
        }
        parts.sort();
        for path in parts {
            self.ship_whole_file(&path, events)?;
        }
        self.ship_whole_file(&manifest_path, events)
    }

    fn ship_whole_file(&self, path: &Path, events: &mut Vec<ShipEvent>) -> io::Result<()> {
        let name = file_name(path)?;
        let bytes = fs::read(path)?;
        let mut offset = 0usize;
        // Always emit at least one chunk, so empty files still materialize
        // downstream.
        loop {
            let end = (offset + self.chunk_bytes).min(bytes.len());
            events.push(ShipEvent::File {
                name: name.clone(),
                offset: offset as u64,
                bytes: bytes[offset..end].to_vec(),
            });
            offset = end;
            if offset >= bytes.len() {
                return Ok(());
            }
        }
    }

    /// Ships the new durable frames of one segment, from the remembered
    /// offset to the end of the durable prefix.
    fn ship_segment_tail(
        &mut self,
        path: &Path,
        durable: u64,
        events: &mut Vec<ShipEvent>,
    ) -> io::Result<()> {
        let name = file_name(path)?;
        let shipped = *self.offsets.get(&name).unwrap_or(&0) as usize;
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound && shipped == 0 => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(io::Error::other(format!(
                    "segment {name} vanished mid-ship (checkpoint truncation?); resubscribe"
                )));
            }
            Err(e) => return Err(e),
        };
        if bytes.len() < shipped {
            return Err(io::Error::other(format!(
                "segment {name} shrank below the shipped offset; resubscribe"
            )));
        }
        if bytes.len() < SEGMENT_HEADER_LEN
            || bytes[..codec::SEGMENT_MAGIC.len()] != codec::SEGMENT_MAGIC
        {
            return Ok(()); // header not flushed yet, or a foreign file
        }
        let end = durable_prefix_end(&bytes, shipped.max(SEGMENT_HEADER_LEN), durable);
        // The header ships with the first durable frame; a segment with no
        // durable frame yet ships nothing and stays untracked, so its
        // disappearance (e.g. discarded by a compaction) is not an error.
        if shipped == 0 && end <= SEGMENT_HEADER_LEN {
            return Ok(());
        }
        let start = if shipped == 0 { 0 } else { shipped };
        let mut offset = start;
        while offset < end {
            let chunk_end = (offset + self.chunk_bytes).min(end);
            events.push(ShipEvent::File {
                name: name.clone(),
                offset: offset as u64,
                bytes: bytes[offset..chunk_end].to_vec(),
            });
            offset = chunk_end;
        }
        // Fault injection: the stream dies with this segment's new chunks
        // queued but unrecorded. The offsets map is not advanced on the
        // error path and the durable-epoch event never goes out, so a
        // resubscribing cursor re-ships the range — the same shape as a
        // connection cut mid-file.
        if end > start {
            failpoint::check_scoped("ship-mid-file", &self.scope).map_err(|e| {
                io::Error::other(format!("{e}: stream cut mid-segment; resubscribe"))
            })?;
        }
        if end > shipped {
            self.offsets.insert(name, end as u64);
        }
        Ok(())
    }
}

fn file_name(path: &Path) -> io::Result<String> {
    path.file_name()
        .and_then(|n| n.to_str())
        .map(str::to_owned)
        .ok_or_else(|| io::Error::other("segment path has no UTF-8 file name"))
}

/// Walks complete frames from `start`, returning the end offset of the
/// prefix whose commit epochs are `<= durable`. Per-segment epochs are
/// non-decreasing (writers buffer per epoch and flush in fence order), so
/// the first too-new frame ends the prefix exactly. Incomplete or
/// implausible frames end the walk too — they belong to an unflushed or
/// torn tail that a later poll (or no one) will cover.
fn durable_prefix_end(bytes: &[u8], start: usize, durable: u64) -> usize {
    let mut pos = start;
    loop {
        let Some(header) = bytes.get(pos..pos + 8) else {
            return pos;
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("len 4")) as usize;
        if len < 8 {
            return pos; // a payload always starts with a TID
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            return pos;
        };
        let tid = TidWord(u64::from_le_bytes(payload[..8].try_into().expect("len 8")));
        if tid.epoch() > durable {
            return pos;
        }
        pos += 8 + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reactdb_common::{ContainerId, Key, ReactorId, Value};
    use reactdb_storage::Tuple;
    use reactdb_txn::{RedoPayload, RedoRecord};

    fn record(amount: f64) -> RedoRecord {
        RedoRecord {
            container: ContainerId(0),
            reactor: ReactorId(0),
            relation: "balance".into(),
            key: Key::Int(0),
            payload: RedoPayload::Full(Tuple::of([Value::Int(0), Value::Float(amount)])),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "reactdb-ship-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_segment(dir: &Path, executor: u32, batches: &[(TidWord, Vec<RedoRecord>)]) -> String {
        let mut out = Vec::new();
        codec::encode_header(&mut out, executor, 1);
        for (tid, records) in batches {
            codec::encode_batch(&mut out, *tid, records);
        }
        let name = format!("wal-e{executor:04}-g000001.log");
        fs::write(dir.join(&name), out).unwrap();
        name
    }

    fn apply_events(staged: &mut HashMap<String, Vec<u8>>, events: &[ShipEvent]) -> u64 {
        let mut epoch = 0;
        for event in events {
            match event {
                ShipEvent::File {
                    name,
                    offset,
                    bytes,
                } => {
                    let file = staged.entry(name.clone()).or_default();
                    let offset = *offset as usize;
                    assert!(offset <= file.len(), "no gaps in the shipped stream");
                    file.truncate(offset);
                    file.extend_from_slice(bytes);
                }
                ShipEvent::DurableEpoch(e) => epoch = *e,
            }
        }
        epoch
    }

    #[test]
    fn ships_only_the_durable_prefix_and_tracks_growth() {
        let dir = temp_dir("prefix");
        let durable_batch = (TidWord::committed(2, 1), vec![record(1.0)]);
        let volatile_batch = (TidWord::committed(5, 1), vec![record(2.0)]);
        let name = write_segment(&dir, 0, &[durable_batch.clone(), volatile_batch.clone()]);
        crate::write_marker(&dir, 2).unwrap();

        let mut cursor = ShipCursor::new(&dir, 1 << 20);
        let mut staged = HashMap::new();
        let epoch = apply_events(&mut staged, &cursor.poll().unwrap());
        assert_eq!(epoch, 2);
        let scan = codec::decode_segment(&staged[&name]).expect("staged segment decodes");
        assert_eq!(scan.batches, vec![durable_batch.clone()]);

        // The marker advances: the next poll ships exactly the held-back
        // frame, nothing twice.
        crate::write_marker(&dir, 5).unwrap();
        let events = cursor.poll().unwrap();
        assert!(
            events
                .iter()
                .all(|e| !matches!(e, ShipEvent::File { offset: 0, .. })),
            "already-shipped bytes are not re-shipped: {events:?}"
        );
        let epoch = apply_events(&mut staged, &events);
        assert_eq!(epoch, 5);
        let scan = codec::decode_segment(&staged[&name]).unwrap();
        assert_eq!(scan.batches, vec![durable_batch, volatile_batch]);

        // Quiescent directory: polls go quiet.
        assert!(cursor.poll().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunking_reassembles_byte_identically() {
        let dir = temp_dir("chunks");
        let batches: Vec<_> = (1..=40)
            .map(|i| (TidWord::committed(3, i), vec![record(i as f64)]))
            .collect();
        let name = write_segment(&dir, 1, &batches);
        crate::write_marker(&dir, 3).unwrap();
        let original = fs::read(dir.join(&name)).unwrap();

        // Chunk size clamps to 4 KiB, far below the segment size here.
        let mut cursor = ShipCursor::new(&dir, 1);
        let events = cursor.poll().unwrap();
        let files = events
            .iter()
            .filter(|e| matches!(e, ShipEvent::File { .. }))
            .count();
        let mut staged = HashMap::new();
        apply_events(&mut staged, &events);
        assert_eq!(staged[&name], original, "chunks reassemble exactly");
        assert!(files >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn first_poll_ships_checkpoint_parts_before_the_manifest() {
        let dir = temp_dir("ckpt");
        fs::write(dir.join("ckpt-000001-p00.dat"), b"part-bytes").unwrap();
        fs::write(dir.join(MANIFEST_FILE), b"manifest-bytes").unwrap();
        crate::write_marker(&dir, 1).unwrap();

        let mut cursor = ShipCursor::new(&dir, 1 << 20);
        let events = cursor.poll().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                ShipEvent::File { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        let part_pos = names
            .iter()
            .position(|n| n.starts_with("ckpt-"))
            .expect("part shipped");
        let manifest_pos = names
            .iter()
            .position(|n| *n == MANIFEST_FILE)
            .expect("manifest shipped");
        assert!(
            part_pos < manifest_pos,
            "parts precede the manifest so the follower never sees dangling references"
        );
        // Second poll does not re-ship the checkpoint.
        assert!(cursor.poll().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn vanished_tracked_segment_is_a_fatal_stream_error() {
        let dir = temp_dir("vanish");
        let name = write_segment(&dir, 0, &[(TidWord::committed(1, 1), vec![record(1.0)])]);
        crate::write_marker(&dir, 1).unwrap();
        let mut cursor = ShipCursor::new(&dir, 1 << 20);
        cursor.poll().unwrap();
        fs::remove_file(dir.join(&name)).unwrap();
        // An untracked-but-gone segment is fine; a tracked one is fatal.
        assert!(cursor.poll().is_err(), "mid-ship truncation must surface");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_under_cursor_failpoint_faults_a_tracking_cursor_once() {
        let dir = temp_dir("fp-truncate");
        let scope = dir.file_name().unwrap().to_str().unwrap();
        write_segment(&dir, 0, &[(TidWord::committed(1, 1), vec![record(1.0)])]);
        crate::write_marker(&dir, 1).unwrap();

        let mut cursor = ShipCursor::new(&dir, 1 << 20);
        // Armed before the first poll: a cursor tracking nothing yet has
        // nothing a truncation could race, so the point must not fire.
        failpoint::arm(&format!("truncate-under-cursor@{scope}=err:1")).unwrap();
        assert!(cursor.poll().is_ok(), "untracked cursor is not faulted");
        let err = cursor.poll().expect_err("tracked cursor is faulted");
        assert!(err.to_string().contains("resubscribe"), "{err}");
        // Budget spent: the stream heals on resubscribe.
        let mut fresh = ShipCursor::new(&dir, 1 << 20);
        assert!(fresh.poll().is_ok());
        assert_eq!(
            failpoint::hits(&format!("truncate-under-cursor@{scope}")),
            1
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ship_mid_file_failpoint_loses_nothing_across_resubscribe() {
        let dir = temp_dir("fp-midfile");
        let scope = dir.file_name().unwrap().to_str().unwrap().to_string();
        let batches: Vec<_> = (1..=10)
            .map(|i| (TidWord::committed(2, i), vec![record(i as f64)]))
            .collect();
        let name = write_segment(&dir, 0, &batches);
        crate::write_marker(&dir, 2).unwrap();
        let original = fs::read(dir.join(&name)).unwrap();

        failpoint::arm(&format!("ship-mid-file@{scope}=err:1")).unwrap();
        let mut cursor = ShipCursor::new(&dir, 1 << 20);
        assert!(cursor.poll().is_err(), "first poll dies mid-segment");
        // The follower reconnects with a fresh cursor; the stream re-ships
        // the whole range and reassembles byte-identically.
        let mut fresh = ShipCursor::new(&dir, 1 << 20);
        let mut staged = HashMap::new();
        let epoch = apply_events(&mut staged, &fresh.poll().unwrap());
        assert_eq!(epoch, 2);
        assert_eq!(staged[&name], original);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_marker_means_nothing_ships() {
        let dir = temp_dir("nomarker");
        write_segment(&dir, 0, &[(TidWord::committed(1, 1), vec![record(1.0)])]);
        let mut cursor = ShipCursor::new(&dir, 1 << 20);
        assert!(
            cursor.poll().unwrap().is_empty(),
            "without a durable epoch every frame is volatile"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
