//! Binary encoding of redo batches.
//!
//! A log segment is a fixed header followed by length-prefixed,
//! checksummed batch frames:
//!
//! ```text
//! segment   := header frame*
//! header    := magic:[u8;8] executor:u32 generation:u32
//! frame     := payload_len:u32 crc32(payload):u32 payload
//! payload   := tid:u64 record_count:u32 record*
//! record    := container:u64 reactor:u64 relation:str16 key flag:u8 tuple?
//! key       := 0 bool:u8 | 1 int:i64 | 2 str32 | 3 count:u16 key*
//! value     := 0 (null) | 1 int:i64 | 2 float:f64-bits | 3 str32 | 4 bool:u8
//! tuple     := arity:u32 value*
//! ```
//!
//! All integers are little-endian. Decoding is defensive: a torn or corrupt
//! tail (short frame, bad checksum, malformed payload) terminates the scan
//! of that segment without failing recovery — exactly the tail a crash in
//! the middle of a flush leaves behind.

use reactdb_common::{ContainerId, Key, ReactorId, Value};
use reactdb_storage::{TidWord, Tuple};
use reactdb_txn::RedoRecord;

/// Magic bytes opening every log segment.
pub const SEGMENT_MAGIC: [u8; 8] = *b"RDBWAL1\n";

/// Magic bytes opening every checkpoint data file. Checkpoint files reuse
/// the segment frame format (one checksummed batch frame per captured row,
/// the frame TID carrying the row's commit TID) under a distinct magic, so
/// log scans can never mistake one for a redo segment.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"RDBCKPT1";

/// Table-driven CRC-32: `crc32` runs on the commit fast path (one call per
/// logged batch, under the writer mutex), so the byte-at-a-time LUT variant
/// matters.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "relation name too long");
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_str32(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_key(out: &mut Vec<u8>, key: &Key) {
    match key {
        Key::Bool(b) => {
            out.push(0);
            out.push(*b as u8);
        }
        Key::Int(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Key::Str(s) => {
            out.push(2);
            put_str32(out, s);
        }
        Key::Composite(parts) => {
            out.push(3);
            assert!(parts.len() <= u16::MAX as usize, "composite key too wide");
            put_u16(out, parts.len() as u16);
            for part in parts {
                put_key(out, part);
            }
        }
    }
}

fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(0),
        Value::Int(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float(v) => {
            out.push(2);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            put_str32(out, s);
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
    }
}

fn put_tuple(out: &mut Vec<u8>, tuple: &Tuple) {
    put_u32(out, tuple.arity() as u32);
    for value in tuple.values() {
        put_value(out, value);
    }
}

/// Writes the segment header for `executor` / `generation`.
pub fn encode_header(out: &mut Vec<u8>, executor: u32, generation: u32) {
    out.extend_from_slice(&SEGMENT_MAGIC);
    put_u32(out, executor);
    put_u32(out, generation);
}

/// Writes the checkpoint-file header for checkpoint `seq`, stamped with the
/// stable epoch the checkpoint snapshot began at.
pub fn encode_checkpoint_header(out: &mut Vec<u8>, seq: u64, epoch: u64) {
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    put_u64(out, seq);
    put_u64(out, epoch);
}

/// Appends one framed batch to `out`. Returns the number of bytes written.
pub fn encode_batch(out: &mut Vec<u8>, tid: TidWord, records: &[RedoRecord]) -> usize {
    encode_batch_accounted(out, tid, records, |_, _| {})
}

/// Like [`encode_batch`], invoking `account` with every record and its
/// encoded payload size — the hook behind per-table log-space accounting.
/// The frame overhead (length, CRC, TID, record count) is charged to the
/// first record so the per-table totals sum to the segment bytes.
pub fn encode_batch_accounted(
    out: &mut Vec<u8>,
    tid: TidWord,
    records: &[RedoRecord],
    mut account: impl FnMut(&RedoRecord, u64),
) -> usize {
    let mut payload = Vec::with_capacity(64 * records.len());
    put_u64(&mut payload, tid.raw());
    put_u32(&mut payload, records.len() as u32);
    // frame header (len + crc) + payload header (tid + count)
    let mut overhead = Some(4 + 4 + payload.len() as u64);
    for record in records {
        let before = payload.len();
        put_u64(&mut payload, record.container.raw());
        put_u64(&mut payload, record.reactor.raw());
        put_str16(&mut payload, &record.relation);
        put_key(&mut payload, &record.key);
        match &record.image {
            Some(tuple) => {
                payload.push(1);
                put_tuple(&mut payload, tuple);
            }
            None => payload.push(0),
        }
        let record_bytes = (payload.len() - before) as u64 + overhead.take().unwrap_or(0);
        account(record, record_bytes);
    }
    let before = out.len();
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
    out.len() - before
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("len 8")))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|b| i64::from_le_bytes(b.try_into().expect("len 8")))
    }

    fn str16(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn str32(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn key(&mut self) -> Option<Key> {
        match self.u8()? {
            0 => Some(Key::Bool(self.u8()? != 0)),
            1 => Some(Key::Int(self.i64()?)),
            2 => Some(Key::Str(self.str32()?)),
            3 => {
                let count = self.u16()? as usize;
                let mut parts = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    parts.push(self.key()?);
                }
                Some(Key::Composite(parts))
            }
            _ => None,
        }
    }

    fn value(&mut self) -> Option<Value> {
        match self.u8()? {
            0 => Some(Value::Null),
            1 => Some(Value::Int(self.i64()?)),
            2 => Some(Value::Float(f64::from_bits(self.u64()?))),
            3 => Some(Value::Str(self.str32()?)),
            4 => Some(Value::Bool(self.u8()? != 0)),
            _ => None,
        }
    }

    fn tuple(&mut self) -> Option<Tuple> {
        let arity = self.u32()? as usize;
        let mut values = Vec::with_capacity(arity.min(1024));
        for _ in 0..arity {
            values.push(self.value()?);
        }
        Some(Tuple::new(values))
    }
}

/// Decodes one batch payload (without the frame header).
fn decode_payload(payload: &[u8]) -> Option<(TidWord, Vec<RedoRecord>)> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let tid = TidWord(r.u64()?);
    let count = r.u32()? as usize;
    let mut records = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let container = ContainerId(r.u64()?);
        let reactor = ReactorId(r.u64()?);
        let relation = r.str16()?;
        let key = r.key()?;
        let image = match r.u8()? {
            1 => Some(r.tuple()?),
            0 => None,
            _ => return None,
        };
        records.push(RedoRecord {
            container,
            reactor,
            relation,
            key,
            image,
        });
    }
    if r.pos != payload.len() {
        return None;
    }
    Some((tid, records))
}

/// Result of scanning one segment.
pub struct SegmentScan {
    /// The decoded batches, in file order.
    pub batches: Vec<(TidWord, Vec<RedoRecord>)>,
    /// True when the segment ended with a torn or corrupt frame (expected
    /// after a crash mid-flush; the tail is discarded).
    pub truncated_tail: bool,
}

/// Decodes a whole segment (header + frames). Returns `None` when the
/// header itself is missing or foreign.
pub fn decode_segment(bytes: &[u8]) -> Option<SegmentScan> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(SEGMENT_MAGIC.len())? != SEGMENT_MAGIC {
        return None;
    }
    let _executor = r.u32()?;
    let _generation = r.u32()?;
    Some(decode_frames(r))
}

/// Decoded checkpoint data file: its identity stamp plus one batch per
/// captured row.
pub struct CheckpointScan {
    /// Checkpoint sequence number from the header.
    pub seq: u64,
    /// Stable epoch the snapshot began at (`E_ckpt`), from the header.
    pub epoch: u64,
    /// The decoded row frames, in capture order.
    pub scan: SegmentScan,
}

/// Decodes a whole checkpoint data file. Returns `None` when the header is
/// missing or foreign.
pub fn decode_checkpoint(bytes: &[u8]) -> Option<CheckpointScan> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(CHECKPOINT_MAGIC.len())? != CHECKPOINT_MAGIC {
        return None;
    }
    let seq = r.u64()?;
    let epoch = r.u64()?;
    Some(CheckpointScan {
        seq,
        epoch,
        scan: decode_frames(r),
    })
}

/// Shared frame-stream decoder behind segment and checkpoint scans.
fn decode_frames(mut r: Reader<'_>) -> SegmentScan {
    let mut batches = Vec::new();
    let mut truncated_tail = false;
    while r.pos < r.bytes.len() {
        let frame = (|| {
            let len = r.u32()? as usize;
            let crc = r.u32()?;
            let payload = r.take(len)?;
            if crc32(payload) != crc {
                return None;
            }
            decode_payload(payload)
        })();
        match frame {
            Some(batch) => batches.push(batch),
            None => {
                truncated_tail = true;
                break;
            }
        }
    }
    SegmentScan {
        batches,
        truncated_tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<RedoRecord> {
        vec![
            RedoRecord {
                container: ContainerId(1),
                reactor: ReactorId(3),
                relation: "savings".into(),
                key: Key::Int(7),
                image: Some(Tuple::of([Value::Int(7), Value::Float(99.5)])),
            },
            RedoRecord {
                container: ContainerId(0),
                reactor: ReactorId(2),
                relation: "account".into(),
                key: Key::composite([Key::Str("a".into()), Key::Bool(true)]),
                image: None,
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vector() {
        // Standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn batch_roundtrip() {
        let mut out = Vec::new();
        encode_header(&mut out, 4, 2);
        let tid = TidWord::committed(5, 42);
        encode_batch(&mut out, tid, &sample_records());
        let scan = decode_segment(&out).expect("valid segment");
        assert!(!scan.truncated_tail);
        assert_eq!(scan.batches.len(), 1);
        assert_eq!(scan.batches[0].0, tid);
        assert_eq!(scan.batches[0].1, sample_records());
    }

    #[test]
    fn accounted_encoding_attributes_every_frame_byte() {
        let mut out = Vec::new();
        let mut attributed = 0u64;
        let written = encode_batch_accounted(
            &mut out,
            TidWord::committed(2, 3),
            &sample_records(),
            |_, bytes| attributed += bytes,
        );
        assert_eq!(
            attributed, written as u64,
            "per-record sizes sum to the frame size"
        );
        // The accounted variant produces byte-identical output.
        let mut plain = Vec::new();
        encode_batch(&mut plain, TidWord::committed(2, 3), &sample_records());
        assert_eq!(out, plain);
    }

    #[test]
    fn checkpoint_roundtrip_and_foreign_rejection() {
        let mut out = Vec::new();
        encode_checkpoint_header(&mut out, 7, 42);
        for (i, record) in sample_records().into_iter().enumerate() {
            encode_batch(&mut out, TidWord::committed(3, i as u64 + 1), &[record]);
        }
        let scan = decode_checkpoint(&out).expect("valid checkpoint");
        assert_eq!(scan.seq, 7);
        assert_eq!(scan.epoch, 42);
        assert!(!scan.scan.truncated_tail);
        assert_eq!(scan.scan.batches.len(), 2);
        assert_eq!(scan.scan.batches[0].0, TidWord::committed(3, 1));
        // A checkpoint file is not a segment and vice versa.
        assert!(decode_segment(&out).is_none());
        let mut seg = Vec::new();
        encode_header(&mut seg, 0, 1);
        assert!(decode_checkpoint(&seg).is_none());
        // A torn checkpoint tail is detected, not fatal.
        let intact = out.len();
        encode_batch(&mut out, TidWord::committed(3, 9), &sample_records());
        out.truncate(intact + 3);
        let scan = decode_checkpoint(&out).expect("header intact");
        assert!(scan.scan.truncated_tail);
        assert_eq!(scan.scan.batches.len(), 2);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let mut out = Vec::new();
        encode_header(&mut out, 0, 1);
        encode_batch(&mut out, TidWord::committed(1, 1), &sample_records());
        let intact = out.len();
        encode_batch(&mut out, TidWord::committed(1, 2), &sample_records());
        // Simulate a crash mid-flush: drop half of the second frame.
        out.truncate(intact + (out.len() - intact) / 2);
        let scan = decode_segment(&out).expect("header intact");
        assert!(scan.truncated_tail);
        assert_eq!(scan.batches.len(), 1);
        assert_eq!(scan.batches[0].0, TidWord::committed(1, 1));
    }

    #[test]
    fn corrupt_payload_is_discarded() {
        let mut out = Vec::new();
        encode_header(&mut out, 0, 1);
        encode_batch(&mut out, TidWord::committed(1, 1), &sample_records());
        let last = out.len() - 1;
        out[last] ^= 0xFF;
        let scan = decode_segment(&out).expect("header intact");
        assert!(scan.truncated_tail);
        assert!(scan.batches.is_empty());
    }

    #[test]
    fn foreign_file_is_rejected() {
        assert!(decode_segment(b"not a wal segment").is_none());
        assert!(decode_segment(b"").is_none());
    }
}
