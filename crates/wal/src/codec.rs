//! Binary encoding of redo batches.
//!
//! A log segment is a fixed header followed by length-prefixed,
//! checksummed batch frames:
//!
//! ```text
//! segment   := header frame*
//! header    := magic:[u8;8] executor:u32 generation:u32
//! frame     := payload_len:u32 crc32(payload):u32 payload
//! payload   := tid:u64 record_count:u32 record*
//! record    := container:u64 reactor:u64 relation:str16 key body
//! body      := 0                                   (delete tombstone)
//!            | 1 tuple                             (full image)
//!            | 2 delta                             (field-level delta)
//!            | 3 raw_len:varint comp_len:varint rle-bytes   (rle(tuple))
//!            | 4 raw_len:varint comp_len:varint rle-bytes   (rle(delta))
//! delta     := base_tid:u64 arity:varint nchanges:varint change*
//! change    := field:varint len:varint value      (len = encoded value size)
//! key       := 0 bool:u8 | 1 int:i64 | 2 str32 | 3 count:u16 key*
//! value     := 0 (null) | 1 int:i64 | 2 float:f64-bits | 3 str32 | 4 bool:u8
//! tuple     := arity:u32 value*
//! ```
//!
//! All fixed-width integers are little-endian; varints are LEB128. Delta
//! bodies are the field-level redo format: a base version plus
//! `(field offset, value length, value bytes)` runs for exactly the fields
//! the update changed. Body kinds 3/4 are the optional record-level
//! compression (PackBits-style RLE with zero suppression), emitted only
//! when the compressed form is actually smaller.
//!
//! Decoding is defensive: a torn or corrupt tail (short frame, bad
//! checksum, malformed payload) terminates the scan of that segment without
//! failing recovery — exactly the tail a crash in the middle of a flush
//! leaves behind. Malformed *delta* bodies (unsorted or out-of-range field
//! offsets, truncated values, over-long runs) are rejected the same way:
//! a delta is either decoded exactly or not at all, never mis-applied.

use reactdb_common::{ContainerId, Key, ReactorId, Value};
use reactdb_storage::{TidWord, Tuple, TupleDelta};
use reactdb_txn::{RedoPayload, RedoRecord, RowDelta};

/// Magic bytes opening every log segment.
pub const SEGMENT_MAGIC: [u8; 8] = *b"RDBWAL1\n";

/// Magic bytes opening every checkpoint data file. Checkpoint files reuse
/// the segment frame format (one checksummed batch frame per captured row,
/// the frame TID carrying the row's commit TID) under a distinct magic, so
/// log scans can never mistake one for a redo segment.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"RDBCKPT1";

/// Table-driven CRC-32: `crc32` runs on the commit fast path (one call per
/// logged batch, under the writer mutex), so the byte-at-a-time LUT variant
/// matters.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "relation name too long");
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_str32(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_key(out: &mut Vec<u8>, key: &Key) {
    match key {
        Key::Bool(b) => {
            out.push(0);
            out.push(*b as u8);
        }
        Key::Int(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Key::Str(s) => {
            out.push(2);
            put_str32(out, s);
        }
        Key::Composite(parts) => {
            out.push(3);
            assert!(parts.len() <= u16::MAX as usize, "composite key too wide");
            put_u16(out, parts.len() as u16);
            for part in parts {
                put_key(out, part);
            }
        }
    }
}

fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(0),
        Value::Int(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float(v) => {
            out.push(2);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            put_str32(out, s);
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
    }
}

fn put_tuple(out: &mut Vec<u8>, tuple: &Tuple) {
    put_u32(out, tuple.arity() as u32);
    for value in tuple.values() {
        put_value(out, value);
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn varint_len(v: u64) -> usize {
    (1 + (64 - (v | 1).leading_zeros() as usize - 1) / 7).max(1)
}

/// Encoded size of one value under `put_value`.
fn value_encoded_len(value: &Value) -> usize {
    match value {
        Value::Null => 1,
        Value::Int(_) | Value::Float(_) => 9,
        Value::Str(s) => 5 + s.len(),
        Value::Bool(_) => 2,
    }
}

/// Encoded size of a full tuple body (body kind 1, without the kind byte).
/// Used by the log writer to decide whether a delta actually saves bytes
/// and to account `log_bytes_saved` without encoding the image twice.
pub fn encoded_tuple_len(tuple: &Tuple) -> usize {
    4 + tuple.values().iter().map(value_encoded_len).sum::<usize>()
}

/// Encoded size of a delta body (body kind 2, without the kind byte):
/// base TID plus the varint-framed change runs.
pub fn encoded_delta_len(delta: &TupleDelta) -> usize {
    let mut len = 8 + varint_len(delta.arity() as u64) + varint_len(delta.changes().len() as u64);
    for (pos, value) in delta.changes() {
        let value_len = value_encoded_len(value);
        len += varint_len(*pos as u64) + varint_len(value_len as u64) + value_len;
    }
    len
}

fn put_delta_body(out: &mut Vec<u8>, base: TidWord, delta: &TupleDelta) {
    put_u64(out, base.raw());
    put_varint(out, delta.arity() as u64);
    put_varint(out, delta.changes().len() as u64);
    for (pos, value) in delta.changes() {
        put_varint(out, *pos as u64);
        put_varint(out, value_encoded_len(value) as u64);
        put_value(out, value);
    }
}

// ---------------------------------------------------------------------------
// Record-level RLE compression (PackBits-style, zero-suppressing)
// ---------------------------------------------------------------------------

/// Shortest run worth a repeat token (control + byte = 2 bytes replace 3+).
const RLE_MIN_RUN: usize = 3;
/// Longest run one repeat token covers: `(0x7f) + RLE_MIN_RUN`.
const RLE_MAX_RUN: usize = 0x7f + RLE_MIN_RUN;
/// Longest literal stretch one literal token covers.
const RLE_MAX_LITERAL: usize = 0x80;

/// PackBits-style RLE: a control byte with the high bit set introduces a
/// repeat run (`(ctrl & 0x7f) + 3` copies of the following byte); with the
/// high bit clear it introduces `ctrl + 1` literal bytes. Runs of zeros —
/// the dominant filler in fixed-width integer encodings — collapse to two
/// bytes per 130, which is the "zero suppression" the record-compression
/// knob advertises.
pub(crate) fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut literal_start = 0usize;
    let mut i = 0usize;
    while i < data.len() {
        let mut run = 1usize;
        while run < RLE_MAX_RUN && i + run < data.len() && data[i + run] == data[i] {
            run += 1;
        }
        if run >= RLE_MIN_RUN {
            flush_literals(&mut out, &data[literal_start..i]);
            out.push(0x80 | (run - RLE_MIN_RUN) as u8);
            out.push(data[i]);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, &data[literal_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, mut literals: &[u8]) {
    while !literals.is_empty() {
        let take = literals.len().min(RLE_MAX_LITERAL);
        out.push((take - 1) as u8);
        out.extend_from_slice(&literals[..take]);
        literals = &literals[take..];
    }
}

/// Inverse of [`rle_compress`]. Returns `None` unless the stream decodes to
/// exactly `expected` bytes — over- and under-runs are corruption, never
/// silently padded or truncated.
pub(crate) fn rle_decompress(data: &[u8], expected: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(expected);
    let mut i = 0usize;
    while i < data.len() {
        let ctrl = data[i];
        i += 1;
        if ctrl & 0x80 != 0 {
            let run = (ctrl & 0x7f) as usize + RLE_MIN_RUN;
            let byte = *data.get(i)?;
            i += 1;
            if out.len() + run > expected {
                return None;
            }
            out.resize(out.len() + run, byte);
        } else {
            let take = ctrl as usize + 1;
            let bytes = data.get(i..i + take)?;
            i += take;
            if out.len() + take > expected {
                return None;
            }
            out.extend_from_slice(bytes);
        }
    }
    if out.len() != expected {
        return None;
    }
    Some(out)
}

/// Writes the segment header for `executor` / `generation`.
pub fn encode_header(out: &mut Vec<u8>, executor: u32, generation: u32) {
    out.extend_from_slice(&SEGMENT_MAGIC);
    put_u32(out, executor);
    put_u32(out, generation);
}

/// Writes the checkpoint-file header for part `part` of checkpoint `seq`,
/// stamped with the stable epoch the checkpoint snapshot began at.
pub fn encode_checkpoint_header(out: &mut Vec<u8>, seq: u64, epoch: u64, part: u32) {
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    put_u64(out, seq);
    put_u64(out, epoch);
    put_u32(out, part);
}

/// Appends one framed batch to `out`. Returns the number of bytes written.
pub fn encode_batch(out: &mut Vec<u8>, tid: TidWord, records: &[RedoRecord]) -> usize {
    encode_batch_opts(out, tid, records, false, |_, _| {})
}

/// Like [`encode_batch`], invoking `account` with every record and its
/// encoded payload size — the hook behind per-table log-space accounting.
/// The frame overhead (length, CRC, TID, record count) is charged to the
/// first record so the per-table totals sum to the segment bytes.
pub fn encode_batch_accounted(
    out: &mut Vec<u8>,
    tid: TidWord,
    records: &[RedoRecord],
    account: impl FnMut(&RedoRecord, u64),
) -> usize {
    encode_batch_opts(out, tid, records, false, account)
}

/// Full-control batch encoder: `compress` additionally runs every record
/// body (full tuple or delta) through the RLE encoder, keeping the
/// compressed form only when it is strictly smaller.
pub fn encode_batch_opts(
    out: &mut Vec<u8>,
    tid: TidWord,
    records: &[RedoRecord],
    compress: bool,
    mut account: impl FnMut(&RedoRecord, u64),
) -> usize {
    let mut payload = Vec::with_capacity(64 * records.len());
    put_u64(&mut payload, tid.raw());
    put_u32(&mut payload, records.len() as u32);
    // frame header (len + crc) + payload header (tid + count)
    let mut overhead = Some(4 + 4 + payload.len() as u64);
    let mut body = Vec::new();
    for record in records {
        let before = payload.len();
        put_u64(&mut payload, record.container.raw());
        put_u64(&mut payload, record.reactor.raw());
        put_str16(&mut payload, &record.relation);
        put_key(&mut payload, &record.key);
        match &record.payload {
            RedoPayload::Delete => payload.push(0),
            RedoPayload::Full(tuple) => {
                body.clear();
                put_tuple(&mut body, tuple);
                put_body(&mut payload, 1, 3, &body, compress);
            }
            RedoPayload::Delta(row_delta) => {
                body.clear();
                put_delta_body(&mut body, row_delta.base, &row_delta.delta);
                put_body(&mut payload, 2, 4, &body, compress);
            }
        }
        let record_bytes = (payload.len() - before) as u64 + overhead.take().unwrap_or(0);
        account(record, record_bytes);
    }
    let before = out.len();
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
    out.len() - before
}

/// Appends one record body, RLE-compressing it (under `compressed_kind`)
/// when requested and strictly smaller than the raw form (`raw_kind`).
fn put_body(out: &mut Vec<u8>, raw_kind: u8, compressed_kind: u8, body: &[u8], compress: bool) {
    if compress {
        let packed = rle_compress(body);
        let framing = varint_len(body.len() as u64) + varint_len(packed.len() as u64);
        if packed.len() + framing < body.len() {
            out.push(compressed_kind);
            put_varint(out, body.len() as u64);
            put_varint(out, packed.len() as u64);
            out.extend_from_slice(&packed);
            return;
        }
    }
    out.push(raw_kind);
    out.extend_from_slice(body);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("len 8")))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|b| i64::from_le_bytes(b.try_into().expect("len 8")))
    }

    fn str16(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn str32(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn key(&mut self) -> Option<Key> {
        match self.u8()? {
            0 => Some(Key::Bool(self.u8()? != 0)),
            1 => Some(Key::Int(self.i64()?)),
            2 => Some(Key::Str(self.str32()?)),
            3 => {
                let count = self.u16()? as usize;
                let mut parts = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    parts.push(self.key()?);
                }
                Some(Key::Composite(parts))
            }
            _ => None,
        }
    }

    fn value(&mut self) -> Option<Value> {
        match self.u8()? {
            0 => Some(Value::Null),
            1 => Some(Value::Int(self.i64()?)),
            2 => Some(Value::Float(f64::from_bits(self.u64()?))),
            3 => Some(Value::Str(self.str32()?)),
            4 => Some(Value::Bool(self.u8()? != 0)),
            _ => None,
        }
    }

    fn tuple(&mut self) -> Option<Tuple> {
        let arity = self.u32()? as usize;
        let mut values = Vec::with_capacity(arity.min(1024));
        for _ in 0..arity {
            values.push(self.value()?);
        }
        Some(Tuple::new(values))
    }

    fn varint(&mut self) -> Option<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return None; // overflows u64
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(value);
            }
            shift += 7;
            if shift > 63 {
                return None;
            }
        }
    }

    /// Reads a delta body: base TID plus the change runs. `from_parts`
    /// re-validates the structural invariants (ascending, in-range
    /// offsets), so a malformed delta is rejected rather than mis-applied.
    fn delta_body(&mut self) -> Option<RowDelta> {
        let base = TidWord(self.u64()?);
        let arity = self.varint()?;
        let arity = u32::try_from(arity).ok()?;
        let count = self.varint()? as usize;
        if count as u64 > u64::from(arity) {
            return None; // more changes than fields
        }
        let mut changes = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let pos = u32::try_from(self.varint()?).ok()?;
            let len = self.varint()? as usize;
            let bytes = self.take(len)?;
            let mut value_reader = Reader { bytes, pos: 0 };
            let value = value_reader.value()?;
            if value_reader.pos != bytes.len() {
                return None; // the run's length must frame the value exactly
            }
            changes.push((pos, value));
        }
        let delta = TupleDelta::from_parts(arity, changes)?;
        Some(RowDelta {
            base,
            delta,
            image: None,
        })
    }

    /// Reads one record body (kinds 0–4).
    fn body(&mut self) -> Option<RedoPayload> {
        match self.u8()? {
            0 => Some(RedoPayload::Delete),
            1 => Some(RedoPayload::Full(self.tuple()?)),
            2 => Some(RedoPayload::Delta(self.delta_body()?)),
            kind @ (3 | 4) => {
                let raw_len = self.varint()? as usize;
                if raw_len > MAX_BODY_LEN {
                    return None;
                }
                let comp_len = self.varint()? as usize;
                let compressed = self.take(comp_len)?;
                let raw = rle_decompress(compressed, raw_len)?;
                let mut body_reader = Reader {
                    bytes: &raw,
                    pos: 0,
                };
                let payload = if kind == 3 {
                    RedoPayload::Full(body_reader.tuple()?)
                } else {
                    RedoPayload::Delta(body_reader.delta_body()?)
                };
                if body_reader.pos != raw.len() {
                    return None;
                }
                Some(payload)
            }
            _ => None,
        }
    }
}

/// Upper bound on a decompressed record body; anything larger is treated as
/// corruption (no legitimate row in this system approaches it).
const MAX_BODY_LEN: usize = 1 << 26;

/// Decodes one batch payload (without the frame header).
fn decode_payload(payload: &[u8]) -> Option<(TidWord, Vec<RedoRecord>)> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let tid = TidWord(r.u64()?);
    let count = r.u32()? as usize;
    let mut records = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let container = ContainerId(r.u64()?);
        let reactor = ReactorId(r.u64()?);
        let relation = r.str16()?;
        let key = r.key()?;
        let payload = r.body()?;
        records.push(RedoRecord {
            container,
            reactor,
            relation,
            key,
            payload,
        });
    }
    if r.pos != payload.len() {
        return None;
    }
    Some((tid, records))
}

/// Result of scanning one segment.
pub struct SegmentScan {
    /// The decoded batches, in file order.
    pub batches: Vec<(TidWord, Vec<RedoRecord>)>,
    /// True when the segment ended with a torn or corrupt frame (expected
    /// after a crash mid-flush; the tail is discarded).
    pub truncated_tail: bool,
}

/// Decodes a whole segment (header + frames). Returns `None` when the
/// header itself is missing or foreign.
pub fn decode_segment(bytes: &[u8]) -> Option<SegmentScan> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(SEGMENT_MAGIC.len())? != SEGMENT_MAGIC {
        return None;
    }
    let _executor = r.u32()?;
    let _generation = r.u32()?;
    Some(decode_frames(r))
}

/// Decoded checkpoint data file: its identity stamp plus one batch per
/// captured row.
pub struct CheckpointScan {
    /// Checkpoint sequence number from the header.
    pub seq: u64,
    /// Stable epoch the snapshot began at (`E_ckpt`), from the header.
    pub epoch: u64,
    /// Zero-based part index within the checkpoint's part set.
    pub part: u32,
    /// The decoded row frames, in capture order.
    pub scan: SegmentScan,
}

/// Decodes a whole checkpoint data file. Returns `None` when the header is
/// missing or foreign.
pub fn decode_checkpoint(bytes: &[u8]) -> Option<CheckpointScan> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(CHECKPOINT_MAGIC.len())? != CHECKPOINT_MAGIC {
        return None;
    }
    let seq = r.u64()?;
    let epoch = r.u64()?;
    let part = r.u32()?;
    Some(CheckpointScan {
        seq,
        epoch,
        part,
        scan: decode_frames(r),
    })
}

/// Shared frame-stream decoder behind segment and checkpoint scans.
fn decode_frames(mut r: Reader<'_>) -> SegmentScan {
    let mut batches = Vec::new();
    let mut truncated_tail = false;
    while r.pos < r.bytes.len() {
        let frame = (|| {
            let len = r.u32()? as usize;
            let crc = r.u32()?;
            let payload = r.take(len)?;
            if crc32(payload) != crc {
                return None;
            }
            decode_payload(payload)
        })();
        match frame {
            Some(batch) => batches.push(batch),
            None => {
                truncated_tail = true;
                break;
            }
        }
    }
    SegmentScan {
        batches,
        truncated_tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_records() -> Vec<RedoRecord> {
        vec![
            RedoRecord {
                container: ContainerId(1),
                reactor: ReactorId(3),
                relation: "savings".into(),
                key: Key::Int(7),
                payload: RedoPayload::Full(Tuple::of([Value::Int(7), Value::Float(99.5)])),
            },
            RedoRecord {
                container: ContainerId(0),
                reactor: ReactorId(2),
                relation: "account".into(),
                key: Key::composite([Key::Str("a".into()), Key::Bool(true)]),
                payload: RedoPayload::Delete,
            },
        ]
    }

    fn delta_record(base: TidWord, before: &Tuple, after: &Tuple) -> RedoRecord {
        RedoRecord {
            container: ContainerId(0),
            reactor: ReactorId(1),
            relation: "wide".into(),
            key: Key::Int(1),
            payload: RedoPayload::Delta(RowDelta {
                base,
                delta: TupleDelta::diff(before, after).expect("same arity"),
                image: Some(after.clone()),
            }),
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // Standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn batch_roundtrip() {
        let mut out = Vec::new();
        encode_header(&mut out, 4, 2);
        let tid = TidWord::committed(5, 42);
        encode_batch(&mut out, tid, &sample_records());
        let scan = decode_segment(&out).expect("valid segment");
        assert!(!scan.truncated_tail);
        assert_eq!(scan.batches.len(), 1);
        assert_eq!(scan.batches[0].0, tid);
        assert_eq!(scan.batches[0].1, sample_records());
    }

    #[test]
    fn accounted_encoding_attributes_every_frame_byte() {
        let mut out = Vec::new();
        let mut attributed = 0u64;
        let written = encode_batch_accounted(
            &mut out,
            TidWord::committed(2, 3),
            &sample_records(),
            |_, bytes| attributed += bytes,
        );
        assert_eq!(
            attributed, written as u64,
            "per-record sizes sum to the frame size"
        );
        // The accounted variant produces byte-identical output.
        let mut plain = Vec::new();
        encode_batch(&mut plain, TidWord::committed(2, 3), &sample_records());
        assert_eq!(out, plain);
    }

    #[test]
    fn checkpoint_roundtrip_and_foreign_rejection() {
        let mut out = Vec::new();
        encode_checkpoint_header(&mut out, 7, 42, 3);
        for (i, record) in sample_records().into_iter().enumerate() {
            encode_batch(&mut out, TidWord::committed(3, i as u64 + 1), &[record]);
        }
        let scan = decode_checkpoint(&out).expect("valid checkpoint");
        assert_eq!(scan.seq, 7);
        assert_eq!(scan.epoch, 42);
        assert_eq!(scan.part, 3);
        assert!(!scan.scan.truncated_tail);
        assert_eq!(scan.scan.batches.len(), 2);
        assert_eq!(scan.scan.batches[0].0, TidWord::committed(3, 1));
        // A checkpoint file is not a segment and vice versa.
        assert!(decode_segment(&out).is_none());
        let mut seg = Vec::new();
        encode_header(&mut seg, 0, 1);
        assert!(decode_checkpoint(&seg).is_none());
        // A torn checkpoint tail is detected, not fatal.
        let intact = out.len();
        encode_batch(&mut out, TidWord::committed(3, 9), &sample_records());
        out.truncate(intact + 3);
        let scan = decode_checkpoint(&out).expect("header intact");
        assert!(scan.scan.truncated_tail);
        assert_eq!(scan.scan.batches.len(), 2);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let mut out = Vec::new();
        encode_header(&mut out, 0, 1);
        encode_batch(&mut out, TidWord::committed(1, 1), &sample_records());
        let intact = out.len();
        encode_batch(&mut out, TidWord::committed(1, 2), &sample_records());
        // Simulate a crash mid-flush: drop half of the second frame.
        out.truncate(intact + (out.len() - intact) / 2);
        let scan = decode_segment(&out).expect("header intact");
        assert!(scan.truncated_tail);
        assert_eq!(scan.batches.len(), 1);
        assert_eq!(scan.batches[0].0, TidWord::committed(1, 1));
    }

    #[test]
    fn corrupt_payload_is_discarded() {
        let mut out = Vec::new();
        encode_header(&mut out, 0, 1);
        encode_batch(&mut out, TidWord::committed(1, 1), &sample_records());
        let last = out.len() - 1;
        out[last] ^= 0xFF;
        let scan = decode_segment(&out).expect("header intact");
        assert!(scan.truncated_tail);
        assert!(scan.batches.is_empty());
    }

    #[test]
    fn foreign_file_is_rejected() {
        assert!(decode_segment(b"not a wal segment").is_none());
        assert!(decode_segment(b"").is_none());
    }

    #[test]
    fn delta_frame_roundtrip_is_smaller_than_full_image() {
        let before = Tuple::of([
            Value::Int(1),
            Value::Str("x".repeat(200)),
            Value::Str("y".repeat(200)),
            Value::Float(10.0),
        ]);
        let mut after = before.clone();
        after.values_mut()[3] = Value::Float(11.0);
        let record = delta_record(TidWord::committed(3, 9), &before, &after);

        let mut out = Vec::new();
        encode_header(&mut out, 0, 1);
        let header = out.len();
        encode_batch(
            &mut out,
            TidWord::committed(4, 1),
            std::slice::from_ref(&record),
        );
        let delta_bytes = out.len() - header;

        let scan = decode_segment(&out).expect("valid segment");
        assert_eq!(scan.batches.len(), 1);
        let decoded = &scan.batches[0].1[0];
        assert_eq!(decoded, &record, "delta substance roundtrips");
        let RedoPayload::Delta(row_delta) = &decoded.payload else {
            panic!("decoded record must stay a delta");
        };
        assert!(
            row_delta.image.is_none(),
            "the image is commit-path transport"
        );
        assert_eq!(row_delta.base, TidWord::committed(3, 9));
        assert_eq!(row_delta.delta.apply(&before).unwrap(), after);

        // The delta frame is far smaller than the same row logged in full.
        let mut full = Vec::new();
        encode_batch(
            &mut full,
            TidWord::committed(4, 1),
            &[RedoRecord {
                payload: RedoPayload::Full(after.clone()),
                ..record.clone()
            }],
        );
        assert!(
            delta_bytes * 4 < full.len(),
            "delta frame {delta_bytes}B vs full {}B",
            full.len()
        );
        // The analytic size helpers agree with the real encodings.
        assert_eq!(encoded_tuple_len(&after) + 1, {
            let mut t = Vec::new();
            put_tuple(&mut t, &after);
            t.len() + 1
        });
        if let RedoPayload::Delta(d) = &record.payload {
            let mut b = Vec::new();
            put_delta_body(&mut b, d.base, &d.delta);
            assert_eq!(encoded_delta_len(&d.delta), b.len());
        }
    }

    #[test]
    fn compressed_bodies_roundtrip_and_only_shrink() {
        // A zero-heavy wide row compresses well; the frame must roundtrip
        // byte-exactly through the RLE path.
        let row = Tuple::of([
            Value::Int(5),
            Value::Str("a".repeat(300)),
            Value::Int(0),
            Value::Int(0),
        ]);
        let record = RedoRecord {
            container: ContainerId(0),
            reactor: ReactorId(0),
            relation: "t".into(),
            key: Key::Int(5),
            payload: RedoPayload::Full(row.clone()),
        };
        let mut plain = Vec::new();
        encode_header(&mut plain, 0, 1);
        encode_batch(
            &mut plain,
            TidWord::committed(1, 1),
            std::slice::from_ref(&record),
        );
        let mut packed = Vec::new();
        encode_header(&mut packed, 0, 1);
        encode_batch_opts(
            &mut packed,
            TidWord::committed(1, 1),
            std::slice::from_ref(&record),
            true,
            |_, _| {},
        );
        assert!(packed.len() < plain.len(), "repetitive rows compress");
        let scan = decode_segment(&packed).expect("valid segment");
        assert_eq!(scan.batches[0].1[0], record);

        // Incompressible bodies stay raw: compression never grows a frame.
        let noisy: String = (0..300u32)
            .map(|i| char::from((33 + (i * 7 + i / 9) % 90) as u8))
            .collect();
        let noisy_record = RedoRecord {
            payload: RedoPayload::Full(Tuple::of([Value::Int(1), Value::Str(noisy)])),
            ..record.clone()
        };
        let mut raw = Vec::new();
        encode_batch(
            &mut raw,
            TidWord::committed(1, 2),
            std::slice::from_ref(&noisy_record),
        );
        let mut tried = Vec::new();
        encode_batch_opts(
            &mut tried,
            TidWord::committed(1, 2),
            std::slice::from_ref(&noisy_record),
            true,
            |_, _| {},
        );
        assert!(tried.len() <= raw.len());
        let mut header = Vec::new();
        encode_header(&mut header, 0, 1);
        header.extend_from_slice(&tried);
        assert_eq!(
            decode_segment(&header).unwrap().batches[0].1[0],
            noisy_record
        );
    }

    #[test]
    fn rle_roundtrips_and_rejects_length_lies() {
        for data in [
            Vec::new(),
            vec![0u8; 1000],
            vec![1, 2, 3, 4, 5],
            [vec![7u8; 200], vec![1, 2, 3], vec![0u8; 500]].concat(),
        ] {
            let packed = rle_compress(&data);
            assert_eq!(rle_decompress(&packed, data.len()).unwrap(), data);
            // Claiming any other length is rejected.
            if !data.is_empty() {
                assert!(rle_decompress(&packed, data.len() - 1).is_none());
                assert!(rle_decompress(&packed, data.len() + 1).is_none());
            }
        }
        // Truncated streams are rejected.
        let packed = rle_compress(&[9u8; 100]);
        assert!(rle_decompress(&packed[..packed.len() - 1], 100).is_none());
    }

    #[test]
    fn malformed_delta_bodies_are_rejected_not_misapplied() {
        let before = Tuple::of([Value::Int(1), Value::Int(2), Value::Int(3)]);
        let mut after = before.clone();
        after.values_mut()[1] = Value::Int(9);
        let record = delta_record(TidWord::committed(1, 1), &before, &after);
        let mut out = Vec::new();
        encode_header(&mut out, 0, 1);
        encode_batch(
            &mut out,
            TidWord::committed(2, 1),
            std::slice::from_ref(&record),
        );
        // Locate the delta body by layout: segment header (16) + frame
        // len/crc (8) + tid (8) + count (4) + container (8) + reactor (8)
        // + relation str16 "wide" (6) + key Int (9) = kind byte at 67,
        // followed by base (8), then the arity varint.
        let kind_pos = 16 + 8 + 8 + 4 + 8 + 8 + 6 + 9;
        assert_eq!(out[kind_pos], 2, "delta body kind byte");
        let arity_pos = kind_pos + 1 + 8;
        assert_eq!(out[arity_pos], 3, "arity varint");
        let mut corrupt = out.clone();
        corrupt[arity_pos + 2] = 7; // field offset 7 >= arity 3
                                    // Fix the CRC so only the *semantic* validation can reject it.
        let frame_start = 16; // header
        let len = u32::from_le_bytes(corrupt[frame_start..frame_start + 4].try_into().unwrap());
        let payload = corrupt[frame_start + 8..frame_start + 8 + len as usize].to_vec();
        let crc = crc32(&payload).to_le_bytes();
        corrupt[frame_start + 4..frame_start + 8].copy_from_slice(&crc);
        let scan = decode_segment(&corrupt).expect("header intact");
        assert!(scan.truncated_tail, "out-of-range field offset is rejected");
        assert!(scan.batches.is_empty());
    }

    proptest! {
        /// A random base image and a random chain of field changes
        /// roundtrip through encode → decode → apply to the exact final
        /// image, with and without record compression.
        #[test]
        fn prop_delta_chain_roundtrips_to_exact_final_image(
            base_vals in proptest::collection::vec(0i64..1000, 1..8),
            chain in proptest::collection::vec(
                proptest::collection::vec((0usize..8, -500i64..500), 0..4),
                1..6,
            ),
            compress in proptest::bool::ANY,
        ) {
            let base = Tuple::of(base_vals.clone());
            // Build the chain of images by applying random field writes.
            let mut images = vec![base.clone()];
            for step in &chain {
                let mut next = images.last().unwrap().clone();
                for (pos, val) in step {
                    let pos = pos % next.arity();
                    next.values_mut()[pos] = Value::Int(*val);
                }
                images.push(next);
            }
            // Encode every link as a delta frame.
            let mut out = Vec::new();
            encode_header(&mut out, 0, 1);
            for (i, window) in images.windows(2).enumerate() {
                let record = delta_record(
                    TidWord::committed(1, i as u64 + 1),
                    &window[0],
                    &window[1],
                );
                encode_batch_opts(
                    &mut out,
                    TidWord::committed(1, i as u64 + 2),
                    std::slice::from_ref(&record),
                    compress,
                    |_, _| {},
                );
            }
            let scan = decode_segment(&out).expect("valid segment");
            prop_assert!(!scan.truncated_tail);
            prop_assert_eq!(scan.batches.len(), images.len() - 1);
            // Re-apply the decoded chain onto the base image.
            let mut state = base;
            for (i, (_, records)) in scan.batches.iter().enumerate() {
                let RedoPayload::Delta(row_delta) = &records[0].payload else {
                    return Err("expected a delta record".to_string());
                };
                prop_assert_eq!(row_delta.base, TidWord::committed(1, i as u64 + 1));
                state = row_delta.delta.apply(&state).expect("arity preserved");
            }
            prop_assert_eq!(&state, images.last().unwrap());
        }

        /// Truncating a delta frame anywhere, or flipping any byte of it,
        /// never yields a *different* decoded batch: the scan either keeps
        /// the original record or rejects the tail. (CRC catches flips;
        /// the semantic delta validation backstops it.)
        #[test]
        fn prop_corrupted_delta_frames_never_misapply(
            cut in 0usize..200,
            flip in 0usize..200,
        ) {
            let before = Tuple::of([Value::Int(1), Value::Str("abcdef".into()), Value::Int(3)]);
            let mut after = before.clone();
            after.values_mut()[2] = Value::Int(42);
            let record = delta_record(TidWord::committed(1, 1), &before, &after);
            let mut out = Vec::new();
            encode_header(&mut out, 0, 1);
            encode_batch(&mut out, TidWord::committed(1, 2), std::slice::from_ref(&record));

            // Truncation: any prefix decodes to either the full record or
            // a rejected (empty, truncated) scan.
            let cut = 16 + (cut % (out.len() - 16));
            if let Some(scan) = decode_segment(&out[..cut]) {
                if let Some((_, records)) = scan.batches.first() {
                    prop_assert_eq!(&records[0], &record);
                } else {
                    prop_assert!(scan.truncated_tail || scan.batches.is_empty());
                }
            }

            // Byte flip: decode must yield the original record or nothing.
            let mut flipped = out.clone();
            let pos = 16 + (flip % (out.len() - 16));
            flipped[pos] ^= 0x55;
            if let Some(scan) = decode_segment(&flipped) {
                for (_, records) in &scan.batches {
                    prop_assert_eq!(&records[0], &record);
                }
            }
        }
    }
}
