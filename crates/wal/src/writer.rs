//! Per-executor log writers.
//!
//! Each transaction executor owns one [`LogWriter`] appending to its own
//! segment file, mirroring Silo's per-worker logs: the commit fast path only
//! touches the writer's in-memory buffer under a short mutex, never the
//! disk. A distributed (2PC) commit passes through the committing executor's
//! writer with the records of *every* participating container in one
//! checksummed frame, so recovery sees distributed transactions atomically.
//!
//! Writers can be *rotated* onto a fresh segment file
//! ([`LogWriter::swap_file`]): the checkpointer rotates every writer right
//! after a group commit so retired segments end at a durable boundary and
//! become eligible for truncation once a later checkpoint covers them.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use reactdb_common::DurabilityMode;
use reactdb_storage::TidWord;
use reactdb_txn::{LogSink, RedoRecord};

use crate::codec;
use crate::stats::WalStats;

/// Flush threshold for [`DurabilityMode::Buffered`] writers. EpochSync
/// writers never flush outside a group commit: buffered bytes must not reach
/// the OS before their epoch is declared durable, or a crash could surface
/// transactions from an unsynced epoch.
const BUFFERED_FLUSH_BYTES: usize = 1 << 20;

struct WriterInner {
    buf: Vec<u8>,
    file: File,
    path: PathBuf,
}

/// The log writer of one executor; implements [`LogSink`] for the commit
/// path.
pub struct LogWriter {
    executor: usize,
    mode: DurabilityMode,
    inner: Mutex<WriterInner>,
    stats: Arc<WalStats>,
}

impl LogWriter {
    /// Creates the writer and its segment file, writing the header
    /// immediately so even an empty segment is recognisable.
    pub(crate) fn create(
        path: &Path,
        executor: usize,
        generation: u32,
        mode: DurabilityMode,
        stats: Arc<WalStats>,
    ) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut header = Vec::with_capacity(16);
        codec::encode_header(&mut header, executor as u32, generation);
        let mut inner = WriterInner {
            buf: header,
            file,
            path: path.to_path_buf(),
        };
        // The header is metadata, not redo payload: push it to the OS right
        // away (without fsync) so scans never mistake the file for garbage.
        Self::write_out(&mut inner)?;
        Ok(Self {
            executor,
            mode,
            inner: Mutex::new(inner),
            stats,
        })
    }

    /// Executor this writer belongs to.
    pub fn executor(&self) -> usize {
        self.executor
    }

    /// The segment file the writer currently appends to.
    pub fn path(&self) -> PathBuf {
        self.inner.lock().path.clone()
    }

    fn write_out(inner: &mut WriterInner) -> std::io::Result<()> {
        if !inner.buf.is_empty() {
            inner.file.write_all(&inner.buf)?;
            inner.buf.clear();
        }
        Ok(())
    }

    /// Writes buffered bytes to the OS and optionally fsyncs. Called by the
    /// group-commit daemon (with `fsync`) and by buffered-mode flushes
    /// (without).
    pub(crate) fn flush(&self, fsync: bool) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        Self::write_out(&mut inner)?;
        if fsync {
            inner.file.sync_data()?;
        }
        Ok(())
    }

    /// Rotates the writer onto a fresh segment file, returning the retired
    /// file's path. Must be called *directly after a group commit* (the
    /// caller holds the WAL's sync lock): everything flushed so far sits
    /// fsynced in the old file, and whatever has accumulated in the buffer
    /// since the flush belongs to epochs the durable marker does not cover
    /// yet — it stays in the buffer and lands in the *new* file on the next
    /// flush, so the retired file never grows a tail that misses its fsync.
    pub(crate) fn swap_file(&self, path: &Path, generation: u32) -> std::io::Result<PathBuf> {
        let mut inner = self.inner.lock();
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(16);
        codec::encode_header(&mut header, self.executor as u32, generation);
        // Header straight to the OS (not via the shared buffer, which may
        // hold frames): scans must never mistake the file for garbage.
        file.write_all(&header)?;
        let old_path = std::mem::replace(&mut inner.path, path.to_path_buf());
        inner.file = file; // old handle drops (everything durable is synced)
        Ok(old_path)
    }

    /// Bytes currently buffered in memory (not yet handed to the OS).
    pub fn buffered_bytes(&self) -> usize {
        self.inner.lock().buf.len()
    }
}

impl LogSink for LogWriter {
    fn log_commit(&self, tid: TidWord, records: &[RedoRecord]) {
        let mut inner = self.inner.lock();
        let written =
            codec::encode_batch_accounted(&mut inner.buf, tid, records, |record, bytes| {
                self.stats
                    .record_table_bytes(record.reactor, &record.relation, bytes);
            });
        self.stats
            .record_batch(written as u64, records.len() as u64);
        if self.mode == DurabilityMode::Buffered && inner.buf.len() >= BUFFERED_FLUSH_BYTES {
            // Opportunistic flush; an I/O error here surfaces on the next
            // explicit flush, buffered mode offers no durability guarantee.
            let _ = Self::write_out(&mut inner);
        }
    }
}

impl std::fmt::Debug for LogWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogWriter")
            .field("executor", &self.executor)
            .field("mode", &self.mode)
            .finish()
    }
}
