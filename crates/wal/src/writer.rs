//! Per-executor log writers.
//!
//! Each transaction executor owns one [`LogWriter`] appending to its own
//! segment file, mirroring Silo's per-worker logs: the commit fast path only
//! touches the writer's in-memory buffer under a short mutex, never the
//! disk. A distributed (2PC) commit passes through the committing executor's
//! writer with the records of *every* participating container in one
//! checksummed frame, so recovery sees distributed transactions atomically.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use reactdb_common::DurabilityMode;
use reactdb_storage::TidWord;
use reactdb_txn::{LogSink, RedoRecord};

use crate::codec;
use crate::stats::WalStats;

/// Flush threshold for [`DurabilityMode::Buffered`] writers. EpochSync
/// writers never flush outside a group commit: buffered bytes must not reach
/// the OS before their epoch is declared durable, or a crash could surface
/// transactions from an unsynced epoch.
const BUFFERED_FLUSH_BYTES: usize = 1 << 20;

struct WriterInner {
    buf: Vec<u8>,
    file: File,
}

/// The log writer of one executor; implements [`LogSink`] for the commit
/// path.
pub struct LogWriter {
    executor: usize,
    mode: DurabilityMode,
    inner: Mutex<WriterInner>,
    stats: Arc<WalStats>,
}

impl LogWriter {
    /// Creates the writer and its segment file, writing the header
    /// immediately so even an empty segment is recognisable.
    pub(crate) fn create(
        path: &Path,
        executor: usize,
        generation: u32,
        mode: DurabilityMode,
        stats: Arc<WalStats>,
    ) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut header = Vec::with_capacity(16);
        codec::encode_header(&mut header, executor as u32, generation);
        let mut inner = WriterInner { buf: header, file };
        // The header is metadata, not redo payload: push it to the OS right
        // away (without fsync) so scans never mistake the file for garbage.
        Self::write_out(&mut inner)?;
        Ok(Self {
            executor,
            mode,
            inner: Mutex::new(inner),
            stats,
        })
    }

    /// Executor this writer belongs to.
    pub fn executor(&self) -> usize {
        self.executor
    }

    fn write_out(inner: &mut WriterInner) -> std::io::Result<()> {
        if !inner.buf.is_empty() {
            inner.file.write_all(&inner.buf)?;
            inner.buf.clear();
        }
        Ok(())
    }

    /// Writes buffered bytes to the OS and optionally fsyncs. Called by the
    /// group-commit daemon (with `fsync`) and by buffered-mode flushes
    /// (without).
    pub(crate) fn flush(&self, fsync: bool) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        Self::write_out(&mut inner)?;
        if fsync {
            inner.file.sync_data()?;
        }
        Ok(())
    }

    /// Bytes currently buffered in memory (not yet handed to the OS).
    pub fn buffered_bytes(&self) -> usize {
        self.inner.lock().buf.len()
    }
}

impl LogSink for LogWriter {
    fn log_commit(&self, tid: TidWord, records: &[RedoRecord]) {
        let mut inner = self.inner.lock();
        let written = codec::encode_batch(&mut inner.buf, tid, records);
        self.stats
            .record_batch(written as u64, records.len() as u64);
        if self.mode == DurabilityMode::Buffered && inner.buf.len() >= BUFFERED_FLUSH_BYTES {
            // Opportunistic flush; an I/O error here surfaces on the next
            // explicit flush, buffered mode offers no durability guarantee.
            let _ = Self::write_out(&mut inner);
        }
    }
}

impl std::fmt::Debug for LogWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogWriter")
            .field("executor", &self.executor)
            .field("mode", &self.mode)
            .finish()
    }
}
